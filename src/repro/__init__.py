"""repro — a reproduction of "A Reliable and Scalable Striping Protocol".

Adiseshu, Parulkar & Varghese, ACM SIGCOMM 1996.

The library implements the paper's full system from scratch:

* :mod:`repro.core` — Surplus Round Robin striping, the causal-fair-queuing
  transformation, logical reception, and marker-based resynchronization.
* :mod:`repro.sim` — the discrete-event substrate (channels, loss models,
  host CPU / interrupt costs).
* :mod:`repro.net` — the strIPe architecture: a virtual IP interface that
  stripes IP packets across heterogeneous links (Ethernet + ATM).
* :mod:`repro.transport` — simplified TCP / UDP and credit-based flow
  control used by the paper's evaluation.
* :mod:`repro.baselines` — the comparison schemes of Table 1 (RR, GRR,
  shortest-queue-first, random, address hashing, BONDING, MPPP).
* :mod:`repro.workloads` — traffic generators, including the synthetic
  NV-video workload.
* :mod:`repro.analysis` — throughput / reordering / fairness metrics.
* :mod:`repro.experiments` — one module per paper table or figure.

Quickstart::

    from repro.core import SRR, TransformedLoadSharer, Resequencer, Packet
    srr = SRR(quanta=[1500, 1500])
    sender = TransformedLoadSharer(srr)
    receiver = Resequencer(srr)
    # ... see examples/quickstart.py
"""

__version__ = "1.0.0"

from repro import core, sim

__all__ = ["core", "sim", "__version__"]
