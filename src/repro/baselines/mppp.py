"""MPPP-style striping: per-packet sequence-number headers (RFC 1717).

The paper contrasts strIPe with Multilink PPP: MPPP "modifies each packet
by adding sequence numbers to it" and "supplies no algorithm for striping
at the sender and resequencing at the receiver".  We implement the obvious
instantiation: any load-sharing policy at the sender, a 4-byte (configurable)
sequence header prepended to every packet, and a receiver that sorts by
sequence number, releasing gaps after a timeout.

The costs this baseline quantifies against strIPe:

* **Header overhead** — every data packet grows by ``header_bytes``; a
  packet already at the channel MTU cannot be carried at all (the paper's
  key objection), surfaced here as :attr:`MpppSender.oversize_rejects`.
* **Guaranteed FIFO** — unlike quasi-FIFO, reordering never escapes the
  resequencer (gaps stall delivery until the timeout fires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.core.cfq import Capabilities
from repro.core.packet import Packet
from repro.core.srr import make_rr
from repro.core.transform import LoadSharer, TransformedLoadSharer
from repro.sim.engine import Event, Simulator

MPPP_HEADER_BYTES = 4

_frag_ids = itertools.count(1)


@dataclass
class MpppFragment:
    """A data packet wrapped with an MPPP sequence header."""

    sequence: int
    inner: Packet
    header_bytes: int = MPPP_HEADER_BYTES
    uid: int = field(default_factory=lambda: next(_frag_ids))

    @property
    def size(self) -> int:
        return self.inner.size + self.header_bytes

    def __repr__(self) -> str:
        return f"MpppFragment(#{self.sequence}, {self.size}B)"


class MpppSender:
    """Wraps packets with sequence numbers and stripes them.

    Args:
        sharer: any load-sharing policy (MPPP does not specify one; plain
            RR is the conventional choice).
        ports: channel ports.
        channel_mtu: maximum packet size the channels accept; a packet that
            no longer fits once the header is added is rejected (counted in
            ``oversize_rejects``) — the situation the paper's
            no-modification constraint exists to avoid.
    """

    capabilities = Capabilities(
        fifo_delivery="guaranteed",
        load_sharing="poor",
        environment="Only if we can add headers (PPP links)",
        modifies_packets=True,
    )

    def __init__(
        self,
        sharer: LoadSharer,
        ports: List[Any],
        channel_mtu: Optional[int] = None,
        header_bytes: int = MPPP_HEADER_BYTES,
    ) -> None:
        if len(ports) != sharer.n_channels:
            raise ValueError("port count must match the policy's channel count")
        self.sharer = sharer
        self.ports = ports
        self.channel_mtu = channel_mtu
        self.header_bytes = header_bytes
        # Causal policies expose their scheduler kernel; stepping it
        # directly skips the per-packet queue-depth materialization that
        # only depth-sensitive baselines need.
        self._kernel = getattr(sharer, "kernel", None)
        self.next_sequence = 0
        self.sent = 0
        self.header_overhead_bytes = 0
        self.oversize_rejects = 0

    def submit(self, packet: Packet) -> bool:
        """Send one packet; returns False if it no longer fits the MTU."""
        wrapped = MpppFragment(self.next_sequence, packet, self.header_bytes)
        if self.channel_mtu is not None and wrapped.size > self.channel_mtu:
            self.oversize_rejects += 1
            return False
        if self._kernel is not None:
            channel = self._kernel.peek()
        else:
            depths = [getattr(p, "queue_length", 0) for p in self.ports]
            channel = self.sharer.choose(wrapped, depths)
        self.ports[channel].send(wrapped)
        self.sharer.notify_sent(channel, wrapped)
        self.next_sequence += 1
        self.sent += 1
        self.header_overhead_bytes += self.header_bytes
        return True


class MpppDiscipline(LoadSharer):
    """MPPP as a pluggable endpoint discipline.

    RFC 1717 "supplies no algorithm for striping at the sender" — the
    channel choice delegates to any inner policy (plain round robin by
    default, the conventional reading).  What MPPP *does* specify is the
    per-packet sequence header: :meth:`wrap_packet` applies it, and the
    matching receiver half (``receiver_mode = "mppp"``, an
    :class:`MpppReceiver`) strips it.  Plugged into the unified endpoint
    pipeline this runs MPPP over any transport's channel ports.
    """

    capabilities = MpppSender.capabilities
    simulatable = False
    #: receiver half the endpoint pipeline should build
    receiver_mode = "mppp"

    def __init__(
        self,
        n: int,
        header_bytes: int = MPPP_HEADER_BYTES,
        inner: Optional[LoadSharer] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one channel")
        self.inner = (
            inner if inner is not None else TransformedLoadSharer(make_rr(n))
        )
        if self.inner.n_channels != n:
            raise ValueError("inner policy/channel count mismatch")
        self.header_bytes = header_bytes
        self.next_sequence = 0
        self.header_overhead_bytes = 0

    @property
    def n_channels(self) -> int:
        return self.inner.n_channels

    def wrap_packet(self, packet: Packet) -> List[MpppFragment]:
        """Prepend the sequence header (the modification strIPe forbids)."""
        fragment = MpppFragment(self.next_sequence, packet, self.header_bytes)
        self.next_sequence += 1
        self.header_overhead_bytes += self.header_bytes
        return [fragment]

    def choose(self, packet, queue_depths=None) -> int:
        return self.inner.choose(packet, queue_depths)

    def notify_sent(self, channel: int, packet) -> None:
        self.inner.notify_sent(channel, packet)

    def assign_many(self, packets, queue_depths=None) -> List[int]:
        return self.inner.assign_many(packets, queue_depths)

    def reset(self) -> None:
        self.inner.reset()
        self.next_sequence = 0

    # -- checkpoint support (repro.transport.recovery) ------------------ #

    def snapshot(self) -> Any:
        inner_snap = getattr(self.inner, "snapshot", None)
        if inner_snap is not None:
            inner_state = inner_snap()
        else:
            kernel = getattr(self.inner, "kernel", None)
            inner_state = kernel.snapshot() if kernel is not None else None
        return {
            "next_sequence": self.next_sequence,
            "header_overhead_bytes": self.header_overhead_bytes,
            "inner": inner_state,
        }

    def restore(self, state: Any) -> None:
        self.next_sequence = state["next_sequence"]
        self.header_overhead_bytes = state["header_overhead_bytes"]
        inner_state = state["inner"]
        if inner_state is None:
            return
        inner_restore = getattr(self.inner, "restore", None)
        if inner_restore is not None:
            inner_restore(inner_state)
        else:
            self.inner.kernel.restore(inner_state)


class MpppReceiver:
    """Sequence-number resequencer with gap timeout.

    Guaranteed FIFO: packets are released strictly in sequence order.  A
    missing sequence number stalls delivery; if it stays missing for
    ``gap_timeout`` simulated seconds the gap is declared lost and skipped.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        gap_timeout: float = 0.2,
        on_deliver: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.sim = sim
        self.gap_timeout = gap_timeout
        self.on_deliver = on_deliver
        self.next_expected = 0
        self._heap: List[tuple] = []
        self._buffered: set = set()
        self._gap_timer: Optional[Event] = None
        self.delivered = 0
        self.gaps_skipped = 0
        self.duplicates = 0
        self.max_buffered = 0

    @property
    def buffered(self) -> int:
        return len(self._heap)

    def push(self, channel: int, fragment: MpppFragment) -> List[Packet]:
        """Arrival on any channel (the channel index is irrelevant here)."""
        if fragment.sequence < self.next_expected or (
            fragment.sequence in self._buffered
        ):
            self.duplicates += 1
            return []
        heapq.heappush(self._heap, (fragment.sequence, fragment.uid, fragment))
        self._buffered.add(fragment.sequence)
        self.max_buffered = max(self.max_buffered, len(self._heap))
        out = self._release()
        self._manage_gap_timer()
        return out

    def _release(self) -> List[Packet]:
        out: List[Packet] = []
        while self._heap and self._heap[0][0] == self.next_expected:
            _, _, fragment = heapq.heappop(self._heap)
            self._buffered.discard(fragment.sequence)
            self.next_expected += 1
            self.delivered += 1
            out.append(fragment.inner)
            if self.on_deliver is not None:
                self.on_deliver(fragment.inner)
        return out

    def _manage_gap_timer(self) -> None:
        if self.sim is None:
            return
        if self._heap and self._gap_timer is None:
            self._gap_timer = self.sim.schedule(self.gap_timeout, self._on_gap_timeout)
        elif not self._heap and self._gap_timer is not None:
            self._gap_timer.cancel()
            self._gap_timer = None

    def _on_gap_timeout(self) -> None:
        self._gap_timer = None
        if not self._heap:
            return
        # Skip to the oldest buffered sequence number.
        oldest = self._heap[0][0]
        if oldest > self.next_expected:
            self.gaps_skipped += oldest - self.next_expected
            self.next_expected = oldest
        self._release()
        self._manage_gap_timer()

    def fail_channel(self, channel: int) -> List[Packet]:
        """A channel died; don't wait out the gap timer for its fragments.

        Sequence numbers are channel-agnostic, so the only actionable step
        is the gap timeout's: skip to the oldest buffered sequence number
        immediately, draining packets the dead channel was holding up.
        """
        if not self._heap:
            return []
        oldest = self._heap[0][0]
        if oldest > self.next_expected:
            self.gaps_skipped += oldest - self.next_expected
            self.next_expected = oldest
        out = self._release()
        self._manage_gap_timer()
        return out

    def revive_channel(self, channel: int) -> None:
        """Sequence numbering is channel-agnostic; a returning channel resumes."""

    def flush(self) -> List[Packet]:
        """Deliver everything buffered, skipping all gaps (end of run)."""
        out: List[Packet] = []
        while self._heap:
            sequence, _, fragment = heapq.heappop(self._heap)
            self._buffered.discard(fragment.sequence)
            if sequence > self.next_expected:
                self.gaps_skipped += sequence - self.next_expected
            self.next_expected = sequence + 1
            self.delivered += 1
            out.append(fragment.inner)
            if self.on_deliver is not None:
                self.on_deliver(fragment.inner)
        return out

    # -- checkpoint support (repro.transport.recovery) ------------------ #

    def snapshot(self) -> Any:
        return {
            "next_expected": self.next_expected,
            "pending": [frag for _, _, frag in sorted(self._heap)],
            "delivered": self.delivered,
            "gaps_skipped": self.gaps_skipped,
            "duplicates": self.duplicates,
            "max_buffered": self.max_buffered,
        }

    def restore(self, state: Any) -> None:
        self.next_expected = state["next_expected"]
        self._heap = [
            (frag.sequence, frag.uid, frag) for frag in state["pending"]
        ]
        heapq.heapify(self._heap)
        self._buffered = {frag.sequence for frag in state["pending"]}
        self.delivered = state["delivered"]
        self.gaps_skipped = state["gaps_skipped"]
        self.duplicates = state["duplicates"]
        self.max_buffered = state["max_buffered"]
        self._manage_gap_timer()
