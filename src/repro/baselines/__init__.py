"""Comparison striping schemes from the paper's section 2.1 / Table 1.

* :class:`ShortestQueueFirst` — Linux EQL driver policy.
* :class:`RandomSelection` — Bay Networks random assignment.
* :class:`AddressHashing` — per-destination pinning.
* :class:`MpppSender` / :class:`MpppReceiver` — RFC 1717 Multilink PPP
  style sequence-numbered striping.
* :class:`BondingMux` / :class:`BondingDemux` — BONDING-consortium style
  fixed-frame inverse multiplexing with bounded skew compensation.

(Plain RR and GRR live in :mod:`repro.core.srr` since they are SRR-family
members; DRR and the randomized CFQ schemes live in core as well.)
"""

from repro.baselines.sqf import ShortestQueueFirst
from repro.baselines.random_selection import RandomSelection
from repro.baselines.address_hash import AddressHashing, stable_hash
from repro.baselines.mppp import (
    MPPP_HEADER_BYTES,
    MpppDiscipline,
    MpppFragment,
    MpppReceiver,
    MpppSender,
)
from repro.baselines.bonding import (
    BondingDemux,
    BondingDiscipline,
    BondingFrame,
    BondingMux,
    BondingResequencer,
)

__all__ = [
    "ShortestQueueFirst",
    "RandomSelection",
    "AddressHashing",
    "stable_hash",
    "MpppSender",
    "MpppReceiver",
    "MpppFragment",
    "MpppDiscipline",
    "MPPP_HEADER_BYTES",
    "BondingMux",
    "BondingDemux",
    "BondingFrame",
    "BondingDiscipline",
    "BondingResequencer",
]
