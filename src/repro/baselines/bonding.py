"""BONDING-style inverse multiplexing (fixed frames + skew compensation).

Section 2.1: "The BONDING scheme uses a fixed size frame structure and skew
compensation for reordering, together with frame sequence numbers to
recover from errors.  The BONDING scheme requires special hardware at the
sender and receiver" and works "only over synchronous serial channels".

We model the essence: the input byte stream is carved into fixed-size
frames dealt round-robin over the channels; each frame carries an in-band
sequence number (the hardware framing).  The receiver compensates skew with
a per-channel alignment buffer of bounded depth ``max_skew_frames``.  Skew
within the bound is absorbed exactly; skew beyond it breaks alignment and
the affected frames are lost (counted) — the failure mode that motivates
the paper's unbounded-skew-tolerant design.

Because frames are fixed-size, load sharing is perfect regardless of
packet-size mix — but only by virtue of reformatting everything, which is
exactly what general channels disallow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.cfq import Capabilities
from repro.core.packet import Packet, is_marker
from repro.core.transform import LoadSharer


@dataclass
class BondingFrame:
    """A fixed-size frame with an in-band sequence number."""

    sequence: int
    channel: int
    payload_bytes: int
    #: packet boundaries (packet-uid, bytes-of-that-packet) inside this frame
    content: List[tuple]

    @property
    def size(self) -> int:
        return self.payload_bytes

    def __repr__(self) -> str:
        return f"BondingFrame(#{self.sequence} ch={self.channel} {self.size}B)"


class BondingMux:
    """Sender: serialize packets into fixed frames, deal round robin."""

    capabilities = Capabilities(
        fifo_delivery="guaranteed",
        load_sharing="good",
        environment="Only over synchronous serial channels",
        modifies_packets=True,
    )

    def __init__(self, n_channels: int, frame_bytes: int = 512) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if frame_bytes < 8:
            raise ValueError("frame must be at least 8 bytes")
        self.n_channels = n_channels
        self.frame_bytes = frame_bytes
        self.next_sequence = 0
        self._residual: List[tuple] = []  # partial frame content
        self._residual_bytes = 0
        self.frames_emitted = 0
        self.padding_bytes = 0

    def submit(self, packet: Packet) -> List[BondingFrame]:
        """Carve a packet into the frame stream; returns completed frames."""
        frames: List[BondingFrame] = []
        remaining = packet.size
        while remaining > 0:
            space = self.frame_bytes - self._residual_bytes
            take = min(space, remaining)
            self._residual.append((packet.uid, take))
            self._residual_bytes += take
            remaining -= take
            if self._residual_bytes == self.frame_bytes:
                frames.append(self._emit())
        return frames

    def flush(self) -> Optional[BondingFrame]:
        """Pad and emit the partial frame (end of burst)."""
        if self._residual_bytes == 0:
            return None
        self.padding_bytes += self.frame_bytes - self._residual_bytes
        return self._emit()

    def _emit(self) -> BondingFrame:
        frame = BondingFrame(
            sequence=self.next_sequence,
            channel=self.next_sequence % self.n_channels,
            payload_bytes=self.frame_bytes,
            content=list(self._residual),
        )
        self.next_sequence += 1
        self.frames_emitted += 1
        self._residual = []
        self._residual_bytes = 0
        return frame


class BondingDemux:
    """Receiver: align frames by sequence within a bounded skew window.

    Frames are released in sequence order.  If the head-of-line gap cannot
    be filled because more than ``max_skew_frames`` frames are already
    waiting (i.e. the skew exceeded the hardware's compensation range), the
    gap is abandoned and alignment re-established — data loss, as real
    inverse muxes suffer when the skew bound is violated.
    """

    def __init__(
        self,
        n_channels: int,
        max_skew_frames: int = 8,
        on_bytes: Optional[Callable[[int, List[tuple]], None]] = None,
    ) -> None:
        self.n_channels = n_channels
        self.max_skew_frames = max_skew_frames
        self.on_bytes = on_bytes
        self.next_expected = 0
        self._pending: Dict[int, BondingFrame] = {}
        self.frames_released = 0
        self.frames_lost = 0
        self.sync_losses = 0
        #: reassembled packet byte counts: uid -> bytes seen
        self._assembly: Dict[int, int] = {}
        self.packets_reassembled: List[int] = []

    def push(self, frame: BondingFrame) -> List[BondingFrame]:
        """Frame arrival; returns frames released in order."""
        if frame.sequence < self.next_expected:
            self.frames_lost += 1
            return []
        self._pending[frame.sequence] = frame
        released: List[BondingFrame] = []
        released.extend(self._release())
        if len(self._pending) > self.max_skew_frames:
            # Skew compensation range exceeded: drop the gap, resync.
            self.sync_losses += 1
            target = min(self._pending)
            self.frames_lost += target - self.next_expected
            self.next_expected = target
            released.extend(self._release())
        return released

    def _release(self) -> List[BondingFrame]:
        out: List[BondingFrame] = []
        while self.next_expected in self._pending:
            frame = self._pending.pop(self.next_expected)
            self.next_expected += 1
            self.frames_released += 1
            self._track_packets(frame)
            out.append(frame)
            if self.on_bytes is not None:
                self.on_bytes(frame.payload_bytes, frame.content)
        return out

    def _track_packets(self, frame: BondingFrame) -> None:
        for uid, nbytes in frame.content:
            self._assembly[uid] = self._assembly.get(uid, 0) + nbytes
        # A packet is complete when all its bytes arrived; the mux does not
        # carry lengths in-band (hardware knows the HDLC-style boundaries),
        # so completion is detected by the caller comparing against packet
        # sizes; we expose raw assembly state instead.

    def assembled_bytes(self, uid: int) -> int:
        return self._assembly.get(uid, 0)


class BondingDiscipline(LoadSharer):
    """BONDING as a pluggable endpoint discipline.

    :meth:`wrap_packet` carves each submitted packet into fixed-size frames
    (the hardware reformatting general channels disallow); the channel of a
    frame is fixed by its sequence number, so ``choose`` just reads it.
    The receiver half (``receiver_mode = "bonding"``, a
    :class:`BondingResequencer`) realigns frames by sequence.  Plugged into
    the unified endpoint pipeline this runs BONDING-style inverse muxing
    over any transport's channel ports — delivery is *frames*, not packets,
    exactly as the real hardware presents a byte stream.
    """

    capabilities = BondingMux.capabilities
    simulatable = False
    receiver_mode = "bonding"

    def __init__(self, n: int, frame_bytes: int = 512) -> None:
        self.mux = BondingMux(n, frame_bytes)

    @property
    def n_channels(self) -> int:
        return self.mux.n_channels

    def wrap_packet(self, packet: Packet) -> List[BondingFrame]:
        """Carve into the frame stream; may complete zero or more frames."""
        return self.mux.submit(packet)

    def flush(self) -> Optional[BondingFrame]:
        """Pad and emit the partial trailing frame (end of burst)."""
        return self.mux.flush()

    def choose(self, packet: Any, queue_depths=None) -> int:
        if isinstance(packet, BondingFrame):
            return packet.channel
        # No frame in hand (e.g. a kernel peek): the next frame's slot.
        return self.mux.next_sequence % self.mux.n_channels

    def notify_sent(self, channel: int, packet: Any) -> None:
        pass

    def reset(self) -> None:
        mux = self.mux
        self.mux = BondingMux(mux.n_channels, mux.frame_bytes)

    # -- checkpoint support (repro.transport.recovery) ------------------ #

    def snapshot(self) -> Any:
        mux = self.mux
        return {
            "next_sequence": mux.next_sequence,
            "residual": [list(entry) for entry in mux._residual],
            "residual_bytes": mux._residual_bytes,
            "frames_emitted": mux.frames_emitted,
            "padding_bytes": mux.padding_bytes,
        }

    def restore(self, state: Any) -> None:
        mux = self.mux
        mux.next_sequence = state["next_sequence"]
        mux._residual = [tuple(entry) for entry in state["residual"]]
        mux._residual_bytes = state["residual_bytes"]
        mux.frames_emitted = state["frames_emitted"]
        mux.padding_bytes = state["padding_bytes"]


class BondingResequencer:
    """Receiver half of :class:`BondingDiscipline` for the endpoint pipeline.

    Adapts :class:`BondingDemux` to the ``push(channel, packet)`` /
    ``drain()`` logical-reception surface (the channel index is implicit in
    the frame's sequence number and ignored).  ``on_deliver`` receives
    released :class:`BondingFrame` objects in sequence order.
    """

    def __init__(
        self,
        n_channels: int,
        max_skew_frames: int = 8,
        on_deliver: Optional[Callable[[BondingFrame], None]] = None,
    ) -> None:
        self.demux = BondingDemux(n_channels, max_skew_frames)
        self.on_deliver = on_deliver
        self.delivered = 0

    @property
    def n_channels(self) -> int:
        return self.demux.n_channels

    @property
    def buffered(self) -> int:
        return len(self.demux._pending)

    def push(self, channel: int, frame: Any) -> List[BondingFrame]:
        if is_marker(frame):
            return []
        released = self.demux.push(frame)
        self.delivered += len(released)
        if self.on_deliver is not None:
            for item in released:
                self.on_deliver(item)
        return released

    def drain(self) -> List[BondingFrame]:
        return []

    def fail_channel(self, channel: int) -> List[BondingFrame]:
        """Alignment handles gaps via its skew window; nothing extra."""
        return []

    def revive_channel(self, channel: int) -> None:
        """Alignment is sequence-driven; a returning channel just resumes."""

    # -- checkpoint support (repro.transport.recovery) ------------------ #

    def snapshot(self) -> Any:
        demux = self.demux
        return {
            "next_expected": demux.next_expected,
            "pending": [demux._pending[seq] for seq in sorted(demux._pending)],
            "frames_released": demux.frames_released,
            "frames_lost": demux.frames_lost,
            "sync_losses": demux.sync_losses,
            "assembly": dict(demux._assembly),
            "packets_reassembled": list(demux.packets_reassembled),
            "delivered": self.delivered,
        }

    def restore(self, state: Any) -> None:
        demux = self.demux
        demux.next_expected = state["next_expected"]
        demux._pending = {frame.sequence: frame for frame in state["pending"]}
        demux.frames_released = state["frames_released"]
        demux.frames_lost = state["frames_lost"]
        demux.sync_losses = state["sync_losses"]
        demux._assembly = dict(state["assembly"])
        demux.packets_reassembled = list(state["packets_reassembled"])
        self.delivered = state["delivered"]
