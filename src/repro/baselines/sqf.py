"""Shortest Queue First — the Linux EQL serial-line driver's policy.

Section 2.1: "the channel with the smallest queue is selected for
transmitting the next packet."  Good load sharing (it adapts to channel
speed automatically) but **non-causal**: the choice depends on live queue
depths the receiver cannot observe, so there is no logical reception and
packets may be persistently misordered.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.cfq import Capabilities
from repro.core.transform import LoadSharer


class ShortestQueueFirst(LoadSharer):
    """Pick the channel with the fewest queued packets (ties -> lowest index)."""

    capabilities = Capabilities(
        fifo_delivery="may_reorder",
        load_sharing="good",
        environment="At all levels (Linux EQL driver)",
    )
    simulatable = False

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one channel")
        self._n = n
        self._fallback = 0

    @property
    def n_channels(self) -> int:
        return self._n

    def choose(
        self, packet: Any, queue_depths: Optional[Sequence[int]] = None
    ) -> int:
        if queue_depths is None:
            # Without depth information degrade to round robin.
            return self._fallback
        best = 0
        for i in range(1, self._n):
            if queue_depths[i] < queue_depths[best]:
                best = i
        return best

    def notify_sent(self, channel: int, packet: Any) -> None:
        self._fallback = (channel + 1) % self._n

    def assign_many(
        self,
        packets: Sequence[Any],
        queue_depths: Optional[Sequence[int]] = None,
    ) -> List[int]:
        # Same depth-tracking semantics as the generic two-phase loop, but
        # without re-materializing the depth list per packet.
        depths = (
            list(queue_depths)
            if queue_depths is not None
            else [0] * self._n
        )
        out: List[int] = []
        append = out.append
        n = self._n
        for _ in packets:
            best = 0
            for i in range(1, n):
                if depths[i] < depths[best]:
                    best = i
            depths[best] += 1
            self._fallback = (best + 1) % n
            append(best)
        return out

    def reset(self) -> None:
        self._fallback = 0

    # -- checkpoint support (repro.transport.recovery) ------------------ #

    def snapshot(self) -> Any:
        return {"fallback": self._fallback}

    def restore(self, state: Any) -> None:
        self._fallback = state["fallback"]
