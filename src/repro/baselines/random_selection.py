"""Random channel selection — the Bay Networks router scheme.

Section 2.1: "the Random Selection scheme relies on random assignment of
channels to packets to ensure load sharing, but does not provide FIFO
delivery."  Unlike :class:`repro.core.schemes.SeededRandomFQ` (whose PRNG
state is shared with the receiver), this baseline's randomness is private
to the sender, so the receiver cannot simulate it.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence

from repro.core.cfq import Capabilities
from repro.core.transform import LoadSharer


class RandomSelection(LoadSharer):
    """Uniformly random channel per packet (sender-private randomness)."""

    capabilities = Capabilities(
        fifo_delivery="may_reorder",
        load_sharing="good",
        environment="At all levels (Bay Networks)",
    )
    simulatable = False

    def __init__(self, n: int, rng: Optional[random.Random] = None) -> None:
        if n < 1:
            raise ValueError("need at least one channel")
        self._n = n
        self.rng = rng if rng is not None else random.Random(0)
        self._pending: Optional[int] = None

    @property
    def n_channels(self) -> int:
        return self._n

    def choose(
        self, packet: Any, queue_depths: Optional[Sequence[int]] = None
    ) -> int:
        # choose() must be repeatable until notify_sent commits, so the
        # draw is latched.
        if self._pending is None:
            self._pending = self.rng.randrange(self._n)
        return self._pending

    def notify_sent(self, channel: int, packet: Any) -> None:
        self._pending = None

    def assign_many(
        self,
        packets: Sequence[Any],
        queue_depths: Optional[Sequence[int]] = None,
    ) -> List[int]:
        # Batched draws skip the per-packet latch protocol; draw order (and
        # therefore the PRNG stream) is identical to repeated choose/notify.
        if self._pending is not None:
            first, self._pending = self._pending, None
            return [first] + [
                self.rng.randrange(self._n) for _ in packets[1:]
            ]
        n = self._n
        randrange = self.rng.randrange
        return [randrange(n) for _ in packets]

    def reset(self) -> None:
        self._pending = None

    # -- checkpoint support (repro.transport.recovery) ------------------ #

    def snapshot(self) -> Any:
        # Random.getstate() is a (version, ints-tuple, gauss) triple —
        # plain data, so checkpoints stay codec-native.
        return {"rng": self.rng.getstate(), "pending": self._pending}

    def restore(self, state: Any) -> None:
        self.rng.setstate(state["rng"])
        self._pending = state["pending"]
