"""Address-based hashing — per-flow pinning.

Section 2.1: "the Address-based Hashing scheme relies on hashing packet
addresses to channels to route packets destined for the same address over
the same channel.  This provides FIFO delivery of packets destined for the
same address, but does not provide load sharing for packets addressed to
any given destination."

Packets expose an opaque ``flow`` key (e.g. the destination address); the
hash pins each flow to one channel.  Per-flow FIFO is free (each flow rides
one FIFO channel); aggregate load sharing depends entirely on the flow
population.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional, Sequence

from repro.core.cfq import Capabilities
from repro.core.transform import LoadSharer


def stable_hash(key: Any, buckets: int) -> int:
    """A deterministic hash (stable across processes, unlike ``hash()``)."""
    digest = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big") % buckets


class AddressHashing(LoadSharer):
    """Hash the packet's flow key to a channel."""

    capabilities = Capabilities(
        fifo_delivery="per_flow_fifo",
        load_sharing="poor",
        environment="Routers (per-destination pinning)",
    )
    simulatable = False
    #: hash synchronization: per-flow pinning means arrival order is
    #: delivery order — receiver mode ``"direct"``, no resequencer, no
    #: marker codec (see repro.transport.sync_model).
    marker_free = True

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one channel")
        self._n = n

    @property
    def n_channels(self) -> int:
        return self._n

    def choose(
        self, packet: Any, queue_depths: Optional[Sequence[int]] = None
    ) -> int:
        flow = getattr(packet, "flow", None)
        return stable_hash(flow, self._n)

    def notify_sent(self, channel: int, packet: Any) -> None:
        pass

    def reset(self) -> None:
        pass
