"""Terminal line charts for the experiment runner.

The paper's Figure 15 is a seven-series line plot; this renders an
equivalent view in plain text so ``python -m repro.experiments fig15``
shows the *shape*, not just the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass
class Series:
    name: str
    marker: str
    values: Sequence[float]


def render_chart(
    x_values: Sequence[float],
    series: Sequence[Series],
    height: int = 16,
    width: int = 64,
    y_label: str = "",
    x_label: str = "",
    y_min: float = 0.0,
    y_max: Optional[float] = None,
) -> str:
    """Render multiple series on a shared-axes ASCII grid.

    Each series is drawn with its single-character marker; later series
    draw over earlier ones where they collide.  X positions are scaled
    from the data (not assumed uniform).
    """
    if not x_values or not series:
        raise ValueError("need at least one x value and one series")
    for entry in series:
        if len(entry.values) != len(x_values):
            raise ValueError(
                f"series {entry.name!r} has {len(entry.values)} values for "
                f"{len(x_values)} x positions"
            )
    if y_max is None:
        y_max = max(max(entry.values) for entry in series)
        y_max = y_max * 1.05 if y_max > 0 else 1.0
    if y_max <= y_min:
        y_max = y_min + 1.0

    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, int(round((x - x_lo) / x_span * (width - 1))))

    def row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        frac = min(1.0, max(0.0, frac))
        return min(height - 1, int(round((1 - frac) * (height - 1))))

    for entry in series:
        points = [(col(x), row(y)) for x, y in zip(x_values, entry.values)]
        # connect consecutive points with linear interpolation
        for (c0, r0), (c1, r1) in zip(points, points[1:]):
            steps = max(abs(c1 - c0), 1)
            for step in range(steps + 1):
                c = c0 + (c1 - c0) * step // steps
                r = r0 + (r1 - r0) * step // steps
                grid[r][c] = entry.marker
        for c, r in points:
            grid[r][c] = entry.marker

    lines: List[str] = []
    for index, cells in enumerate(grid):
        y_at = y_max - (y_max - y_min) * index / (height - 1)
        label = f"{y_at:7.1f} |" if index % 4 == 0 or index == height - 1 else "        |"
        lines.append(label + "".join(cells))
    lines.append("        +" + "-" * width)
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    pad = width - len(left) - len(right)
    lines.append("         " + left + " " * max(1, pad) + right)
    if x_label:
        lines.append(f"         {x_label:^{width}}")
    legend = "   ".join(f"{entry.marker}={entry.name}" for entry in series)
    header = (f"{y_label}  [{legend}]" if y_label else f"[{legend}]")
    return header + "\n" + "\n".join(lines)
