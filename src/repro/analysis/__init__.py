"""Measurement and reporting: throughput, reordering, Table 1 generation."""

from repro.analysis.metrics import (
    DeliveryLog,
    LatencyStats,
    ThroughputWindow,
    mbps,
    percentile,
)
from repro.analysis.reorder import ReorderReport, analyze_order, fifo_after_index
from repro.analysis.tables import (
    TableRow,
    extended_rows,
    paper_table1_rows,
    render_table,
    row_for,
)

__all__ = [
    "mbps",
    "ThroughputWindow",
    "LatencyStats",
    "percentile",
    "DeliveryLog",
    "ReorderReport",
    "analyze_order",
    "fifo_after_index",
    "TableRow",
    "row_for",
    "paper_table1_rows",
    "extended_rows",
    "render_table",
]
