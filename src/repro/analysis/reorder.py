"""Reordering metrics for delivered packet sequences.

The §6.3 experiments count "out of order deliveries".  We adopt the
standard definitions (in the spirit of RFC 4737):

* A delivery is **out of order** if its harness sequence number is smaller
  than some sequence number already delivered.
* **Reorder extent** of an out-of-order packet: how many packets with
  larger sequence numbers were delivered before it.
* **Displacement**: | delivered position − original position | among the
  packets that actually arrived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class ReorderReport:
    """Summary of reordering in one delivered sequence."""

    delivered: int
    out_of_order: int
    max_extent: int
    mean_displacement: float
    max_displacement: int
    missing: int
    duplicates: int

    @property
    def out_of_order_fraction(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self.out_of_order / self.delivered

    @property
    def is_fifo(self) -> bool:
        return self.out_of_order == 0 and self.duplicates == 0


def analyze_order(
    delivered_seqs: Sequence[int], sent_count: int | None = None
) -> ReorderReport:
    """Analyze a delivered sequence of harness sequence numbers.

    Args:
        delivered_seqs: sequence numbers in delivery order.
        sent_count: how many packets were originally sent (for the missing
            count); default assumes ``max(seq)+1``.
    """
    out_of_order = 0
    max_extent = 0
    max_seen = -1
    seen: set = set()
    duplicates = 0
    # extent computation: for each OOO packet count larger-seq packets
    # delivered before it.
    delivered_so_far: List[int] = []
    displacement_sum = 0
    max_displacement = 0

    order_of_arrival = {}
    unique_in_order: List[int] = []
    for seq in delivered_seqs:
        if seq in seen:
            duplicates += 1
            continue
        seen.add(seq)
        if seq < max_seen:
            out_of_order += 1
            extent = sum(1 for other in delivered_so_far if other > seq)
            max_extent = max(max_extent, extent)
        max_seen = max(max_seen, seq)
        order_of_arrival[seq] = len(unique_in_order)
        unique_in_order.append(seq)
        delivered_so_far.append(seq)

    # displacement: compare delivery rank to rank within the sorted set of
    # delivered packets (losses excluded so pure loss has displacement 0).
    for rank_sorted, seq in enumerate(sorted(unique_in_order)):
        displacement = abs(order_of_arrival[seq] - rank_sorted)
        displacement_sum += displacement
        max_displacement = max(max_displacement, displacement)

    delivered = len(unique_in_order)
    if sent_count is None:
        sent_count = (max(unique_in_order) + 1) if unique_in_order else 0
    return ReorderReport(
        delivered=delivered,
        out_of_order=out_of_order,
        max_extent=max_extent,
        mean_displacement=(displacement_sum / delivered) if delivered else 0.0,
        max_displacement=max_displacement,
        missing=max(0, sent_count - delivered),
        duplicates=duplicates,
    )


def fifo_after_index(delivered_seqs: Sequence[int]) -> int:
    """The delivery index after which the stream is strictly increasing.

    Used to verify Theorem 5.1 empirically: after recovery, everything is
    FIFO — so this returns an index well before the tail of the run.
    Returns 0 if the whole stream is already FIFO.
    """
    last_violation = 0
    max_seen = -1
    for index, seq in enumerate(delivered_seqs):
        if seq < max_seen:
            last_violation = index
        max_seen = max(max_seen, seq)
    return last_violation
