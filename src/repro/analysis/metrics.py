"""Throughput / latency measurement helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


def mbps(bytes_count: float, seconds: float) -> float:
    """Bytes over an interval → megabits per second."""
    if seconds <= 0:
        return 0.0
    return bytes_count * 8.0 / seconds / 1e6


@dataclass
class ThroughputWindow:
    """Measures goodput of a monotonically increasing byte counter over a
    warmup-excluded window.

    Usage::

        window = ThroughputWindow(lambda: receiver.bytes_delivered)
        window.open(sim.now)   # after warmup
        ...run...
        window.close(sim.now)
        window.mbps
    """

    counter: Callable[[], int]
    _start_time: Optional[float] = None
    _start_bytes: int = 0
    _end_time: Optional[float] = None
    _end_bytes: int = 0

    def open(self, now: float) -> None:
        self._start_time = now
        self._start_bytes = self.counter()

    def close(self, now: float) -> None:
        if self._start_time is None:
            raise RuntimeError("window was never opened")
        self._end_time = now
        self._end_bytes = self.counter()

    @property
    def bytes(self) -> int:
        return self._end_bytes - self._start_bytes

    @property
    def seconds(self) -> float:
        if self._start_time is None or self._end_time is None:
            return 0.0
        return self._end_time - self._start_time

    @property
    def mbps(self) -> float:
        return mbps(self.bytes, self.seconds)


@dataclass
class LatencyStats:
    """Streaming latency statistics (Welford's algorithm + extrema)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100])."""
    if not values:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass
class DeliveryLog:
    """Records (time, seq, size) for each delivered packet."""

    times: List[float] = field(default_factory=list)
    seqs: List[int] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)

    def record(self, time: float, seq: int, size: int) -> None:
        self.times.append(time)
        self.seqs.append(seq)
        self.sizes.append(size)

    @property
    def count(self) -> int:
        return len(self.times)

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)

    def goodput_mbps(self, start: float, end: float) -> float:
        span_bytes = sum(
            size
            for time, size in zip(self.times, self.sizes)
            if start <= time <= end
        )
        return mbps(span_bytes, end - start)
