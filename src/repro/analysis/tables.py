"""Regenerating the paper's Table 1 from scheme capability declarations.

Every striping scheme in the library declares a
:class:`~repro.core.cfq.Capabilities` record.  This module assembles the
feature matrix the paper presents as Table 1 and renders it as text; the
``table1`` benchmark additionally *verifies* the load-sharing and FIFO
claims by micro-simulation (see ``benchmarks/test_bench_table1.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.cfq import Capabilities


@dataclass(frozen=True)
class TableRow:
    scheme: str
    fifo_delivery: str
    load_sharing: str
    environment: str


_FIFO_LABEL = {
    "guaranteed": "Guaranteed FIFO",
    "quasi": "Quasi-FIFO",
    "may_reorder": "May be non-FIFO",
    "per_flow_fifo": "Per-destination FIFO only",
}

_SHARING_LABEL = {
    "good": "Good",
    "poor": "Poor",
}


def row_for(name: str, capabilities: Capabilities) -> TableRow:
    return TableRow(
        scheme=name,
        fifo_delivery=_FIFO_LABEL.get(
            capabilities.fifo_delivery, capabilities.fifo_delivery
        ),
        load_sharing=_SHARING_LABEL.get(
            capabilities.load_sharing, capabilities.load_sharing
        ),
        environment=capabilities.environment,
    )


def paper_table1_rows() -> List[TableRow]:
    """The five rows of the paper's Table 1, built from our implementations."""
    from repro.baselines.bonding import BondingMux
    from repro.core.srr import SRR, make_rr

    rr = make_rr(2)
    rr_with_header = Capabilities(
        fifo_delivery="guaranteed",
        load_sharing="poor",
        environment="Only if we can add headers",
        modifies_packets=True,
    )
    srr_with_header = Capabilities(
        fifo_delivery="guaranteed",
        load_sharing="good",
        environment="Only if we can add headers",
        modifies_packets=True,
    )
    srr = SRR([500, 500])
    return [
        row_for("Round-Robin, no header", rr.capabilities),
        row_for("Round-Robin with header", rr_with_header),
        row_for("BONDING", BondingMux.capabilities),
        row_for("Fair Queuing algorithm with header", srr_with_header),
        row_for("Fair Queuing algorithm, no header", srr.capabilities),
    ]


def extended_rows() -> List[TableRow]:
    """All schemes implemented in this library (paper rows + section 2.1)."""
    from repro.baselines.address_hash import AddressHashing
    from repro.baselines.mppp import MpppSender
    from repro.baselines.random_selection import RandomSelection
    from repro.baselines.sqf import ShortestQueueFirst

    rows = paper_table1_rows()
    rows.extend(
        [
            row_for("Shortest Queue First (Linux EQL)",
                    ShortestQueueFirst(2).capabilities),
            row_for("Random Selection", RandomSelection(2).capabilities),
            row_for("Address-based Hashing", AddressHashing(2).capabilities),
            row_for("MPPP (RFC 1717)", MpppSender.capabilities),
        ]
    )
    return rows


def render_table(rows: Sequence[TableRow]) -> str:
    """Plain-text rendering with aligned columns."""
    headers = ("Scheme", "FIFO delivery", "Load sharing (var. len.)", "Target environment")
    cells = [headers] + [
        (r.scheme, r.fifo_delivery, r.load_sharing, r.environment) for r in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
