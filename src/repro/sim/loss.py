"""Loss and corruption models for simulated channels.

The paper assumes channels "can be subject to packet loss and corruption"
and models occasional non-FIFO behaviour as burst errors (section 2).  We
provide:

* :class:`NoLoss` — the lossless default.
* :class:`BernoulliLoss` — i.i.d. loss with probability ``p`` (used in the
  section 6.3 loss sweeps up to 80%).
* :class:`GilbertElliottLoss` — two-state burst-loss model, the standard way
  to exercise the "burst error" channels the paper mentions.
* :class:`DeterministicLoss` — drops an explicit set of packet indices; used
  to recreate the Figure 10 walkthrough where exactly packet 7 is lost.
* :class:`CorruptionModel` — marks packets corrupted; the channel discards
  corrupted packets ("any packet corruption causes the packet to be
  discarded, and not handed over to the resequencing algorithm", section 5).
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, Optional, Set


class LossModel(abc.ABC):
    """Decides, per packet, whether the channel loses it."""

    @abc.abstractmethod
    def should_drop(self, packet_index: int, size: int) -> bool:
        """Return True if the ``packet_index``-th packet on this channel is lost."""

    def reset(self) -> None:
        """Restore the model to its initial state (default: no-op)."""


class NoLoss(LossModel):
    """A perfectly reliable channel."""

    def should_drop(self, packet_index: int, size: int) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Drop each packet independently with probability ``p``."""

    def __init__(self, p: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = p
        self.rng = rng if rng is not None else random.Random(0)
        self._initial_rng_state = self.rng.getstate()

    def should_drop(self, packet_index: int, size: int) -> bool:
        return self.rng.random() < self.p

    def reset(self) -> None:
        """Rewind the RNG to its construction-time state.

        Makes reruns reproducible: the same packet stream offered after a
        reset sees the identical drop pattern.
        """
        self.rng.setstate(self._initial_rng_state)


class GilbertElliottLoss(LossModel):
    """Two-state (good/bad) Markov burst-loss model.

    In the good state packets are lost with probability ``p_good`` (usually
    0); in the bad state with probability ``p_bad`` (usually near 1).  State
    transitions happen per packet with probabilities ``p_g2b`` and ``p_b2g``.
    """

    def __init__(
        self,
        p_g2b: float,
        p_b2g: float,
        p_bad: float = 1.0,
        p_good: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        for name, value in (
            ("p_g2b", p_g2b),
            ("p_b2g", p_b2g),
            ("p_bad", p_bad),
            ("p_good", p_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_g2b = p_g2b
        self.p_b2g = p_b2g
        self.p_bad = p_bad
        self.p_good = p_good
        self.rng = rng if rng is not None else random.Random(0)
        self._initial_rng_state = self.rng.getstate()
        self._bad = False

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    def should_drop(self, packet_index: int, size: int) -> bool:
        if self._bad:
            if self.rng.random() < self.p_b2g:
                self._bad = False
        else:
            if self.rng.random() < self.p_g2b:
                self._bad = True
        p = self.p_bad if self._bad else self.p_good
        return self.rng.random() < p

    def reset(self) -> None:
        """Return to the good state and rewind the RNG (reproducible reruns)."""
        self._bad = False
        self.rng.setstate(self._initial_rng_state)

    def steady_state_loss_rate(self) -> float:
        """Long-run average loss probability of the model."""
        denom = self.p_g2b + self.p_b2g
        if denom == 0:
            return self.p_good
        pi_bad = self.p_g2b / denom
        return pi_bad * self.p_bad + (1 - pi_bad) * self.p_good


class DeterministicLoss(LossModel):
    """Drop exactly the packets whose per-channel index is in ``indices``.

    Indices count packets offered to the channel, starting at 0.  Used to
    reproduce the paper's Figure 10 example (packet 7 lost).
    """

    def __init__(self, indices: Iterable[int]) -> None:
        self.indices: Set[int] = set(indices)

    def should_drop(self, packet_index: int, size: int) -> bool:
        return packet_index in self.indices


class SizeGatedLoss(LossModel):
    """Applies an inner loss model only to packets above a size threshold.

    Used by controlled experiments that want loss to hit *data* packets but
    never the tiny control packets (markers, credits), so that runs varying
    only a control-plane parameter see the identical data-loss pattern.
    The per-packet index passed to the inner model counts gated packets
    only, which is what makes the pattern reproducible across variants.
    """

    def __init__(self, inner: LossModel, min_size: int) -> None:
        self.inner = inner
        self.min_size = min_size
        self._gated_index = 0

    def should_drop(self, packet_index: int, size: int) -> bool:
        if size < self.min_size:
            return False
        index = self._gated_index
        self._gated_index += 1
        return self.inner.should_drop(index, size)

    def reset(self) -> None:
        self._gated_index = 0
        self.inner.reset()


class CorruptionModel:
    """Per-bit corruption; a corrupted packet fails its CRC and is discarded.

    ``ber`` is the bit error rate.  The probability a packet of ``size``
    bytes survives is ``(1 - ber) ** (8 * size)``, so bigger packets are
    likelier to be corrupted — which matters for variable-size striping.
    """

    def __init__(self, ber: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"bit error rate must be in [0, 1], got {ber}")
        self.ber = ber
        self.rng = rng if rng is not None else random.Random(0)

    def is_corrupted(self, size: int) -> bool:
        if self.ber == 0.0:
            return False
        survive = (1.0 - self.ber) ** (8 * size)
        return self.rng.random() >= survive
