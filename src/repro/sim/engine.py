"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, sequence, callback)``
triples kept in a binary heap.  Ties on time are broken by insertion order,
so a simulation run is fully reproducible.

The engine deliberately has no notion of "processes" — components schedule
plain callbacks.  This keeps the core small and makes event ordering easy to
reason about in tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` so callers can cancel it.  A
    cancelled event stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.9f} #{self.seq} {name} ({state})>"


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run(until=10.0)

    Time is in simulated seconds.  ``run`` processes events in
    ``(time, insertion order)`` order until the heap is empty, the ``until``
    horizon is passed, or ``max_events`` events have run.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._events_processed: int = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is then advanced to ``until``.
            max_events: stop after this many events (safety valve).

        Returns:
            The number of events processed during this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                processed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return processed

    def step(self) -> bool:
        """Process exactly one event.  Returns False if none are pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
