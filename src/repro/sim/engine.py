"""Discrete-event simulation engine.

A minimal, deterministic event loop.  Scheduled work is kept in a binary
heap of plain list entries ``[time, seq, callback, args]`` — lists compare
element-wise in C on ``(time, seq)``, so heap sifting never calls back into
Python the way an ``Event.__lt__`` would.  Ties on time are broken by
insertion order, so a simulation run is fully reproducible.

The engine deliberately has no notion of "processes" — components schedule
plain callbacks.  This keeps the core small and makes event ordering easy to
reason about in tests.

Two scheduling surfaces coexist:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle that supports cancellation — the general-purpose
  API used by timers (retransmit, ARP retry, keepalive).
* :meth:`Simulator.schedule_call` and :meth:`Simulator.schedule_many` are
  the *slot-free fast path*: they take pre-bound zero-argument callbacks,
  allocate no handle, and cannot be cancelled.  The batched channel
  transmit path (:mod:`repro.sim.channel`) runs almost entirely on these.

Cancelled events are skipped when popped; on top of that the heap is
*lazily compacted*: once more than half of a non-trivial heap is dead, the
dead entries are filtered out and the heap rebuilt in one O(n) pass, so
long timer-heavy runs (retransmit/marker timers that are almost always
cancelled before firing) cannot leak memory.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

#: Heap entry slots: [time, seq, callback, args].  A cancelled entry has
#: its callback slot set to None and is dropped when popped (or compacted).
_TIME, _SEQ, _CALLBACK, _ARGS = 0, 1, 2, 3

#: Slot-free entries carry this token as a fifth element so the run loop
#: can recycle them into the entry free-list after execution.  Heap
#: comparisons never reach index 4: ``(time, seq)`` is unique per entry.
_POOL_TOKEN = object()

#: Upper bound on the entry free-list; beyond this, retired entries are
#: simply dropped to the garbage collector.
_POOL_MAX = 4096

#: Compaction threshold: rebuild once the heap is larger than this *and*
#: more than half of it is cancelled entries.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A cancellable handle to a scheduled callback.

    Returned by :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.
    The handle shares the underlying heap entry with the engine: cancelling
    nulls the entry's callback slot, so the engine skips it on pop and the
    compactor can reclaim it.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute simulated time the callback fires at."""
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        """Insertion-order tiebreaker."""
        return self._entry[_SEQ]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        entry = self._entry
        if entry[_CALLBACK] is not None:
            entry[_CALLBACK] = None
            entry[_ARGS] = ()
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entry = self._entry
        if entry[_CALLBACK] is None:
            return f"<Event t={entry[_TIME]:.9f} #{entry[_SEQ]} (cancelled)>"
        name = getattr(entry[_CALLBACK], "__qualname__", repr(entry[_CALLBACK]))
        return f"<Event t={entry[_TIME]:.9f} #{entry[_SEQ]} {name} (pending)>"


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run(until=10.0)

    Time is in simulated seconds.  ``run`` processes events in
    ``(time, insertion order)`` order until the heap is empty, the ``until``
    horizon is passed, or ``max_events`` events have run.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[list] = []
        self._seq: int = 0
        self._running: bool = False
        self._events_processed: int = 0
        self._cancelled: int = 0
        #: free-list of retired slot-free heap entries (see _POOL_TOKEN)
        self._entry_pool: List[list] = []
        self._entries_reused: int = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (pre-compaction)."""
        return self._cancelled

    @property
    def entries_reused(self) -> int:
        """Slot-free heap entries served from the free-list (perf counter)."""
        return self._entries_reused

    # ------------------------------------------------------------------ #
    # scheduling

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        entry = [time, self._seq, callback, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry, self)

    def schedule_call(self, time: float, callback: Callable[[], Any]) -> None:
        """Slot-free fast path: a pre-bound zero-arg callback at ``time``.

        No :class:`Event` handle is allocated, so the event cannot be
        cancelled.  This is the per-burst scheduling primitive of the
        batched channel transmit path.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[_TIME] = time
            entry[_SEQ] = self._seq
            entry[_CALLBACK] = callback
            self._entries_reused += 1
        else:
            entry = [time, self._seq, callback, (), _POOL_TOKEN]
        heapq.heappush(self._heap, entry)
        self._seq += 1

    def schedule_many(
        self, items: Iterable[Tuple[float, Callable[[], Any]]]
    ) -> int:
        """Schedule many ``(absolute_time, zero_arg_callback)`` pairs.

        The batched counterpart of :meth:`schedule_call`: one call, one
        validation pass, no handles.  Items need not be sorted; each gets
        the next insertion sequence number in iteration order, so the
        ``(time, seq)`` determinism contract is preserved.  Returns the
        number of events scheduled.
        """
        heap = self._heap
        push = heapq.heappush
        pool = self._entry_pool
        now = self._now
        seq = self._seq
        count = 0
        reused = 0
        for time, callback in items:
            if time < now:
                self._seq = seq
                self._entries_reused += reused
                raise SimulationError(
                    f"cannot schedule at {time} before current time {now}"
                )
            if pool:
                entry = pool.pop()
                entry[_TIME] = time
                entry[_SEQ] = seq
                entry[_CALLBACK] = callback
                reused += 1
            else:
                entry = [time, seq, callback, (), _POOL_TOKEN]
            push(heap, entry)
            seq += 1
            count += 1
        self._seq = seq
        self._entries_reused += reused
        return count

    # ------------------------------------------------------------------ #
    # cancellation bookkeeping

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        heap = self._heap
        if len(heap) > _COMPACT_MIN and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap in one pass.

        Compacts *in place* (same list object): ``run``/``step`` hold a
        local alias to the heap while executing callbacks, and a callback
        may trigger compaction via :meth:`Event.cancel`.
        """
        heap = self._heap
        heap[:] = [e for e in heap if e[_CALLBACK] is not None]
        heapq.heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------ #
    # execution

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        batch: bool = False,
    ) -> int:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is then advanced to ``until``.
            max_events: stop after this many events (safety valve).  With
                ``batch=True`` the budget is checked between timestamp
                batches, so a batch that straddles the budget completes.
            batch: pop all events sharing the earliest timestamp at once
                (FIFO within the batch) instead of one heap pop per event.
                Semantically identical to the default loop — same
                ``(time, seq)`` order, cancellations honored at execution
                time — but cheaper when many events share a timestamp.

        Returns:
            The number of events processed during this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        pool = self._entry_pool
        try:
            if not batch:
                while heap:
                    entry = heap[0]
                    if entry[_CALLBACK] is None:
                        pop(heap)
                        self._cancelled -= 1
                        continue
                    if max_events is not None and processed >= max_events:
                        break
                    time = entry[_TIME]
                    if until is not None and time > until:
                        break
                    pop(heap)
                    self._now = time
                    entry[_CALLBACK](*entry[_ARGS])
                    processed += 1
                    if entry[-1] is _POOL_TOKEN and len(pool) < _POOL_MAX:
                        entry[_CALLBACK] = None
                        pool.append(entry)
            else:
                group: List[list] = []
                while heap:
                    entry = heap[0]
                    if entry[_CALLBACK] is None:
                        pop(heap)
                        self._cancelled -= 1
                        continue
                    if max_events is not None and processed >= max_events:
                        break
                    time = entry[_TIME]
                    if until is not None and time > until:
                        break
                    # Pop the whole same-timestamp batch, then execute it
                    # FIFO.  Callbacks may cancel later batch members (the
                    # callback slot is re-checked at execution) or schedule
                    # new events at this same timestamp (they have higher
                    # seq, so they form the next batch — same order as the
                    # unbatched loop).
                    group.clear()
                    while heap and heap[0][_TIME] == time:
                        group.append(pop(heap))
                    self._now = time
                    for entry in group:
                        callback = entry[_CALLBACK]
                        if callback is None:
                            self._cancelled -= 1
                            continue
                        callback(*entry[_ARGS])
                        processed += 1
                        if entry[-1] is _POOL_TOKEN and len(pool) < _POOL_MAX:
                            entry[_CALLBACK] = None
                            pool.append(entry)
        finally:
            self._running = False
            self._events_processed += processed
        if until is not None and self._now < until:
            self._now = until
        return processed

    def step(self, until: Optional[float] = None) -> bool:
        """Process exactly one event.  Returns False if none are eligible.

        Honors the same contracts as :meth:`run`: re-entrant calls raise
        :class:`SimulationError`, and with ``until`` set the event is only
        processed if it fires at or before the horizon — otherwise the
        clock advances to ``until`` and False is returned (mirroring
        ``run(until=...)``'s clock semantics).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            time = entry[_TIME]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            self._running = True
            try:
                self._now = time
                entry[_CALLBACK](*entry[_ARGS])
            finally:
                self._running = False
                self._events_processed += 1
            pool = self._entry_pool
            if entry[-1] is _POOL_TOKEN and len(pool) < _POOL_MAX:
                entry[_CALLBACK] = None
                pool.append(entry)
            return True
        if until is not None and self._now < until:
            self._now = until
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if heap is empty."""
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][_TIME] if heap else None
