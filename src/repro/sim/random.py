"""Seeded randomness for reproducible simulations.

Every stochastic component in the simulator draws from its own named stream
derived from a single experiment seed.  Two runs with the same seed produce
bit-identical event sequences; changing one component's draw pattern does not
perturb the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, named :class:`random.Random` streams.

    Usage::

        streams = RandomStreams(seed=42)
        loss_rng = streams.stream("channel0.loss")
        skew_rng = streams.stream("channel0.skew")

    The same ``(seed, name)`` pair always yields the same stream, and
    repeated calls with the same name return the same object.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG stream for ``name``, creating it if needed."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
