"""Structured event tracing.

Tests and experiments often need to assert on *sequences* of protocol events
(e.g. "the receiver delivered packets 1..6 in order, then skipped channel 0
in round 6").  Components emit :class:`TraceEvent` records into a
:class:`Tracer`; tests filter and assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol event."""

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] {self.source}: {self.kind} {parts}"


class Tracer:
    """Collects trace events; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        """Record one event (if enabled and under the cap)."""
        if not self.enabled:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, source, kind, detail))

    def filter(
        self, kind: Optional[str] = None, source: Optional[str] = None
    ) -> Iterator[TraceEvent]:
        """Iterate events matching the given kind and/or source."""
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if source is not None and event.source != source:
                continue
            yield event

    def count(self, kind: Optional[str] = None, source: Optional[str] = None) -> int:
        return sum(1 for _ in self.filter(kind, source))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


class NullTracer(Tracer):
    """A tracer that can never record anything.

    Hot paths default to :data:`NULL_TRACER` and additionally guard emit
    calls with ``if tracer.enabled:`` so the per-event kwargs dict is never
    even built when tracing is off; this class backstops any unguarded
    call site with a constant-time no-op and refuses to be enabled (a
    shared module-level instance must stay inert).
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        pass

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NULL_TRACER is shared and cannot be enabled; "
                "create a Tracer() instead"
            )


#: A shared disabled tracer components can default to.
NULL_TRACER = NullTracer()
