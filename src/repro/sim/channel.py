"""A simulated FIFO channel.

The paper's channel abstraction (section 2): a logical FIFO path with

* a transmission rate (bits/second) — packets are serialized onto the wire,
* a propagation delay, possibly different per channel (static *skew*),
* per-packet delay variation (dynamic skew) that still preserves FIFO order,
* packet loss and corruption (corrupted packets are discarded on arrival).

A channel also has a finite transmit queue.  A full queue exerts
*backpressure* on the striping sender: this is what makes plain round robin
throughput collapse to the slowest link in Figure 15 — the sender must wait
for the slow channel's queue to drain before it may send the next packet in
order.

Fast path (``fast=True``): while the channel is *static* — no live loss,
no corruption, no dynamic skew — the whole transmit queue is serialized as
one back-to-back burst per event instead of one ``_tx_done`` event per
packet.  Completion and arrival times are accumulated with exactly the
same floating-point expressions the per-packet path evaluates, so burst
mode is time-identical, packet for packet.  Deliveries run off a *train*:
a FIFO of precomputed ``(arrival, packet, size)`` entries with a single
armed slot-free engine callback that re-arms itself for the next distinct
arrival time.  A channel whose loss model is live (or that has corruption
or skew) keeps the classic per-packet pipeline, because loss and
corruption draws must happen at exact per-packet transmission boundaries
(``stop_losses_at`` mutates the loss probability at a simulated time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.loss import CorruptionModel, LossModel, NoLoss


@dataclass
class ChannelStats:
    """Counters accumulated by a :class:`Channel` over its lifetime."""

    offered_packets: int = 0
    offered_bytes: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    lost_packets: int = 0
    corrupted_packets: int = 0
    queue_drops: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the transmitter spent sending."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class Channel:
    """A FIFO channel between one sender and one receiver.

    Args:
        sim: the event engine.
        bandwidth_bps: transmission rate in bits per second.
        prop_delay: one-way propagation delay in seconds.
        name: label used in traces and errors.
        queue_limit: max packets waiting in the transmit queue (excludes the
            packet on the wire).  ``None`` means unbounded.
        loss_model: decides which packets the channel loses.
        corruption: optional bit-error model; corrupted packets are dropped
            at the receiver (CRC failure), exactly like losses but counted
            separately.
        skew: optional callable ``() -> float`` giving extra per-packet delay
            (dynamic skew).  Arrival times are clamped to be non-decreasing
            so the channel remains FIFO, as the paper's model requires.
        size_of: maps a packet object to its size in bytes on this channel
            (default: ``packet.size`` attribute).  Interfaces override this
            to add framing overhead (Ethernet headers, ATM cell padding).
        fast: opt in to the burst-batched transmit path (see module
            docstring).  Time-identical to the per-packet path; lossy or
            skewed channels automatically stay on the classic pipeline.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        prop_delay: float,
        *,
        name: str = "channel",
        queue_limit: Optional[int] = None,
        loss_model: Optional[LossModel] = None,
        corruption: Optional[CorruptionModel] = None,
        skew: Optional[Callable[[], float]] = None,
        size_of: Optional[Callable[[Any], int]] = None,
        fast: bool = False,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay}")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.name = name
        self.queue_limit = queue_limit
        self.loss_model: LossModel = loss_model if loss_model is not None else NoLoss()
        self.corruption = corruption
        self.skew = skew
        self.size_of = size_of if size_of is not None else _default_size
        self.fast = fast
        self.stats = ChannelStats()

        self.on_deliver: Optional[Callable[[Any], None]] = None
        self.on_drop: Optional[Callable[[Any, str], None]] = None
        self.on_space: Optional[Callable[[], None]] = None

        self._queue: Deque[Any] = deque()
        self._transmitting = False
        self._paused = False
        self._last_arrival = 0.0
        self._offered_index = 0
        # Fast-path delivery train: (arrival, packet, size) in FIFO order
        # with at most one armed engine callback at a time.
        self._train: Deque[Any] = deque()
        self._train_armed = False

    # ------------------------------------------------------------------ #
    # sender side

    @property
    def queue_length(self) -> int:
        """Packets waiting in the transmit queue (not counting in-flight)."""
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        return sum(self.size_of(p) for p in self._queue)

    @property
    def in_flight(self) -> int:
        """Packets serialized but not yet delivered (burst-mode train)."""
        return len(self._train)

    def can_accept(self) -> bool:
        """True if :meth:`send` would enqueue rather than drop."""
        if self.queue_limit is None:
            return True
        return len(self._queue) < self.queue_limit

    def send(self, packet: Any, force: bool = False) -> bool:
        """Offer a packet to the channel.

        Returns True if the packet was queued for transmission, False if it
        was dropped because the transmit queue is full.  ``force`` bypasses
        the queue limit — used for tiny control packets (markers, credits)
        that must not be lost to transient data backlog.
        """
        size = self.size_of(packet)
        self.stats.offered_packets += 1
        self.stats.offered_bytes += size
        if force:
            self._queue.append(packet)
            if not self._transmitting:
                self._kick()
            return True
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self.stats.queue_drops += 1
            if self.on_drop is not None:
                self.on_drop(packet, "queue_full")
            return False
        self._queue.append(packet)
        if not self._transmitting:
            self._kick()
        return True

    @property
    def paused(self) -> bool:
        """True while the transmitter is administratively paused."""
        return self._paused

    def pause(self) -> None:
        """Freeze the transmitter (a link outage that loses nothing).

        Queued packets stay queued and new sends keep enqueueing (or hit
        the queue limit — exactly the backpressure a stalled link exerts on
        the striping sender).  Packets already serialized keep propagating
        and are delivered normally.
        """
        self._paused = True

    def resume(self) -> None:
        """Unfreeze the transmitter and restart service of the queue."""
        if not self._paused:
            return
        self._paused = False
        if self._queue and not self._transmitting:
            self._kick()

    def send_burst(self, packets: Sequence[Any]) -> None:
        """Bulk-enqueue a batch the caller has already capacity-checked.

        The batched striper pump admits packets against the channel's free
        queue slots before calling this, so there is no per-packet drop
        check here.  Equivalent to ``send(p)`` for each packet.
        """
        queue = self._queue
        stats = self.stats
        size_of = self.size_of
        for packet in packets:
            stats.offered_packets += 1
            stats.offered_bytes += size_of(packet)
            queue.append(packet)
        if not self._transmitting:
            self._kick()

    # ------------------------------------------------------------------ #
    # internal transmission pipeline

    def _kick(self) -> None:
        """Start transmitting: burst mode when eligible, else per-packet.

        Eligibility is re-evaluated at every transmission start, so a
        channel whose loss model goes quiescent mid-run (``stop_losses_at``
        zeroing the drop probability) upgrades to burst mode for the rest
        of the run, and vice versa.
        """
        if self._paused:
            # The in-flight packet (if any) just completed; service of the
            # queue resumes only via :meth:`resume`.
            self._transmitting = False
            return
        if self.fast and self._queue and self._burst_capable():
            self._start_burst()
        else:
            self._start_next()

    def _burst_capable(self) -> bool:
        """True when per-packet boundary work cannot observe anything.

        Loss and corruption draws happen at per-packet transmission
        boundaries and may consume RNG state or see mutated probabilities,
        so any live model forces the classic pipeline.  A Bernoulli-style
        model with ``p == 0.0`` draws nothing, so it is safe to batch —
        note this assumes the probability is only ever *lowered* mid-run
        (the ``stop_losses_at`` pattern), never raised.
        """
        loss = self.loss_model
        if type(loss) is not NoLoss and getattr(loss, "p", 1.0) != 0.0:
            return False
        return self.corruption is None and self.skew is None

    def _start_burst(self) -> None:
        """Serialize the whole queue back-to-back in one engine event.

        Times are accumulated with exactly the per-packet path's
        floating-point expressions (``tx = 8.0 * size / bandwidth`` chained
        by addition), so completion and arrival instants are bit-identical
        to ``_start_next``/``_tx_done`` chains over the same packets.
        """
        self._transmitting = True
        queue = self._queue
        sim = self.sim
        bandwidth = self.bandwidth_bps
        size_of = self.size_of
        prop = self.prop_delay
        stats = self.stats
        train = self._train
        last_arrival = self._last_arrival
        t = sim.now
        count = len(queue)
        while queue:
            packet = queue.popleft()
            size = size_of(packet)
            tx_time = (8.0 * size) / bandwidth
            stats.busy_time += tx_time
            t += tx_time
            arrival = t + prop
            if arrival < last_arrival:
                arrival = last_arrival
            last_arrival = arrival
            train.append((arrival, packet, size))
        self._last_arrival = last_arrival
        self._offered_index += count
        sim.schedule_call(t, self._burst_done)
        if not self._train_armed:
            self._arm_train()

    def _burst_done(self) -> None:
        self._transmitting = False
        if self._queue:
            self._kick()
        if self.on_space is not None and (
            self.queue_limit is None or len(self._queue) < self.queue_limit
        ):
            self.on_space()

    def _arm_train(self) -> None:
        train = self._train
        if train:
            self._train_armed = True
            self.sim.schedule_call(train[0][0], self._run_train)
        else:
            self._train_armed = False

    def _run_train(self) -> None:
        train = self._train
        now = self.sim.now
        stats = self.stats
        on_deliver = self.on_deliver
        while train and train[0][0] <= now:
            _, packet, size = train.popleft()
            stats.delivered_packets += 1
            stats.delivered_bytes += size
            if on_deliver is not None:
                on_deliver(packet)
        self._arm_train()

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        packet = self._queue.popleft()
        size = self.size_of(packet)
        tx_time = (8.0 * size) / self.bandwidth_bps
        self.stats.busy_time += tx_time
        self.sim.schedule(tx_time, self._tx_done, packet, size)

    def _tx_done(self, packet: Any, size: int) -> None:
        index = self._offered_index
        self._offered_index += 1

        lost = self.loss_model.should_drop(index, size)
        corrupted = (
            not lost
            and self.corruption is not None
            and self.corruption.is_corrupted(size)
        )
        if lost:
            self.stats.lost_packets += 1
            if self.on_drop is not None:
                self.on_drop(packet, "loss")
        elif corrupted:
            self.stats.corrupted_packets += 1
            if self.on_drop is not None:
                self.on_drop(packet, "corruption")
        else:
            arrival = self.sim.now + self.prop_delay
            if self.skew is not None:
                extra = self.skew()
                if extra < 0:
                    extra = 0.0
                arrival += extra
            # Clamp so arrivals are non-decreasing: the channel is FIFO even
            # under dynamic skew (the paper's model, section 2).
            if arrival < self._last_arrival:
                arrival = self._last_arrival
            self._last_arrival = arrival
            self.sim.schedule_at(arrival, self._deliver, packet, size)

        self._kick()
        # The queue just shrank by one; tell the sender space is available.
        if self.on_space is not None and (
            self.queue_limit is None or len(self._queue) < self.queue_limit
        ):
            self.on_space()

    def _deliver(self, packet: Any, size: int) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += size
        if self.on_deliver is not None:
            self.on_deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Channel {self.name} {self.bandwidth_bps / 1e6:.2f} Mbps "
            f"prop={self.prop_delay * 1e3:.2f} ms qlen={len(self._queue)}>"
        )


def _default_size(packet: Any) -> int:
    size = getattr(packet, "size", None)
    if size is None:
        raise TypeError(f"packet {packet!r} has no 'size' attribute")
    return int(size)
