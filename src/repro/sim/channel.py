"""A simulated FIFO channel.

The paper's channel abstraction (section 2): a logical FIFO path with

* a transmission rate (bits/second) — packets are serialized onto the wire,
* a propagation delay, possibly different per channel (static *skew*),
* per-packet delay variation (dynamic skew) that still preserves FIFO order,
* packet loss and corruption (corrupted packets are discarded on arrival).

A channel also has a finite transmit queue.  A full queue exerts
*backpressure* on the striping sender: this is what makes plain round robin
throughput collapse to the slowest link in Figure 15 — the sender must wait
for the slow channel's queue to drain before it may send the next packet in
order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from repro.sim.engine import Simulator
from repro.sim.loss import CorruptionModel, LossModel, NoLoss


@dataclass
class ChannelStats:
    """Counters accumulated by a :class:`Channel` over its lifetime."""

    offered_packets: int = 0
    offered_bytes: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    lost_packets: int = 0
    corrupted_packets: int = 0
    queue_drops: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the transmitter spent sending."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class Channel:
    """A FIFO channel between one sender and one receiver.

    Args:
        sim: the event engine.
        bandwidth_bps: transmission rate in bits per second.
        prop_delay: one-way propagation delay in seconds.
        name: label used in traces and errors.
        queue_limit: max packets waiting in the transmit queue (excludes the
            packet on the wire).  ``None`` means unbounded.
        loss_model: decides which packets the channel loses.
        corruption: optional bit-error model; corrupted packets are dropped
            at the receiver (CRC failure), exactly like losses but counted
            separately.
        skew: optional callable ``() -> float`` giving extra per-packet delay
            (dynamic skew).  Arrival times are clamped to be non-decreasing
            so the channel remains FIFO, as the paper's model requires.
        size_of: maps a packet object to its size in bytes on this channel
            (default: ``packet.size`` attribute).  Interfaces override this
            to add framing overhead (Ethernet headers, ATM cell padding).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        prop_delay: float,
        *,
        name: str = "channel",
        queue_limit: Optional[int] = None,
        loss_model: Optional[LossModel] = None,
        corruption: Optional[CorruptionModel] = None,
        skew: Optional[Callable[[], float]] = None,
        size_of: Optional[Callable[[Any], int]] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay}")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.name = name
        self.queue_limit = queue_limit
        self.loss_model: LossModel = loss_model if loss_model is not None else NoLoss()
        self.corruption = corruption
        self.skew = skew
        self.size_of = size_of if size_of is not None else _default_size
        self.stats = ChannelStats()

        self.on_deliver: Optional[Callable[[Any], None]] = None
        self.on_drop: Optional[Callable[[Any, str], None]] = None
        self.on_space: Optional[Callable[[], None]] = None

        self._queue: Deque[Any] = deque()
        self._transmitting = False
        self._last_arrival = 0.0
        self._offered_index = 0

    # ------------------------------------------------------------------ #
    # sender side

    @property
    def queue_length(self) -> int:
        """Packets waiting in the transmit queue (not counting in-flight)."""
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        return sum(self.size_of(p) for p in self._queue)

    def can_accept(self) -> bool:
        """True if :meth:`send` would enqueue rather than drop."""
        if self.queue_limit is None:
            return True
        return len(self._queue) < self.queue_limit

    def send(self, packet: Any, force: bool = False) -> bool:
        """Offer a packet to the channel.

        Returns True if the packet was queued for transmission, False if it
        was dropped because the transmit queue is full.  ``force`` bypasses
        the queue limit — used for tiny control packets (markers, credits)
        that must not be lost to transient data backlog.
        """
        size = self.size_of(packet)
        self.stats.offered_packets += 1
        self.stats.offered_bytes += size
        if force:
            self._queue.append(packet)
            if not self._transmitting:
                self._start_next()
            return True
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self.stats.queue_drops += 1
            if self.on_drop is not None:
                self.on_drop(packet, "queue_full")
            return False
        self._queue.append(packet)
        if not self._transmitting:
            self._start_next()
        return True

    # ------------------------------------------------------------------ #
    # internal transmission pipeline

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        packet = self._queue.popleft()
        size = self.size_of(packet)
        tx_time = (8.0 * size) / self.bandwidth_bps
        self.stats.busy_time += tx_time
        self.sim.schedule(tx_time, self._tx_done, packet, size)

    def _tx_done(self, packet: Any, size: int) -> None:
        index = self._offered_index
        self._offered_index += 1

        lost = self.loss_model.should_drop(index, size)
        corrupted = (
            not lost
            and self.corruption is not None
            and self.corruption.is_corrupted(size)
        )
        if lost:
            self.stats.lost_packets += 1
            if self.on_drop is not None:
                self.on_drop(packet, "loss")
        elif corrupted:
            self.stats.corrupted_packets += 1
            if self.on_drop is not None:
                self.on_drop(packet, "corruption")
        else:
            arrival = self.sim.now + self.prop_delay
            if self.skew is not None:
                extra = self.skew()
                if extra < 0:
                    extra = 0.0
                arrival += extra
            # Clamp so arrivals are non-decreasing: the channel is FIFO even
            # under dynamic skew (the paper's model, section 2).
            if arrival < self._last_arrival:
                arrival = self._last_arrival
            self._last_arrival = arrival
            self.sim.schedule_at(arrival, self._deliver, packet, size)

        self._start_next()
        # The queue just shrank by one; tell the sender space is available.
        if self.on_space is not None and (
            self.queue_limit is None or len(self._queue) < self.queue_limit
        ):
            self.on_space()

    def _deliver(self, packet: Any, size: int) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += size
        if self.on_deliver is not None:
            self.on_deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Channel {self.name} {self.bandwidth_bps / 1e6:.2f} Mbps "
            f"prop={self.prop_delay * 1e3:.2f} ms qlen={len(self._queue)}>"
        )


def _default_size(packet: Any) -> int:
    size = getattr(packet, "size", None)
    if size is None:
        raise TypeError(f"packet {packet!r} has no 'size' attribute")
    return int(size)
