"""Discrete-event simulation substrate.

This package provides the simulated "hardware" that the striping protocol
runs over: an event-driven clock (:mod:`repro.sim.engine`), FIFO channels
with bandwidth / propagation delay / skew / loss (:mod:`repro.sim.channel`),
loss and corruption models (:mod:`repro.sim.loss`), timed adversarial
fault injection (:mod:`repro.sim.faults`), a host CPU model with
interrupt costs (:mod:`repro.sim.host`), seeded randomness
(:mod:`repro.sim.random`), and structured event tracing
(:mod:`repro.sim.trace`).

The paper's testbed was a pair of NetBSD workstations joined by an Ethernet
and an ATM PVC; this package is the substitute substrate (see DESIGN.md
section 2).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.channel import Channel, ChannelStats
from repro.sim.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSchedule,
    InstalledFaults,
)
from repro.sim.loss import (
    BernoulliLoss,
    CorruptionModel,
    DeterministicLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
)
from repro.sim.host import HostCPU, NicQueue
from repro.sim.random import RandomStreams
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Event",
    "Simulator",
    "Channel",
    "ChannelStats",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSchedule",
    "InstalledFaults",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "DeterministicLoss",
    "CorruptionModel",
    "HostCPU",
    "NicQueue",
    "RandomStreams",
    "Tracer",
    "TraceEvent",
]
