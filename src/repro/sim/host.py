"""Receiver host CPU and interrupt model.

Section 6.2 of the paper explains the Figure 15 throughput ceiling:

    "With a single interface under heavy load, multiple packets can be
    received in a single interrupt routine.  This effect is less pronounced
    with striping, where interrupts are received from multiple interfaces.
    Consequently, there is a significant increase in the number of
    interrupts, and correspondingly in the processing overhead."

We model exactly that mechanism.  Each NIC has a receive queue
(:class:`NicQueue`).  When a packet arrives on an idle NIC, the NIC raises an
interrupt; the CPU services interrupts in FIFO order.  Servicing an interrupt
costs ``per_interrupt_cost`` plus ``per_packet_cost`` for every packet
drained from that NIC's queue *at service time* — so a heavily loaded single
interface amortizes the interrupt cost over a large batch, while the same
aggregate rate split across several interfaces produces more interrupts with
smaller batches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional

from repro.sim.engine import Simulator


class NicQueue:
    """Receive-side queue of one network interface.

    Packets delivered by the channel land here and wait for the host CPU to
    process them.  ``queue_limit`` models receive-ring exhaustion: arrivals
    beyond the limit are dropped (counted in ``drops``).
    """

    def __init__(
        self,
        name: str,
        cpu: "HostCPU",
        queue_limit: Optional[int] = None,
    ) -> None:
        self.name = name
        self.cpu = cpu
        self.queue_limit = queue_limit
        self.queue: Deque[Any] = deque()
        self.interrupt_pending = False
        self.drops = 0
        self.interrupts = 0

    def enqueue(self, packet: Any) -> bool:
        """Packet arrival from the wire.  Returns False if the ring was full."""
        if self.queue_limit is not None and len(self.queue) >= self.queue_limit:
            self.drops += 1
            return False
        self.queue.append(packet)
        if not self.interrupt_pending:
            self.interrupt_pending = True
            self.interrupts += 1
            self.cpu._post_interrupt(self)
        return True

    def enqueue_many(self, packets: List[Any]) -> int:
        """Burst arrival from the wire: one interrupt for the whole batch.

        This is the receive-side counterpart of the channel's burst
        transmit path — a back-to-back train landing on an idle NIC is
        exactly the "multiple packets received in a single interrupt
        routine" coalescing of section 6.2.  Returns the number accepted;
        overflow beyond the ring limit is dropped per packet.
        """
        accepted = 0
        queue = self.queue
        limit = self.queue_limit
        for packet in packets:
            if limit is not None and len(queue) >= limit:
                self.drops += 1
                continue
            queue.append(packet)
            accepted += 1
        if accepted and not self.interrupt_pending:
            self.interrupt_pending = True
            self.interrupts += 1
            self.cpu._post_interrupt(self)
        return accepted


class HostCPU:
    """A single CPU servicing NIC interrupts.

    Args:
        sim: the event engine.
        per_packet_cost: seconds of CPU time to process one received packet
            (header parsing, demux, copy).
        per_interrupt_cost: fixed seconds of CPU time per interrupt
            (context switch, handler entry/exit).
        on_packet: callback invoked (in simulated time) when the CPU finishes
            processing a packet — this hands the packet to the protocol
            stack.
    """

    def __init__(
        self,
        sim: Simulator,
        per_packet_cost: float = 0.0,
        per_interrupt_cost: float = 0.0,
        on_packet: Optional[Callable[[Any, str], None]] = None,
        max_batch: Optional[int] = None,
    ) -> None:
        if per_packet_cost < 0 or per_interrupt_cost < 0:
            raise ValueError("CPU costs must be non-negative")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.sim = sim
        self.per_packet_cost = per_packet_cost
        self.per_interrupt_cost = per_interrupt_cost
        self.on_packet = on_packet
        #: ring-DMA budget: at most this many packets drained per interrupt;
        #: the remainder re-raises the interrupt.  This bounds coalescing
        #: gains, so an aggregate load sharing one CPU saturates where two
        #: separately measured loads would not (Figure 15's flattening).
        self.max_batch = max_batch
        self.busy = False
        self.busy_time = 0.0
        self.total_interrupts = 0
        self.total_packets = 0
        self._pending: Deque[NicQueue] = deque()

    def new_nic(self, name: str, queue_limit: Optional[int] = None) -> NicQueue:
        """Create a NIC receive queue attached to this CPU."""
        return NicQueue(name, self, queue_limit)

    # ------------------------------------------------------------------ #

    def _post_interrupt(self, nic: NicQueue) -> None:
        self._pending.append(nic)
        if not self.busy:
            self._service_next()

    def _service_next(self) -> None:
        if not self._pending:
            self.busy = False
            return
        self.busy = True
        nic = self._pending.popleft()
        # Drain the batch present at service time (interrupt coalescing),
        # bounded by the ring-DMA budget; packets arriving during service
        # raise a fresh interrupt because interrupt_pending is cleared.
        if self.max_batch is None or len(nic.queue) <= self.max_batch:
            batch = list(nic.queue)
            nic.queue.clear()
            nic.interrupt_pending = False
        else:
            batch = [nic.queue.popleft() for _ in range(self.max_batch)]
            # Budget exhausted with work left: the NIC immediately re-raises.
            self._pending.append(nic)
            nic.interrupts += 1
        self.total_interrupts += 1
        self.total_packets += len(batch)
        cost = self.per_interrupt_cost + self.per_packet_cost * len(batch)
        self.busy_time += cost
        self.sim.schedule(cost, self._finish_batch, nic.name, batch)

    def _finish_batch(self, nic_name: str, batch: List[Any]) -> None:
        if self.on_packet is not None:
            for packet in batch:
                self.on_packet(packet, nic_name)
        self._service_next()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the CPU spent in interrupt handlers."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


@dataclass
class Outage:
    """One completed (or still-open) endpoint outage window."""

    target: str
    down_at: float
    up_at: float = -1.0

    @property
    def open(self) -> bool:
        return self.up_at < 0


class EndpointCrashController:
    """Kill and restart whole endpoints mid-run (``endpoint_crash`` faults).

    The paper's crash story is a reset: "We deal with sender or receiver
    node crashes by doing a reset."  This controller models the node
    itself: at ``crash(target)`` the endpoint object is torn down via the
    rig-supplied ``kill_*`` callable (cancelling its timers — a dead host
    takes no further actions, but packets already handed to the channels
    stay in flight, they are *in the network*); at ``restart(target)`` the
    ``build_*`` callable reconstructs a fresh incarnation, typically from
    its last :mod:`repro.transport.recovery` checkpoint.

    The controller is deliberately ignorant of endpoint internals: the
    rig owns construction, teardown, and rewiring (its stable per-channel
    dispatchers must be installed *before* fault injectors wrap
    ``channel.on_deliver``, so a rebuilt endpoint swaps in behind the
    injector, never over it).

    Crash/restart are idempotent per target — overlapping schedules
    collapse into one outage window.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        kill_sender: Callable[[], None],
        build_sender: Callable[[], None],
        kill_receiver: Callable[[], None],
        build_receiver: Callable[[], None],
    ) -> None:
        self.sim = sim
        self._kill = {"sender": kill_sender, "receiver": kill_receiver}
        self._build = {"sender": build_sender, "receiver": build_receiver}
        self.alive = {"sender": True, "receiver": True}
        self.outages: List[Outage] = []
        self._open: dict = {}
        self.crashes = {"sender": 0, "receiver": 0}
        self.restarts = {"sender": 0, "receiver": 0}

    def crash(self, target: str) -> None:
        """Destroy ``target`` now (no-op if it is already down)."""
        if target not in self.alive:
            raise ValueError(f"unknown crash target {target!r}")
        if not self.alive[target]:
            return
        self.alive[target] = False
        self.crashes[target] += 1
        outage = Outage(target=target, down_at=self.sim.now)
        self.outages.append(outage)
        self._open[target] = outage
        self._kill[target]()

    def restart(self, target: str) -> None:
        """Reconstruct ``target`` now (no-op if it is already up)."""
        if target not in self.alive:
            raise ValueError(f"unknown crash target {target!r}")
        if self.alive[target]:
            return
        self._build[target]()
        self.alive[target] = True
        self.restarts[target] += 1
        outage = self._open.pop(target, None)
        if outage is not None:
            outage.up_at = self.sim.now

    @property
    def total_crashes(self) -> int:
        return sum(self.crashes.values())
