"""Composable, time-varying fault injection for simulated channels.

The static loss models in :mod:`repro.sim.loss` answer "what fraction of
packets does this channel lose?".  Validating the protocol's reliability
claim (Theorem 5.1: marker resync restores FIFO within one one-way delay
after faults stop) needs the adversarial complement: *timed* faults that
start, mutate the channel's behaviour, and cease.  This module provides
that as a layer over any existing :class:`~repro.sim.loss.LossModel` and
any receiver wiring — nothing in :mod:`repro.sim.channel` or the endpoint
pipelines knows it is being injected against.

* :class:`FaultEvent` — one timed fault on one channel: ``crash`` (drop
  everything offered for the window), ``pause`` (freeze the transmitter;
  backpressure, no loss), ``delay_spike`` (extra one-way latency,
  FIFO-preserving), ``duplicate`` (deliver arrivals twice), ``reorder``
  (release a window of arrivals in reversed order — the "occasional
  non-FIFO behaviour" of section 2), ``corrupt`` (discard arrivals, the
  CRC-failure path), ``marker_loss`` (drop only control-sized packets
  — adversarially targets the resync machinery), and ``burst_loss``
  (transmit-side Gilbert–Elliott bursts — the correlated-loss regime
  FEC groups must survive; a long enough burst erases a whole k+m
  group), ``corrupt_deliver`` (flip a byte and *deliver* the damaged
  packet — unlike ``corrupt``, which models the CRC-drop path, this
  exercises the receiver's own decode-and-discard handling), and
  ``endpoint_crash`` (kill a whole endpoint — sender or receiver — for
  the window and restart it; exercises :mod:`repro.transport.recovery`).
* :class:`FaultSchedule` — an ordered set of events with an installation
  hook that wires injectors onto live :class:`~repro.sim.channel.Channel`
  objects (transmit side via a wrapping loss model and pause/resume,
  receive side via an ``on_deliver`` interposer).
* :class:`FaultPlan` — a seeded generator of randomized schedules whose
  faults all cease before a horizon, for chaos property tests.

Install order matters: :meth:`FaultSchedule.install` must run *after* the
receiver wiring has claimed ``channel.on_deliver``, because the injector
interposes on whatever handler is present at install time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.loss import GilbertElliottLoss, LossModel

#: Every fault kind the machinery understands.
FAULT_KINDS = (
    "crash",
    "pause",
    "delay_spike",
    "duplicate",
    "reorder",
    "corrupt",
    "corrupt_deliver",
    "marker_loss",
    "burst_loss",
    "endpoint_crash",
)

#: Kinds that perturb a *channel*.  ``endpoint_crash`` instead targets a
#: whole endpoint and needs an :class:`~repro.sim.host` crash controller
#: wired at install time, so randomized plans exclude it by default.
CHANNEL_FAULT_KINDS = tuple(
    kind for kind in FAULT_KINDS if kind != "endpoint_crash"
)

#: Kinds for which the protocol promises exactly-once delivery of whatever
#: physically arrives (duplication injects extra copies by definition, so
#: chaos invariant suites draw from this set and test ``duplicate``
#: separately with a bounded-duplication assertion).
EXACTLY_ONCE_KINDS = (
    "crash",
    "pause",
    "delay_spike",
    "reorder",
    "corrupt",
    "corrupt_deliver",
    "marker_loss",
    "burst_loss",
)

#: Packets at or below this size are treated as control traffic by
#: ``marker_loss`` faults (markers are 32 B, credits smaller; data packets
#: in the testbeds are hundreds of bytes).
CONTROL_SIZE_MAX = 64


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault on one channel.

    ``magnitude`` is kind-specific: drop probability for ``crash`` /
    ``corrupt`` / ``marker_loss`` / ``duplicate``, corruption probability
    for ``corrupt_deliver``, extra one-way seconds for ``delay_spike``,
    window depth (packets) for ``reorder``, target steady-state loss rate
    for ``burst_loss`` (>= 1 means the channel is pinned in the bad state
    for the whole window); unused for ``pause`` and ``endpoint_crash``.

    ``target`` applies only to ``endpoint_crash``: which endpoint dies
    (``"sender"`` or ``"receiver"``).  The endpoint is killed at ``time``
    and restarted at ``end``; ``channel`` is ignored for that kind.
    """

    time: float
    channel: int
    kind: str
    duration: float = 0.05
    magnitude: float = 1.0
    target: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0:
            raise ValueError(
                f"fault duration must be >= 0, got {self.duration}"
            )
        if self.channel < 0:
            raise ValueError(f"channel must be >= 0, got {self.channel}")
        if self.kind == "endpoint_crash":
            if self.target not in ("sender", "receiver"):
                raise ValueError(
                    "endpoint_crash needs target='sender' or 'receiver', "
                    f"got {self.target!r}"
                )
        elif self.target:
            raise ValueError(
                f"target is only meaningful for endpoint_crash faults, "
                f"got {self.target!r} on {self.kind!r}"
            )

    @property
    def end(self) -> float:
        """Simulated time at which this fault ceases."""
        return self.time + self.duration


class _FaultLoss(LossModel):
    """Wraps a channel's loss model with the injector's transmit-side drops.

    Composable by construction: the inner model keeps making its own draws
    for every packet the fault layer lets through, so a crashed window on a
    lossy channel behaves exactly like the lossy channel once the crash
    ceases.  The wrapper deliberately has no ``p`` attribute, which keeps
    an injected channel off the burst-batched fast path (fault draws must
    happen at per-packet transmission boundaries).
    """

    def __init__(self, injector: "FaultInjector", inner: LossModel) -> None:
        self.injector = injector
        self.inner = inner

    def should_drop(self, packet_index: int, size: int) -> bool:
        if self.injector._transmit_drop(size):
            return True
        return self.inner.should_drop(packet_index, size)

    def reset(self) -> None:
        self.inner.reset()


def _burst_model_for(
    magnitude: float, rng: random.Random
) -> GilbertElliottLoss:
    """Build the Gilbert–Elliott model behind a ``burst_loss`` event.

    ``magnitude`` is the *target steady-state loss rate*.  The recovery
    probability is fixed at ``p_b2g = 0.25`` (mean burst length of four
    packets — long enough to straddle an FEC group member on every
    channel), and the entry probability is solved from the steady-state
    equation ``pi_bad = p_g2b / (p_g2b + p_b2g) = magnitude``, i.e.
    ``p_g2b = magnitude * p_b2g / (1 - magnitude)``.  A magnitude at or
    above 1 pins the channel in the bad state deterministically, which is
    the regression fixture for "a burst erases a whole k+m group".
    """
    if magnitude <= 0.0:
        raise ValueError(
            f"burst_loss magnitude must be > 0, got {magnitude}"
        )
    if magnitude >= 1.0:
        return GilbertElliottLoss(p_g2b=1.0, p_b2g=0.0, rng=rng)
    p_b2g = 0.25
    p_g2b = min(1.0, magnitude * p_b2g / (1.0 - magnitude))
    return GilbertElliottLoss(p_g2b=p_g2b, p_b2g=p_b2g, rng=rng)


class FaultInjector:
    """Applies one channel's share of a :class:`FaultSchedule`.

    Transmit-side faults (``crash``, ``burst_loss``) ride a wrapping loss
    model so the channel's own statistics count them; ``pause`` uses the
    channel's administrative pause.  Receive-side faults interpose on the channel's
    ``on_deliver``.  Delay spikes are clamped so per-channel release times
    stay non-decreasing — the channel model remains FIFO, as the paper
    requires; reordering comes only from explicit ``reorder`` bursts.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Any,
        rng: Optional[random.Random] = None,
        control_size_max: int = CONTROL_SIZE_MAX,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.rng = rng if rng is not None else random.Random(0)
        self.control_size_max = control_size_max

        self._crash_until = -1.0
        self._crash_p = 1.0
        self._corrupt_until = -1.0
        self._corrupt_p = 1.0
        self._corrupt_deliver_until = -1.0
        self._corrupt_deliver_p = 1.0
        self._marker_loss_until = -1.0
        self._marker_loss_p = 1.0
        self._burst_until = -1.0
        self._burst_model: Optional[GilbertElliottLoss] = None
        self._dup_until = -1.0
        self._dup_p = 1.0
        self._delay_until = -1.0
        self._delay_extra = 0.0
        self._reorder_until = -1.0
        self._reorder_depth = 2
        self._reorder_buf: List[Any] = []
        self._pause_depth = 0
        self._last_release = 0.0
        self._scheduled = 0

        self.crash_drops = 0
        self.burst_drops = 0
        self.corrupt_drops = 0
        self.corrupt_delivered = 0
        self.marker_drops = 0
        self.duplicates_injected = 0
        self.reordered = 0
        self.delayed = 0

        channel.loss_model = _FaultLoss(self, channel.loss_model)
        self._downstream: Callable[[Any], None] = (
            channel.on_deliver if channel.on_deliver is not None else _sink
        )
        channel.on_deliver = self._on_deliver

    # ------------------------------------------------------------------ #
    # schedule activation

    def apply(self, event: FaultEvent) -> None:
        """Activate ``event`` now (called by the schedule at event.time)."""
        kind = event.kind
        end = event.end
        if kind == "crash":
            self._crash_until = max(self._crash_until, end)
            self._crash_p = event.magnitude
        elif kind == "pause":
            self._pause_depth += 1
            self.channel.pause()
            self.sim.schedule_at(end, self._end_pause)
        elif kind == "delay_spike":
            self._delay_until = max(self._delay_until, end)
            self._delay_extra = event.magnitude
        elif kind == "duplicate":
            self._dup_until = max(self._dup_until, end)
            self._dup_p = event.magnitude
        elif kind == "reorder":
            self._reorder_until = max(self._reorder_until, end)
            self._reorder_depth = max(2, int(event.magnitude))
            self.sim.schedule_at(end, self._flush_reorder)
        elif kind == "corrupt":
            self._corrupt_until = max(self._corrupt_until, end)
            self._corrupt_p = event.magnitude
        elif kind == "corrupt_deliver":
            self._corrupt_deliver_until = max(
                self._corrupt_deliver_until, end
            )
            self._corrupt_deliver_p = event.magnitude
        elif kind == "marker_loss":
            self._marker_loss_until = max(self._marker_loss_until, end)
            self._marker_loss_p = event.magnitude
        elif kind == "burst_loss":
            self._burst_until = max(self._burst_until, end)
            self._burst_model = _burst_model_for(
                event.magnitude, rng=self.rng
            )

    def _end_pause(self) -> None:
        self._pause_depth -= 1
        if self._pause_depth == 0:
            self.channel.resume()

    # ------------------------------------------------------------------ #
    # transmit side (consulted by the wrapping loss model)

    def _transmit_drop(self, size: int) -> bool:
        if self.sim.now < self._crash_until and (
            self._crash_p >= 1.0 or self.rng.random() < self._crash_p
        ):
            self.crash_drops += 1
            return True
        if (
            self.sim.now < self._burst_until
            and self._burst_model is not None
            and self._burst_model.should_drop(0, size)
        ):
            self.burst_drops += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # receive side (interposed on channel.on_deliver)

    def _on_deliver(self, packet: Any) -> None:
        now = self.sim.now
        size = getattr(packet, "size", 0)
        if now < self._corrupt_until and self.rng.random() < self._corrupt_p:
            self.corrupt_drops += 1
            return
        if (
            now < self._marker_loss_until
            and size <= self.control_size_max
            and self.rng.random() < self._marker_loss_p
        ):
            self.marker_drops += 1
            return
        if (
            now < self._corrupt_deliver_until
            and self.rng.random() < self._corrupt_deliver_p
        ):
            packet = self._corrupted_copy(packet)
        if now < self._reorder_until:
            self._reorder_buf.append(packet)
            if len(self._reorder_buf) >= self._reorder_depth:
                self._flush_reorder()
            return
        self._release(packet)

    def _corrupted_copy(self, packet: Any) -> Any:
        """A delivered-but-damaged copy of ``packet`` (one byte flipped).

        Markers are corrupted *on the wire*: the marker is encoded, its
        magic byte flipped (guaranteeing :class:`MarkerDecodeError` rather
        than a silently-wrong snapshot), and the raw bytes delivered —
        the receiver's decode path does the counting and discarding.
        Data packets get a payload byte flipped on a **copy**; the
        original object is never mutated because it may be aliased by the
        sender's retransmission buffer.  Payload-less packets (size-only
        models) pass through unchanged.
        """
        # Protocol imports are deliberately lazy: the fault layer stays
        # ignorant of endpoint machinery except inside this one fault.
        from repro.core.markers import encode_marker
        from repro.core.packet import is_marker

        if isinstance(packet, (bytes, bytearray)):
            wire = bytearray(packet)
            if not wire:
                return packet
            wire[self.rng.randrange(len(wire))] ^= 0xFF
            self.corrupt_delivered += 1
            return bytes(wire)
        if is_marker(packet):
            wire = bytearray(encode_marker(packet))
            wire[0] ^= 0xFF
            self.corrupt_delivered += 1
            return bytes(wire)
        payload = getattr(packet, "payload", None)
        if not payload or not isinstance(payload, (bytes, bytearray)):
            # Size-only models and structured payloads (e.g. a Frame
            # carrying an IPPacket) have no byte image to damage.
            return packet
        import copy as _copy

        clone = _copy.copy(packet)
        damaged = bytearray(payload)
        damaged[self.rng.randrange(len(damaged))] ^= 0xFF
        clone.payload = bytes(damaged)
        self.corrupt_delivered += 1
        return clone

    def _flush_reorder(self) -> None:
        buffered = self._reorder_buf
        if not buffered:
            return
        self._reorder_buf = []
        self.reordered += len(buffered)
        for packet in reversed(buffered):
            self._release(packet)

    def _release(self, packet: Any) -> None:
        now = self.sim.now
        copies = 1
        if now < self._dup_until and self.rng.random() < self._dup_p:
            self.duplicates_injected += 1
            copies = 2
        extra = self._delay_extra if now < self._delay_until else 0.0
        release_at = now + extra
        if release_at < self._last_release:
            release_at = self._last_release
        self._last_release = release_at
        for _ in range(copies):
            if release_at <= now and self._scheduled == 0:
                self._downstream(packet)
            else:
                # Keep per-channel FIFO: once one release is scheduled,
                # everything behind it goes through the engine too
                # (insertion order breaks same-time ties).
                if extra > 0.0:
                    self.delayed += 1
                self._scheduled += 1
                self.sim.schedule_at(release_at, self._deliver_later, packet)

    def _deliver_later(self, packet: Any) -> None:
        self._scheduled -= 1
        self._downstream(packet)


def _sink(packet: Any) -> None:
    """Delivery into the void (a channel nobody wired a receiver to)."""


@dataclass
class InstalledFaults:
    """Handle returned by :meth:`FaultSchedule.install`."""

    schedule: "FaultSchedule"
    injectors: List[FaultInjector]

    @property
    def crash_drops(self) -> int:
        return sum(i.crash_drops for i in self.injectors)

    @property
    def burst_drops(self) -> int:
        return sum(i.burst_drops for i in self.injectors)

    @property
    def corrupt_drops(self) -> int:
        return sum(i.corrupt_drops for i in self.injectors)

    @property
    def corrupt_delivered(self) -> int:
        return sum(i.corrupt_delivered for i in self.injectors)

    @property
    def marker_drops(self) -> int:
        return sum(i.marker_drops for i in self.injectors)

    @property
    def duplicates_injected(self) -> int:
        return sum(i.duplicates_injected for i in self.injectors)

    @property
    def reordered(self) -> int:
        return sum(i.reordered for i in self.injectors)

    @property
    def total_faulted(self) -> int:
        """Packets visibly perturbed (dropped, duplicated, or reordered)."""
        return (
            self.crash_drops
            + self.burst_drops
            + self.corrupt_drops
            + self.corrupt_delivered
            + self.marker_drops
            + self.duplicates_injected
            + self.reordered
        )


class FaultSchedule:
    """An ordered set of timed per-channel fault events.

    Args:
        events: the fault events (any order; stored sorted by time).
    """

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.channel))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def last_fault_end(self) -> float:
        """Time after which every scheduled fault has ceased."""
        return max((e.end for e in self.events), default=0.0)

    def kinds_used(self) -> Tuple[str, ...]:
        return tuple(sorted({e.kind for e in self.events}))

    def for_channel(self, channel: int) -> List[FaultEvent]:
        return [e for e in self.events if e.channel == channel]

    def install(
        self,
        sim: Simulator,
        channels: Sequence[Any],
        *,
        seed: int = 0,
        control_size_max: int = CONTROL_SIZE_MAX,
        endpoints: Optional[Any] = None,
    ) -> InstalledFaults:
        """Wire injectors onto live channels and arm every event.

        Must be called after the receiver side has claimed each channel's
        ``on_deliver`` (the injector interposes on the current handler).
        Injector randomness is derived from ``seed`` per channel, so a
        schedule replays identically for the same seed.

        ``endpoints`` (anything with ``crash(target)`` / ``restart(target)``
        methods, e.g. :class:`repro.sim.host.EndpointCrashController`) is
        required iff the schedule contains ``endpoint_crash`` events: each
        such event kills its target at ``event.time`` and restarts it at
        ``event.end``.
        """
        crash_events = [e for e in self.events if e.kind == "endpoint_crash"]
        if crash_events and endpoints is None:
            raise ValueError(
                "schedule contains endpoint_crash events; install() needs "
                "an endpoints= crash controller to apply them"
            )
        for event in self.events:
            if event.kind == "endpoint_crash":
                continue
            if event.channel >= len(channels):
                raise ValueError(
                    f"event targets channel {event.channel} but only "
                    f"{len(channels)} channels were supplied"
                )
        injectors = [
            FaultInjector(
                sim,
                channel,
                rng=random.Random((seed << 8) ^ index),
                control_size_max=control_size_max,
            )
            for index, channel in enumerate(channels)
        ]
        for event in self.events:
            if event.kind == "endpoint_crash":
                sim.schedule_at(event.time, endpoints.crash, event.target)
                sim.schedule_at(event.end, endpoints.restart, event.target)
            else:
                sim.schedule_at(
                    event.time, injectors[event.channel].apply, event
                )
        return InstalledFaults(schedule=self, injectors=injectors)


def persistent_loss_schedule(
    n_channels: int,
    p: float,
    start: float = 0.0,
    until: float = 1.0,
) -> FaultSchedule:
    """A schedule that drops each packet with probability ``p`` everywhere.

    Unlike the ceasing faults of :class:`FaultPlan`, this models a channel
    set that is *persistently* lossy for the whole window ``[start, until)``
    — the regime where quasi-FIFO striping alone cannot deliver everything
    and the reliability layer's retransmissions are load-bearing.  Built
    from one long fractional ``crash`` event per channel so the existing
    injector machinery (transmit-side drops, per-channel seeded RNG,
    channel-local statistics) applies unchanged.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"loss probability must be in (0, 1], got {p}")
    if until <= start:
        raise ValueError("loss window must have positive duration")
    return FaultSchedule(
        [
            FaultEvent(
                time=start,
                channel=channel,
                kind="crash",
                duration=until - start,
                magnitude=p,
            )
            for channel in range(n_channels)
        ]
    )


def burst_loss_schedule(
    n_channels: int,
    loss_rate: float,
    start: float = 0.0,
    until: float = 1.0,
) -> FaultSchedule:
    """A schedule imposing Gilbert–Elliott burst loss on every channel.

    The burst-loss complement of :func:`persistent_loss_schedule`: the
    same long-run loss rate, but correlated into multi-packet bursts (mean
    burst length four packets) instead of i.i.d. drops.  This is the
    regime that separates FEC parameterizations — i.i.d. loss rarely
    claims two members of the same group, bursts routinely do.  A
    ``loss_rate >= 1`` pins every channel in the bad state for the whole
    window, deterministically erasing each group that transits it.
    """
    if loss_rate <= 0.0:
        raise ValueError(f"loss rate must be > 0, got {loss_rate}")
    if until <= start:
        raise ValueError("loss window must have positive duration")
    return FaultSchedule(
        [
            FaultEvent(
                time=start,
                channel=channel,
                kind="burst_loss",
                duration=until - start,
                magnitude=loss_rate,
            )
            for channel in range(n_channels)
        ]
    )


def endpoint_crash_schedule(
    crashes: Sequence[Tuple[float, str]],
    *,
    outage: float = 0.05,
) -> FaultSchedule:
    """A schedule of endpoint kills from ``(time, target)`` pairs.

    Each pair kills ``target`` (``"sender"`` or ``"receiver"``) at
    ``time`` and restarts it ``outage`` seconds later.  Installing the
    resulting schedule requires an ``endpoints=`` crash controller (see
    :meth:`FaultSchedule.install`).
    """
    if outage < 0:
        raise ValueError(f"outage must be >= 0, got {outage}")
    return FaultSchedule(
        [
            FaultEvent(
                time=time,
                channel=0,
                kind="endpoint_crash",
                duration=outage,
                target=target,
            )
            for time, target in crashes
        ]
    )


#: Per-kind magnitude samplers for randomized plans.
_MAGNITUDES: dict = {
    "crash": lambda rng: 1.0,
    "pause": lambda rng: 1.0,
    "delay_spike": lambda rng: rng.uniform(0.004, 0.03),
    "duplicate": lambda rng: rng.uniform(0.2, 1.0),
    "reorder": lambda rng: float(rng.randint(2, 6)),
    "corrupt": lambda rng: rng.uniform(0.3, 1.0),
    "corrupt_deliver": lambda rng: rng.uniform(0.3, 1.0),
    "marker_loss": lambda rng: rng.uniform(0.5, 1.0),
    "burst_loss": lambda rng: rng.uniform(0.05, 0.3),
    "endpoint_crash": lambda rng: 1.0,
}


class FaultPlan:
    """A seeded generator of randomized chaos schedules.

    Every generated fault starts after ``start_after`` and ends before
    ``cease_by`` — the "faults eventually cease" premise of Theorem 5.1 is
    guaranteed by construction, so a chaos run can assert recovery after
    ``schedule.last_fault_end``.

    Args:
        n_channels: channels the target bundle has.
        cease_by: all faults end strictly before this simulated time.
        kinds: fault kinds to draw from (default: every *channel* kind;
            ``endpoint_crash`` must be opted into explicitly because it
            needs a crash controller at install time).
        max_events: up to this many events per schedule (at least 1).
        start_after: no fault starts before this time (lets the protocol
            reach steady state first).
        min_duration / max_duration: fault length bounds in seconds.
    """

    def __init__(
        self,
        n_channels: int,
        cease_by: float,
        *,
        kinds: Sequence[str] = CHANNEL_FAULT_KINDS,
        max_events: int = 6,
        start_after: float = 0.1,
        min_duration: float = 0.02,
        max_duration: float = 0.25,
    ) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if not kinds:
            raise ValueError("need at least one fault kind")
        if max_events < 1:
            raise ValueError("need at least one event per schedule")
        if start_after + min_duration >= cease_by:
            raise ValueError("no room for any fault before cease_by")
        self.n_channels = n_channels
        self.cease_by = cease_by
        self.kinds = tuple(kinds)
        self.max_events = max_events
        self.start_after = start_after
        self.min_duration = min_duration
        self.max_duration = max_duration

    def schedule(self, seed: int) -> FaultSchedule:
        """The deterministic schedule for ``seed``."""
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        for _ in range(rng.randint(1, self.max_events)):
            kind = rng.choice(self.kinds)
            latest_start = self.cease_by - self.min_duration
            start = rng.uniform(self.start_after, latest_start)
            duration = rng.uniform(
                self.min_duration,
                min(self.max_duration, self.cease_by - start),
            )
            events.append(
                FaultEvent(
                    time=start,
                    channel=rng.randrange(self.n_channels),
                    kind=kind,
                    duration=duration,
                    magnitude=_MAGNITUDES[kind](rng),
                    target=(
                        rng.choice(("sender", "receiver"))
                        if kind == "endpoint_crash"
                        else ""
                    ),
                )
            )
        return FaultSchedule(events)

    def schedules(self, seeds: Sequence[int]) -> List[FaultSchedule]:
        return [self.schedule(seed) for seed in seeds]
