"""Logical reception: the receiver side of the striping protocol.

Section 4's idea: separate *physical* reception (a packet arrives on a
channel and is buffered) from *logical* reception (the resequencing
algorithm removes packets from channel buffers in sender order).  Because
the sender policy is a transformed **causal** FQ algorithm, the receiver
can run the very same CFQ algorithm to predict which channel the next
packet in sender order will arrive on, block on that channel, and buffer
everything else.

:class:`Resequencer` implements this for any :class:`~repro.core.cfq.CausalFQ`
(Theorem 4.1 — exact FIFO when nothing is lost).  Loss recovery with
markers is algorithm-specific and lives in :mod:`repro.core.markers`.

:class:`NullResequencer` is the ablation: it delivers packets in physical
arrival order ("no resequencing" in Figure 15).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.core.cfq import CausalFQ
from repro.core.kernel import SchedulerKernel, kernel_for
from repro.core.packet import is_marker


class Resequencer:
    """Generic logical-reception engine (no loss recovery).

    Args:
        algorithm: the same CFQ algorithm the sender's load sharer was
            transformed from.
        on_deliver: callback receiving packets in logical (sender) order.

    Physical arrivals are pushed with :meth:`push`; each push drains as
    many packets as the simulation allows.  If the expected channel's
    buffer is empty the engine *blocks* — it simply returns and waits for a
    later push.  Marker packets, if any arrive, are discarded (this engine
    does not do recovery; see :class:`repro.core.markers.SRRReceiver`).

    The sender simulation steps a mutable
    :class:`~repro.core.kernel.SchedulerKernel`; the legacy ``state``
    attribute remains as a snapshot view, and :meth:`snapshot` /
    :meth:`restore` expose the kernel surface directly.
    """

    def __init__(
        self,
        algorithm: CausalFQ,
        on_deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.algorithm = algorithm
        self.on_deliver = on_deliver
        self.kernel: SchedulerKernel = kernel_for(algorithm)
        self.buffers: List[Deque[Any]] = [
            deque() for _ in range(algorithm.n_channels)
        ]
        self.delivered = 0
        self.max_buffered = 0
        self._buffered = 0
        #: channels declared dead (see :meth:`fail_channel`)
        self.failed: set = set()
        #: packets the simulated sender assigned to a failed channel that
        #: were skipped over (assumed lost) to keep delivery progressing
        self.assumed_lost = 0

    @property
    def state(self) -> Any:
        """Snapshot of the simulated sender state (compatibility view)."""
        return self.kernel.snapshot()

    @state.setter
    def state(self, value: Any) -> None:
        self.kernel.restore(value)

    def snapshot(self) -> Any:
        """Immutable capture of the simulated sender state."""
        return self.kernel.snapshot()

    def restore(self, snapshot: Any) -> None:
        """Install a previously captured sender state."""
        self.kernel.restore(snapshot)

    @property
    def n_channels(self) -> int:
        return self.algorithm.n_channels

    @property
    def buffered(self) -> int:
        """Packets currently held in per-channel buffers.

        Tracked incrementally — reading it is O(1), not O(n_channels),
        so the per-push high-water check stays cheap at large N.
        """
        return self._buffered

    def expected_channel(self) -> int:
        """The channel the next in-order packet will arrive on."""
        return self.kernel.peek()

    def push(self, channel: int, packet: Any) -> List[Any]:
        """Physical arrival of ``packet`` on ``channel``.

        Returns the packets delivered (in logical order) as a result; they
        are also passed to ``on_deliver``.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        self.buffers[channel].append(packet)
        self._buffered += 1
        if self._buffered > self.max_buffered:
            self.max_buffered = self._buffered
        return self.drain()

    def fail_channel(self, channel: int) -> List[Any]:
        """Declare ``channel`` dead; packets routed there count as lost.

        Logical reception normally *blocks* on the expected channel — on a
        channel that will never speak again, that block is forever.  After
        failure, whenever the scan reaches the dead channel while data is
        buffered elsewhere, the simulated sender is stepped past the
        expected packet (assumed lost, one nominal quantum-sized packet per
        step) so the surviving channels keep delivering.  Delivery degrades
        to quasi-FIFO with gaps instead of stalling; returns packets that
        became deliverable immediately.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        self.failed.add(channel)
        return self.drain()

    def revive_channel(self, channel: int) -> None:
        """Welcome a failed channel back; stop assuming its packets lost.

        Without markers there is no in-band resync, so a mid-stream revival
        restores *blocking* semantics on the channel: alignment of its new
        packets with the simulated sender requires a session reset (or a
        marker-mode receiver, which resyncs via condition C1).
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        self.failed.discard(channel)

    def _nominal_size(self, channel: int) -> int:
        """Assumed size of an unseen (lost) packet on a failed channel."""
        quanta = getattr(self.kernel, "quanta", None)
        if quanta is not None:
            return max(1, int(quanta[channel]))
        return 1

    def drain(self) -> List[Any]:
        """Deliver everything currently deliverable in logical order."""
        out: List[Any] = []
        kernel = self.kernel
        buffers = self.buffers
        skip_budget = 64 * self.n_channels
        while True:
            channel = kernel.peek()
            buffer = buffers[channel]
            if not buffer:
                if (
                    channel in self.failed
                    and self._buffered > 0
                    and skip_budget > 0
                ):
                    # Dead channel with live data elsewhere: write the
                    # expected packet off as lost and keep scanning.
                    kernel.step(self._nominal_size(channel))
                    self.assumed_lost += 1
                    skip_budget -= 1
                    continue
                break  # block on the expected channel
            skip_budget = 64 * self.n_channels
            packet = buffer.popleft()
            self._buffered -= 1
            if is_marker(packet):
                continue  # recovery not handled here
            out.append(packet)
            self.delivered += 1
            kernel.step(packet.size)
            if self.on_deliver is not None:
                self.on_deliver(packet)
        return out


class NullResequencer:
    """The "no resequencing" ablation: deliver in physical arrival order."""

    def __init__(self, n_channels: int, on_deliver=None) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self._n = n_channels
        self.on_deliver = on_deliver
        self.delivered = 0
        self.max_buffered = 0

    @property
    def n_channels(self) -> int:
        return self._n

    @property
    def buffered(self) -> int:
        return 0

    def push(self, channel: int, packet: Any) -> List[Any]:
        if not 0 <= channel < self._n:
            raise ValueError(f"channel {channel} out of range")
        if is_marker(packet):
            return []
        self.delivered += 1
        if self.on_deliver is not None:
            self.on_deliver(packet)
        return [packet]

    def drain(self) -> List[Any]:
        return []

    def fail_channel(self, channel: int) -> List[Any]:
        """Physical-order delivery never blocks; nothing to do."""
        return []

    def revive_channel(self, channel: int) -> None:
        """Physical-order delivery never blocked; nothing to restore."""


class DirectReception(NullResequencer):
    """Marker-free reception: every data arrival *is* a delivery.

    The receiver half of hash-synchronized disciplines (address hashing,
    Sprinklers): per-flow channel pinning makes physical arrival order the
    delivery order, so there is nothing to resequence — ``buffered`` and
    ``max_buffered`` are structurally zero, and a delivered packet has no
    surviving reference inside the engine (the pooling contract:
    :class:`~repro.core.packet.PacketPool` may recycle it at delivery,
    not at drain).

    Unlike the :class:`NullResequencer` ablation — which rides the marker
    pipeline and silently swallows the marker stream — this engine should
    never see a marker at all; any that arrive (a misconfigured sender)
    are counted in :attr:`stray_markers` and dropped undecoded.
    """

    def __init__(self, n_channels: int, on_deliver=None) -> None:
        super().__init__(n_channels, on_deliver)
        #: markers that reached a marker-free receiver (sender misconfig)
        self.stray_markers = 0

    def push(self, channel: int, packet: Any) -> List[Any]:
        if is_marker(packet):
            self.stray_markers += 1
            return []
        return super().push(channel, packet)


#: Receiver modes understood by :func:`make_resequencer`.
RESEQ_MODES = ("marker", "plain", "none", "direct", "mppp", "bonding")


def make_resequencer(
    algorithm: Optional[CausalFQ],
    mode: str,
    *,
    n_channels: Optional[int] = None,
    on_deliver: Optional[Callable[[Any], None]] = None,
    clock: Optional[Callable[[], float]] = None,
    sim: Optional[Any] = None,
) -> Any:
    """The one canonical construction of a logical-reception engine.

    Every receiver stack historically hand-rolled the same mode dispatch;
    this factory is the single copy.  Modes:

    * ``"marker"`` — logical reception + marker recovery (the paper;
      requires an SRR-family ``algorithm``).
    * ``"plain"`` — logical reception, no loss recovery (Theorem 4.1;
      any :class:`~repro.core.cfq.CausalFQ`).
    * ``"none"`` — physical arrival order (the Figure 15 ablation;
      needs only ``n_channels``).
    * ``"direct"`` — marker-free delivery at arrival (hash-synchronized
      disciplines; stray markers counted, never decoded).
    * ``"mppp"`` — RFC 1717 sequence-number resequencing (baseline;
      ``sim`` enables the gap timeout).
    * ``"bonding"`` — BONDING-style frame alignment (baseline).

    Returns an object with ``push(channel, packet)`` / ``drain()``.
    """
    if n_channels is None:
        if algorithm is None:
            raise ValueError("need an algorithm or an explicit n_channels")
        n_channels = algorithm.n_channels
    if mode == "marker":
        from repro.core.markers import SRRReceiver
        from repro.core.srr import SRR

        if not isinstance(algorithm, SRR):
            raise ValueError("marker mode requires an SRR-family algorithm")
        return SRRReceiver(algorithm, on_deliver=on_deliver, clock=clock)
    if mode == "plain":
        if algorithm is None:
            raise ValueError("plain mode requires a CausalFQ algorithm")
        return Resequencer(algorithm, on_deliver=on_deliver)
    if mode == "none":
        return NullResequencer(n_channels, on_deliver=on_deliver)
    if mode == "direct":
        return DirectReception(n_channels, on_deliver=on_deliver)
    if mode == "mppp":
        from repro.baselines.mppp import MpppReceiver

        return MpppReceiver(sim=sim, on_deliver=on_deliver)
    if mode == "bonding":
        from repro.baselines.bonding import BondingResequencer

        return BondingResequencer(n_channels, on_deliver=on_deliver)
    raise ValueError(f"unknown resequencing mode {mode!r}")
