"""Logical reception: the receiver side of the striping protocol.

Section 4's idea: separate *physical* reception (a packet arrives on a
channel and is buffered) from *logical* reception (the resequencing
algorithm removes packets from channel buffers in sender order).  Because
the sender policy is a transformed **causal** FQ algorithm, the receiver
can run the very same CFQ algorithm to predict which channel the next
packet in sender order will arrive on, block on that channel, and buffer
everything else.

:class:`Resequencer` implements this for any :class:`~repro.core.cfq.CausalFQ`
(Theorem 4.1 — exact FIFO when nothing is lost).  Loss recovery with
markers is algorithm-specific and lives in :mod:`repro.core.markers`.

:class:`NullResequencer` is the ablation: it delivers packets in physical
arrival order ("no resequencing" in Figure 15).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.core.cfq import CausalFQ
from repro.core.kernel import SchedulerKernel, kernel_for
from repro.core.packet import is_marker


class Resequencer:
    """Generic logical-reception engine (no loss recovery).

    Args:
        algorithm: the same CFQ algorithm the sender's load sharer was
            transformed from.
        on_deliver: callback receiving packets in logical (sender) order.

    Physical arrivals are pushed with :meth:`push`; each push drains as
    many packets as the simulation allows.  If the expected channel's
    buffer is empty the engine *blocks* — it simply returns and waits for a
    later push.  Marker packets, if any arrive, are discarded (this engine
    does not do recovery; see :class:`repro.core.markers.SRRReceiver`).

    The sender simulation steps a mutable
    :class:`~repro.core.kernel.SchedulerKernel`; the legacy ``state``
    attribute remains as a snapshot view, and :meth:`snapshot` /
    :meth:`restore` expose the kernel surface directly.
    """

    def __init__(
        self,
        algorithm: CausalFQ,
        on_deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.algorithm = algorithm
        self.on_deliver = on_deliver
        self.kernel: SchedulerKernel = kernel_for(algorithm)
        self.buffers: List[Deque[Any]] = [
            deque() for _ in range(algorithm.n_channels)
        ]
        self.delivered = 0
        self.max_buffered = 0
        self._buffered = 0

    @property
    def state(self) -> Any:
        """Snapshot of the simulated sender state (compatibility view)."""
        return self.kernel.snapshot()

    @state.setter
    def state(self, value: Any) -> None:
        self.kernel.restore(value)

    def snapshot(self) -> Any:
        """Immutable capture of the simulated sender state."""
        return self.kernel.snapshot()

    def restore(self, snapshot: Any) -> None:
        """Install a previously captured sender state."""
        self.kernel.restore(snapshot)

    @property
    def n_channels(self) -> int:
        return self.algorithm.n_channels

    @property
    def buffered(self) -> int:
        """Packets currently held in per-channel buffers.

        Tracked incrementally — reading it is O(1), not O(n_channels),
        so the per-push high-water check stays cheap at large N.
        """
        return self._buffered

    def expected_channel(self) -> int:
        """The channel the next in-order packet will arrive on."""
        return self.kernel.peek()

    def push(self, channel: int, packet: Any) -> List[Any]:
        """Physical arrival of ``packet`` on ``channel``.

        Returns the packets delivered (in logical order) as a result; they
        are also passed to ``on_deliver``.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        self.buffers[channel].append(packet)
        self._buffered += 1
        if self._buffered > self.max_buffered:
            self.max_buffered = self._buffered
        return self.drain()

    def drain(self) -> List[Any]:
        """Deliver everything currently deliverable in logical order."""
        out: List[Any] = []
        kernel = self.kernel
        buffers = self.buffers
        while True:
            channel = kernel.peek()
            buffer = buffers[channel]
            if not buffer:
                break  # block on the expected channel
            packet = buffer.popleft()
            self._buffered -= 1
            if is_marker(packet):
                continue  # recovery not handled here
            out.append(packet)
            self.delivered += 1
            kernel.step(packet.size)
            if self.on_deliver is not None:
                self.on_deliver(packet)
        return out


class NullResequencer:
    """The "no resequencing" ablation: deliver in physical arrival order."""

    def __init__(self, n_channels: int, on_deliver=None) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self._n = n_channels
        self.on_deliver = on_deliver
        self.delivered = 0
        self.max_buffered = 0

    @property
    def n_channels(self) -> int:
        return self._n

    @property
    def buffered(self) -> int:
        return 0

    def push(self, channel: int, packet: Any) -> List[Any]:
        if not 0 <= channel < self._n:
            raise ValueError(f"channel {channel} out of range")
        if is_marker(packet):
            return []
        self.delivered += 1
        if self.on_deliver is not None:
            self.on_deliver(packet)
        return [packet]

    def drain(self) -> List[Any]:
        return []
