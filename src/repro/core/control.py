"""Control-plane vocabulary of the session layer.

Split out of :mod:`repro.core.session` so the configuration and in-band
control packet types can be shared (transport adapters, the fabric layer,
wire codecs) without dragging in the session state machines.

* :class:`StripeConfig` — the ``(channels, quanta)`` agreement both ends
  install at an epoch boundary.  Carries a cached position index so
  per-packet membership tests and channel-to-position mapping are O(1)
  at fabric scale (a 10k-flow bundle cannot afford a linear scan per
  arrival or per reset event).
* The reset / probe packet family — epoch separators and the liveness
  probes of the channel-revival path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Optional, Tuple

from repro.core.kernel import SRRKernel
from repro.core.srr import SRR, SRRState

_control_ids = itertools.count(1)

CODEPOINT_RESET = "reset"
CODEPOINT_RESET_ACK = "reset_ack"
CODEPOINT_RESET_REQUEST = "reset_request"
CODEPOINT_PROBE = "probe"
CODEPOINT_PROBE_ACK = "probe_ack"
CODEPOINT_RESUME = "resume"
CODEPOINT_RESUME_REPORT = "resume_report"


@dataclass(frozen=True)
class StripeConfig:
    """The striping parameters both ends must agree on."""

    quanta: Tuple[float, ...]
    count_packets: bool = False
    #: indices into the *original* port list that are active this epoch
    active_channels: Optional[Tuple[int, ...]] = None

    def algorithm(self) -> SRR:
        return SRR(list(self.quanta), count_packets=self.count_packets)

    def kernel(self) -> SRRKernel:
        """A fresh scheduler kernel at this configuration's initial state."""
        return SRRKernel(self.algorithm())

    def initial_snapshot(self) -> SRRState:
        """The epoch-initial kernel state both ends install at a reset."""
        return self.algorithm().initial_state()

    @property
    def n_channels(self) -> int:
        return len(self.quanta)

    @cached_property
    def _positions(self) -> Dict[int, int]:
        # cached_property writes straight into __dict__, which a frozen
        # dataclass permits; the config is immutable so the cache is safe.
        if self.active_channels is None:
            return {}
        return {
            channel: position
            for position, channel in enumerate(self.active_channels)
        }

    def position_of(self, port_index: int) -> Optional[int]:
        """Position of an original port index among the active channels,
        or None when the channel is not active this epoch.  O(1)."""
        return self._positions.get(port_index)

    def is_active(self, port_index: int) -> bool:
        return port_index in self._positions

    def quantum_of(self, port_index: int) -> Optional[float]:
        """The active channel's quantum by original port index.  O(1)."""
        position = self._positions.get(port_index)
        return None if position is None else self.quanta[position]


@dataclass
class ResetPacket:
    """In-band epoch separator, sent on every active channel."""

    epoch: int
    config: StripeConfig
    size: int = 40
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESET

    def __repr__(self) -> str:
        return f"Reset(epoch={self.epoch}, {self.config.n_channels}ch)"


@dataclass
class ResetAckPacket:
    """Reverse-path acknowledgement: all channels switched to ``epoch``."""

    epoch: int
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESET_ACK


@dataclass
class ResetRequestPacket:
    """Reverse-path plea from the receiver (reboot, corruption, dead link).

    ``exclude_channel`` (an *original* port index) asks the sender to
    reconfigure without that channel — the link-failure path.
    """

    reason: str
    exclude_channel: Optional[int] = None
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESET_REQUEST


@dataclass
class ProbePacket:
    """Forward-path liveness probe on an excluded (possibly dead) channel.

    ``channel`` is the *original* port index being probed; ``seq`` lets
    the prober tell fresh acknowledgements from stale ones.
    """

    channel: int
    seq: int
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_PROBE


@dataclass
class ProbeAckPacket:
    """Reverse-path acknowledgement: the probed channel delivered again."""

    channel: int
    seq: int
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_PROBE_ACK


@dataclass
class ResumePacket:
    """Forward-path announcement of a (re)started sender incarnation.

    Sent on every channel after a crash restart, retried until a
    :class:`ResumeReportPacket` echoes ``epoch``.  Like
    :class:`ResetPacket` carries its config, the resume carries the
    sender's current kernel snapshot (``state``) so the receiver can
    warm-adopt the mirror instead of resetting; ``base_rseq`` is the
    lowest bundle sequence the sender can still replay, which a
    checkpoint-less (cold) receiver adopts as its cursor.  Data packets
    stay headerless — only this control packet carries the epoch.
    """

    epoch: int
    peer_epoch: int = 0
    base_rseq: int = -1
    state: Any = None
    size: int = 40
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESUME

    def __repr__(self) -> str:
        return (
            f"Resume(epoch={self.epoch}, peer={self.peer_epoch}, "
            f"base={self.base_rseq})"
        )


@dataclass
class ResumeReportPacket:
    """Reverse-path reconciliation report answering a :class:`ResumePacket`
    (or announcing a restarted receiver).

    Carries the receiver's rseq high-water (``cum_ack``) and SACK blocks
    so the sender can rewrite its scoreboard — a restarted receiver may
    have lost out-of-order packets the sender believed SACKed — and
    replay exactly the missing suffix.  ``cold`` marks a checkpoint-less
    restart: no history, replay the whole window and send the base.
    """

    epoch: int
    peer_epoch: int = 0
    cum_ack: int = 0
    blocks: Tuple[Tuple[int, int], ...] = ()
    cold: bool = False
    size: int = 24
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESUME_REPORT

    def __post_init__(self) -> None:
        if self.size == 24:
            self.size = min(24 + 8 * len(self.blocks), 64)

    def __repr__(self) -> str:
        return (
            f"ResumeReport(epoch={self.epoch}, peer={self.peer_epoch}, "
            f"cum={self.cum_ack}, cold={self.cold})"
        )


__all__ = [
    "CODEPOINT_PROBE",
    "CODEPOINT_PROBE_ACK",
    "CODEPOINT_RESET",
    "CODEPOINT_RESET_ACK",
    "CODEPOINT_RESET_REQUEST",
    "CODEPOINT_RESUME",
    "CODEPOINT_RESUME_REPORT",
    "ProbeAckPacket",
    "ProbePacket",
    "ResetAckPacket",
    "ResetPacket",
    "ResetRequestPacket",
    "ResumePacket",
    "ResumeReportPacket",
    "StripeConfig",
]
