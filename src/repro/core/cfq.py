"""Causal Fair Queuing (CFQ) algorithms.

Section 3.1 of the paper characterizes the backlogged behaviour of a causal
fair-queuing algorithm by a triple ``(s0, f, g)``:

* ``s0`` — an initial state,
* ``f(s)`` — selects which queue to serve next, from the state alone,
* ``g(s, p)`` — updates the state after packet ``p`` is transmitted.

*Causality* means the choice of the next queue depends only on previously
transmitted packets (encoded in the state) — never on the contents of the
queues (e.g. head-of-line packet sizes).  Causality is exactly what lets a
receiver *simulate* the sender (section 4): the receiver can compute
``f(s)`` before the next packet arrives.

This module defines the :class:`CausalFQ` interface, a backlogged
fair-queuing driver (:func:`fq_service_order`), and capability metadata used
to regenerate the paper's Table 1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.packet import Packet


@dataclass(frozen=True)
class Capabilities:
    """Feature claims for a striping scheme, as in the paper's Table 1.

    Attributes:
        fifo_delivery: ``"guaranteed"``, ``"quasi"``, or ``"may_reorder"``.
        load_sharing: ``"good"`` or ``"poor"`` with variable-length packets.
        environment: free-text target environment description.
        modifies_packets: True if the scheme must add headers / reformat
            data packets (disqualifying it for fixed-format channels).
    """

    fifo_delivery: str
    load_sharing: str
    environment: str
    modifies_packets: bool = False


class CausalFQ(abc.ABC):
    """A causal fair-queuing algorithm ``(s0, f, g)``.

    Implementations must be *pure*: :meth:`select` must not mutate the
    state, and :meth:`update` must return a new state object.  Purity is
    what makes sender/receiver simulation trivially correct and lets
    hypothesis drive the algorithms directly.

    ``update`` receives only the transmitted packet's size: by causality the
    algorithm may use nothing else about the packet.
    """

    #: Table 1 feature claims; subclasses override.
    capabilities: Capabilities = Capabilities(
        fifo_delivery="quasi",
        load_sharing="good",
        environment="At all levels",
    )

    @property
    @abc.abstractmethod
    def n_channels(self) -> int:
        """Number of queues (fair queuing) / channels (load sharing)."""

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """The initial state ``s0``."""

    @abc.abstractmethod
    def select(self, state: Any) -> int:
        """``f(s)``: index of the queue/channel to serve next."""

    @abc.abstractmethod
    def update(self, state: Any, size: int) -> Any:
        """``g(s, p)``: state after transmitting a packet of ``size`` bytes."""


class NonCausalFQ(abc.ABC):
    """A fair-queuing algorithm whose decision needs queue contents.

    Such algorithms (e.g. classic DRR, or DKS bit-by-bit round robin) can be
    used for fair queuing but *cannot* be transformed into striping
    algorithms with logical reception: the receiver cannot predict the next
    channel without seeing data it has not received yet.  They exist here as
    contrast cases for tests and the Table 1 bench.
    """

    @property
    @abc.abstractmethod
    def n_queues(self) -> int: ...

    @abc.abstractmethod
    def initial_state(self) -> Any: ...

    @abc.abstractmethod
    def next(
        self, state: Any, head_sizes: Sequence[Optional[int]]
    ) -> Tuple[int, Any]:
        """Pick the queue to serve, inspecting head-of-line packet sizes.

        Returns ``(queue_index, state)`` — selection itself may consume
        state (e.g. DRR banks quanta while walking past queues whose head
        does not fit), which is exactly why these algorithms are not
        causal.
        """

    @abc.abstractmethod
    def update(self, state: Any, queue: int, size: int) -> Any:
        """Account for the packet just sent from ``queue``."""


def fq_service_order(
    algorithm: CausalFQ,
    queues: Sequence[Sequence[Packet]],
    max_packets: Optional[int] = None,
) -> List[Packet]:
    """Run a CFQ algorithm over pre-loaded queues; return the service order.

    This is the *fair queuing* direction (the paper's Figure 2): packets sit
    in per-queue FIFOs and the algorithm merges them onto one output
    channel.  The run is a "backlogged execution" in the paper's sense: it
    stops as soon as the selected queue is empty (at which point the
    backlogged prefix has been exhausted) or when all packets are serviced.

    Args:
        algorithm: the CFQ algorithm to drive.
        queues: one packet list per queue, each in FIFO order.
        max_packets: optional safety cap on the output length.

    Returns:
        Packets in the order the algorithm services them.
    """
    # Imported lazily: kernel.py depends on this module's interfaces.
    from repro.core.kernel import kernel_for

    if len(queues) != algorithm.n_channels:
        raise ValueError(
            f"algorithm expects {algorithm.n_channels} queues, got {len(queues)}"
        )
    kernel = kernel_for(algorithm)
    positions = [0] * len(queues)
    total = sum(len(q) for q in queues)
    output: List[Packet] = []
    while len(output) < total:
        if max_packets is not None and len(output) >= max_packets:
            break
        queue_index = kernel.peek()
        position = positions[queue_index]
        if position >= len(queues[queue_index]):
            break  # selected queue empty: backlogged prefix exhausted
        packet = queues[queue_index][position]
        positions[queue_index] = position + 1
        output.append(packet)
        kernel.step(packet.size)
    return output


def fq_service_order_noncausal(
    algorithm: NonCausalFQ,
    queues: Sequence[Sequence[Packet]],
    max_packets: Optional[int] = None,
) -> List[Packet]:
    """Backlogged driver for non-causal FQ algorithms (head sizes visible)."""
    if len(queues) != algorithm.n_queues:
        raise ValueError(
            f"algorithm expects {algorithm.n_queues} queues, got {len(queues)}"
        )
    positions = [0] * len(queues)
    total = sum(len(q) for q in queues)
    output: List[Packet] = []
    state = algorithm.initial_state()
    while len(output) < total:
        if max_packets is not None and len(output) >= max_packets:
            break
        heads: List[Optional[int]] = [
            queues[i][positions[i]].size if positions[i] < len(queues[i]) else None
            for i in range(len(queues))
        ]
        if all(h is None for h in heads):
            break
        queue_index, state = algorithm.next(state, heads)
        position = positions[queue_index]
        if position >= len(queues[queue_index]):
            break
        packet = queues[queue_index][position]
        positions[queue_index] = position + 1
        output.append(packet)
        state = algorithm.update(state, queue_index, packet.size)
    return output


def bits_per_queue(
    algorithm: CausalFQ, queues: Sequence[Sequence[Packet]]
) -> Tuple[List[int], List[Packet]]:
    """Service the queues and return (bytes serviced per queue, order)."""
    order = fq_service_order(algorithm, queues)
    totals = [0] * algorithm.n_channels
    id_to_queue = {}
    for i, queue in enumerate(queues):
        for packet in queue:
            id_to_queue[packet.uid] = i
    for packet in order:
        totals[id_to_queue[packet.uid]] += packet.size
    return totals, order
