"""Packet types used throughout the library.

Two kinds of packets cross a striped channel group:

* :class:`Packet` — ordinary data packets.  Crucially, the striping protocol
  never modifies them: no sequence number or striping header is added (this
  is the paper's headline constraint, section 2.1).
* :class:`MarkerPacket` — the periodic synchronization markers of section 5.
  Markers are distinguished from data by a *codepoint* at the link layer
  (e.g. a distinct Ethernet type field), not by modifying data packets.

Packets carry a monotonically increasing ``seq`` assigned by the test/
experiment harness at the *sender input*.  The protocol itself never reads
``seq`` — it exists purely so that tests and metrics can check FIFO
delivery.  (Think of it as the experimenter writing numbers on the outside
of envelopes.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class Codepoint:
    """Link-layer demultiplexing codepoints.

    The paper requires only that "the lower level protocol provides a
    distinct codepoint... for the marker packets" (section 5).
    """

    DATA = "data"
    MARKER = "marker"
    CREDIT = "credit"
    ACK = "ack"
    #: erasure-coded parity for a stripe group (:mod:`repro.transport.fec`);
    #: like markers, parity is distinguished by codepoint so data packets
    #: stay unmodified (section 2.1).
    PARITY = "parity"


@dataclass(frozen=True)
class SackInfo:
    """Selective-acknowledgment state for the reliability layer.

    ``cum_ack`` is the lowest bundle sequence number (``rseq``) not yet
    received in order: every rseq below it has been delivered.  ``blocks``
    are absolute ``[start, end)`` ranges of rseqs received out of order
    above ``cum_ack`` (most recently touched first, per RFC 2018 custom).
    """

    cum_ack: int
    blocks: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for start, end in self.blocks:
            if not self.cum_ack <= start < end:
                raise ValueError(
                    f"bad SACK block [{start}, {end}) for cum {self.cum_ack}"
                )


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """An ordinary, unmodified data packet.

    Attributes:
        size: total size in bytes (as seen by the striping layer).
        seq: harness-assigned input order (not carried on the wire, never
            read by the protocol).
        label: optional human-readable id, e.g. ``"a"`` in the paper's
            Figure 2 example.
        flow: optional flow key (src/dst) used by the address-hashing
            baseline and by per-flow metrics.
        payload: opaque upper-layer object (e.g. an IP packet or an
            application message).
        uid: unique object id for tracing.
    """

    size: int
    seq: Optional[int] = None
    label: Optional[str] = None
    flow: Optional[Any] = None
    payload: Optional[Any] = None
    uid: int = field(default_factory=lambda: next(_packet_ids))
    codepoint: str = Codepoint.DATA
    #: bundle sequence number assigned by the reliability layer
    #: (:mod:`repro.transport.reliability`); None in best-effort and
    #: quasi-FIFO modes.  Like ``seq`` it is end-to-end state above the
    #: striper — the striping layer itself never reads it, preserving the
    #: no-header-on-data property of section 2.1.
    rseq: Optional[int] = None
    #: FEC group sequence number assigned by :class:`~repro.transport.fec.
    #: FecSender`; None outside the fec/hybrid reliability modes.  End-to-end
    #: state like ``seq``/``rseq`` — never read by the striper.
    fseq: Optional[int] = None
    #: True for packets reconstructed by the FEC receiver rather than
    #: received off a channel.  Synthesized packets carry fresh uids and are
    #: barred from re-entering a :class:`PacketPool` (the original may still
    #: be in flight or in an ARQ retransmit buffer).
    synthesized: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    def __repr__(self) -> str:
        tag = self.label if self.label is not None else self.seq
        return f"Packet({tag}, {self.size}B)"


@dataclass(slots=True)
class MarkerPacket:
    """A synchronization marker for one channel (section 5).

    Attributes:
        channel: the sender's number for the channel this marker travels on
            (carried so the receiver adopts the sender's channel numbering —
            condition C2).
        round_number: round number ``r`` of the *next* data packet the
            sender will send on this channel.
        deficit: deficit-counter value ``d`` that channel will have when
            that next packet is sent (the packet's implicit number is the
            pair ``(r, d)``).
        size: marker size in bytes; markers are tiny control packets.
        credit: optional piggybacked flow-control credit (section 6.3 /
            Kung-Chapman FCVC), in packets.
    """

    channel: int
    round_number: int
    deficit: float
    size: int = 32
    credit: Optional[int] = None
    #: optional piggybacked selective acknowledgment (reverse-path SACK of
    #: the reliability layer); rides the marker exactly like ``credit``.
    sack: Optional[SackInfo] = None
    uid: int = field(default_factory=lambda: next(_packet_ids))
    codepoint: str = Codepoint.MARKER

    def __repr__(self) -> str:
        return (
            f"Marker(ch={self.channel}, G={self.round_number}, "
            f"DC={self.deficit})"
        )


def is_marker(packet: Any) -> bool:
    """True if ``packet`` is a synchronization marker."""
    return getattr(packet, "codepoint", Codepoint.DATA) == Codepoint.MARKER


def is_parity(packet: Any) -> bool:
    """True if ``packet`` is an FEC parity packet."""
    return getattr(packet, "codepoint", Codepoint.DATA) == Codepoint.PARITY


class PacketPool:
    """A free-list allocator for :class:`Packet` objects.

    High-rate closed-loop sources allocate (and the engine then discards)
    one :class:`Packet` per message; at millions of packets per run the
    constructor + garbage-collector cost is a measurable share of the hot
    loop.  The pool recycles retired packets instead: :meth:`acquire`
    reinitializes a packet off the free list (falling back to a fresh
    construction when the list is empty) and :meth:`release` retires one.

    Lifecycle rules — the pool is a pure memory optimization and must
    never change observable behavior:

    * only release a packet once **no** reference to it can resurface:
      after final delivery, or after a transmit-side drop, on paths where
      the packet cannot be retransmitted.  The reliability layer keeps
      unacknowledged packets in its retransmit buffer, so reliable-mode
      harnesses only pool when the run is loss-free.
    * **marker-free receive** (hash-synchronized disciplines, reception
      mode ``"direct"``): delivery happens *at arrival* with structurally
      zero receiver buffering, so release-at-delivery is always safe —
      no resequencer ever holds a reference past the delivery callback,
      and reliable mode (the one path that would) is unavailable without
      a marker stream.  This is the cheapest pooling contract of any
      reception mode and is asserted by the fast-path stats tests.
    * a reacquired packet gets a **fresh** ``uid``, so tracing and dedup
      logic see it as the new logical packet it is.
    * releasing the **same object twice** is refused (counted in
      ``double_releases``): a ``duplicate`` fault delivers one packet
      object through two delivery callbacks, and pooling it twice would
      hand the same storage to two independent acquirers.  The guard is
      uid-based, so a recycled-and-reacquired packet (fresh uid) releases
      normally.
    """

    __slots__ = (
        "_free",
        "_free_uids",
        "max_size",
        "allocated",
        "reused",
        "released",
        "double_releases",
    )

    def __init__(self, max_size: int = 4096) -> None:
        self._free: list = []
        self._free_uids: set = set()
        self.max_size = max_size
        #: fresh constructions (free list was empty)
        self.allocated = 0
        #: packets served from the free list
        self.reused = 0
        #: packets retired into the free list
        self.released = 0
        #: release attempts refused because the packet was already pooled
        self.double_releases = 0

    def acquire(
        self,
        size: int,
        seq: Optional[int] = None,
        flow: Optional[Any] = None,
        payload: Optional[Any] = None,
    ) -> Packet:
        """A data packet, recycled when possible."""
        free = self._free
        if free:
            packet = free.pop()
            self._free_uids.discard(packet.uid)
            packet.size = size
            packet.seq = seq
            packet.label = None
            packet.flow = flow
            packet.payload = payload
            packet.uid = next(_packet_ids)
            packet.codepoint = Codepoint.DATA
            packet.rseq = None
            packet.fseq = None
            packet.synthesized = False
            self.reused += 1
            return packet
        self.allocated += 1
        return Packet(size=size, seq=seq, flow=flow, payload=payload)

    def release(self, packet: Any) -> None:
        """Retire a packet whose lifecycle has provably ended.

        Receiver-synthesized (FEC-reconstructed) packets are refused: the
        original sender-side packet they stand in for may still live in an
        ARQ retransmit buffer or arrive late off a channel, so recycling
        the reconstruction could alias two live logical packets.

        A packet already sitting in the free list (same uid) is refused —
        a ``duplicate`` fault delivers one object twice, and accepting
        both releases would alias two future acquisitions.
        """
        if (
            type(packet) is Packet
            and not packet.synthesized
            and len(self._free) < self.max_size
        ):
            if packet.uid in self._free_uids:
                self.double_releases += 1
                return
            self.released += 1
            self._free.append(packet)
            self._free_uids.add(packet.uid)

    def stats(self) -> dict:
        return {
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "double_releases": self.double_releases,
            "free": len(self._free),
        }
