"""Systematic erasure codes for proactive stripe-group recovery.

ARQ (:mod:`repro.transport.reliability`) pays a round trip per loss; the
third recovery strategy is *proactive* redundancy: every group of ``k``
data shards is extended with ``m`` parity shards, and any ``k`` of the
``k + m`` reconstruct the originals with no retransmission.  This module
is the pure coding layer — byte shards in, byte shards out; packets,
groups, and scheduling live in :mod:`repro.transport.fec`.

* ``m = 1`` uses plain XOR parity (:class:`XorCodec`): one erasure per
  group recoverable, one table-free pass to encode.
* ``m > 1`` uses a systematic Reed-Solomon-style code over GF(256)
  (:class:`GF256Codec`).  The generator matrix is a Cauchy matrix rather
  than the classic Vandermonde one: *every* square submatrix of a Cauchy
  matrix is invertible over a field, so any combination of up to ``m``
  erasures is decodable with any ``m`` surviving parities — the
  Vandermonde construction famously lacks that guarantee over GF(2^8).
* Pure python is the default and the reference: per-coefficient 256-byte
  translation tables make the scalar path one ``bytes.translate`` plus
  one big-int XOR per (row, shard).  :class:`NumpyXorCodec` /
  :class:`NumpyGF256Codec` vectorize the same arithmetic (same tables,
  bit-exact by construction) and fall back to the scalar path for shards
  below ``min_batch`` bytes, mirroring the ``NumpySRRKernel`` pattern:
  optional dependency, identical results, perf counters.

Shards within one call must share a length; the framing layer pads a
group's shards to its longest member before encoding.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

try:  # pragma: no cover - trivial import guard
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = [
    "FecCodec",
    "FecDecodeError",
    "GF256Codec",
    "NumpyGF256Codec",
    "NumpyXorCodec",
    "XorCodec",
    "fec_numpy_available",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "make_codec",
]


def fec_numpy_available() -> bool:
    """True if the optional numpy-backed codecs can be constructed."""
    return _np is not None


class FecDecodeError(ValueError):
    """A shard group has more erasures than surviving parity can repair."""


# --------------------------------------------------------------------- #
# GF(256) arithmetic (AES-unrelated polynomial 0x11d, generator 2 — the
# standard choice of Reed-Solomon erasure coders)

_GF_POLY = 0x11D

_GF_EXP: List[int] = [0] * 512
_GF_LOG: List[int] = [0] * 256
_x = 1
for _i in range(255):
    _GF_EXP[_i] = _x
    _GF_LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _GF_POLY
for _i in range(255, 512):
    _GF_EXP[_i] = _GF_EXP[_i - 255]
del _x, _i


def gf_mul(a: int, b: int) -> int:
    """Product of two field elements."""
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises on 0."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _GF_EXP[255 - _GF_LOG[a]]


def gf_div(a: int, b: int) -> int:
    """Quotient ``a / b``; raises on ``b == 0``."""
    if b == 0:
        raise ZeroDivisionError("division by 0 in GF(256)")
    if a == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + 255 - _GF_LOG[b]]


def _gf_matrix_invert(matrix: List[List[int]]) -> List[List[int]]:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination."""
    n = len(matrix)
    aug = [list(row) + [1 if i == j else 0 for j in range(n)]
           for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if aug[r][col] != 0), None
        )
        if pivot is None:  # pragma: no cover - Cauchy matrices never hit it
            raise FecDecodeError("singular recovery matrix")
        if pivot != col:
            aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = gf_inv(aug[col][col])
        if inv_p != 1:
            aug[col] = [gf_mul(v, inv_p) for v in aug[col]]
        for r in range(n):
            if r == col or aug[r][col] == 0:
                continue
            factor = aug[r][col]
            row_c = aug[col]
            aug[r] = [v ^ gf_mul(factor, row_c[j])
                      for j, v in enumerate(aug[r])]
    return [row[n:] for row in aug]


# --------------------------------------------------------------------- #
# codecs


class FecCodec:
    """Base class: ``k`` data shards, ``m`` parity shards, equal lengths.

    Subclasses implement :meth:`encode` / :meth:`decode`; groups may be
    *short* (``k' <= k`` data shards) — the first ``k'`` generator
    columns are used, so a count- or timeout-sealed partial group
    encodes and decodes consistently with the same codec.
    """

    kind = "abstract"

    def __init__(self, k: int, m: int) -> None:
        if k < 1:
            raise ValueError(f"need at least one data shard, got k={k}")
        if m < 1:
            raise ValueError(f"need at least one parity shard, got m={m}")
        if k + m > 256:
            raise ValueError(f"GF(256) supports k + m <= 256, got {k + m}")
        self.k = k
        self.m = m
        #: encode calls served
        self.encodes = 0
        #: decode calls that reconstructed at least one shard
        self.decodes = 0

    # -- shared validation -------------------------------------------- #

    def _check_group(self, shards: Sequence[bytes]) -> int:
        if not shards:
            raise ValueError("cannot encode an empty shard group")
        if len(shards) > self.k:
            raise ValueError(
                f"group has {len(shards)} shards, codec holds k={self.k}"
            )
        length = len(shards[0])
        for shard in shards:
            if len(shard) != length:
                raise ValueError("shards in a group must share one length")
        return length

    def _erasures(
        self,
        data: Sequence[Optional[bytes]],
        parity: Sequence[Optional[bytes]],
    ) -> List[int]:
        if len(data) > self.k:
            raise ValueError(
                f"group has {len(data)} shards, codec holds k={self.k}"
            )
        if len(parity) != self.m:
            raise ValueError(
                f"expected {self.m} parity slots, got {len(parity)}"
            )
        missing = [i for i, shard in enumerate(data) if shard is None]
        available = sum(1 for shard in parity if shard is not None)
        if len(missing) > available:
            raise FecDecodeError(
                f"{len(missing)} erasures but only {available} parity "
                f"shards survive"
            )
        return missing

    def encode(self, shards: Sequence[bytes]) -> List[bytes]:
        """The ``m`` parity shards for a (possibly short) group."""
        raise NotImplementedError

    def decode(
        self,
        data: Sequence[Optional[bytes]],
        parity: Sequence[Optional[bytes]],
    ) -> List[bytes]:
        """Reconstruct the full data shard list.

        ``data`` holds ``None`` at erased positions; ``parity`` holds
        ``None`` for lost parity shards (length exactly ``m``).  Raises
        :class:`FecDecodeError` when erasures exceed surviving parity.
        """
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        return {"encodes": self.encodes, "decodes": self.decodes}


def _xor_reduce(shards: Sequence[bytes], length: int) -> bytes:
    acc = 0
    for shard in shards:
        acc ^= int.from_bytes(shard, "big")
    return acc.to_bytes(length, "big")


class XorCodec(FecCodec):
    """Single-parity XOR code (``m = 1``): repairs one erasure per group."""

    kind = "xor"

    def __init__(self, k: int) -> None:
        super().__init__(k, 1)

    def encode(self, shards: Sequence[bytes]) -> List[bytes]:
        length = self._check_group(shards)
        self.encodes += 1
        return [_xor_reduce(shards, length)]

    def decode(
        self,
        data: Sequence[Optional[bytes]],
        parity: Sequence[Optional[bytes]],
    ) -> List[bytes]:
        missing = self._erasures(data, parity)
        if not missing:
            return list(data)  # type: ignore[arg-type]
        self.decodes += 1
        present = [shard for shard in data if shard is not None]
        present.append(parity[0])  # type: ignore[arg-type]
        length = len(present[0])
        repaired = _xor_reduce(present, length)
        out = list(data)
        out[missing[0]] = repaired
        return out  # type: ignore[return-value]


class GF256Codec(FecCodec):
    """Reed-Solomon-style systematic code over GF(256), Cauchy generator.

    Parity row ``j`` is ``sum_i C[j][i] * data_i`` with
    ``C[j][i] = 1 / (x_j ^ y_i)``, ``x_j = j`` and ``y_i = m + i``.  The
    two index sets are disjoint, so every entry is defined, and every
    square submatrix of a Cauchy matrix is invertible — any erasure
    pattern with ``erasures <= surviving parities`` is decodable.
    """

    kind = "gf256"

    def __init__(self, k: int, m: int) -> None:
        super().__init__(k, m)
        self.matrix: List[List[int]] = [
            [gf_inv(j ^ (m + i)) for i in range(k)] for j in range(m)
        ]
        self._tables: Dict[int, bytes] = {}

    def _table(self, coefficient: int) -> bytes:
        """The 256-entry multiply-by-``coefficient`` translation table."""
        table = self._tables.get(coefficient)
        if table is None:
            table = bytes(gf_mul(coefficient, b) for b in range(256))
            self._tables[coefficient] = table
        return table

    def _scaled(self, shard: bytes, coefficient: int) -> int:
        if coefficient == 0:
            return 0
        if coefficient == 1:
            return int.from_bytes(shard, "big")
        return int.from_bytes(shard.translate(self._table(coefficient)), "big")

    def encode(self, shards: Sequence[bytes]) -> List[bytes]:
        length = self._check_group(shards)
        self.encodes += 1
        out: List[bytes] = []
        for row in self.matrix:
            acc = 0
            for i, shard in enumerate(shards):
                acc ^= self._scaled(shard, row[i])
            out.append(acc.to_bytes(length, "big"))
        return out

    def decode(
        self,
        data: Sequence[Optional[bytes]],
        parity: Sequence[Optional[bytes]],
    ) -> List[bytes]:
        missing = self._erasures(data, parity)
        if not missing:
            return list(data)  # type: ignore[arg-type]
        self.decodes += 1
        rows = [j for j, shard in enumerate(parity) if shard is not None]
        rows = rows[: len(missing)]
        length = len(next(s for s in parity if s is not None))
        # Syndromes: the parity contribution the known shards leave
        # unexplained is exactly the missing shards' contribution.
        syndromes: List[int] = []
        for j in rows:
            acc = int.from_bytes(parity[j], "big")  # type: ignore[arg-type]
            row = self.matrix[j]
            for i, shard in enumerate(data):
                if shard is not None:
                    acc ^= self._scaled(shard, row[i])
            syndromes.append(acc)
        sub = [[self.matrix[j][i] for i in missing] for j in rows]
        inverse = _gf_matrix_invert(sub)
        syndrome_bytes = [s.to_bytes(length, "big") for s in syndromes]
        out = list(data)
        for c, position in enumerate(missing):
            acc = 0
            for r, syndrome in enumerate(syndrome_bytes):
                acc ^= self._scaled(syndrome, inverse[c][r])
            out[position] = acc.to_bytes(length, "big")
        return out  # type: ignore[return-value]


# --------------------------------------------------------------------- #
# optional numpy vectorization (mirrors the NumpySRRKernel pattern:
# hard ImportError without numpy, bit-exact results, silent scalar path
# for batches too small to amortize array setup, perf counters)

#: shards shorter than this go through the scalar path (array setup and
#: dtype conversion cost more than they save on tiny shards)
_DEFAULT_MIN_BATCH = 64


class NumpyXorCodec(XorCodec):
    """Vectorized XOR parity; bit-exact with :class:`XorCodec`."""

    def __init__(self, k: int, min_batch: int = _DEFAULT_MIN_BATCH) -> None:
        if _np is None:
            raise ImportError(
                "NumpyXorCodec requires numpy; use XorCodec instead"
            )
        super().__init__(k)
        self.min_batch = min_batch
        #: encode/decode calls served by the vectorized path
        self.vector_batches = 0
        #: calls routed to the scalar reference path
        self.scalar_batches = 0

    def encode(self, shards: Sequence[bytes]) -> List[bytes]:
        length = self._check_group(shards)
        if length < self.min_batch or len(shards) < 2:
            self.scalar_batches += 1
            return super().encode(shards)
        self.vector_batches += 1
        self.encodes += 1
        stack = _np.frombuffer(b"".join(shards), dtype=_np.uint8)
        stack = stack.reshape(len(shards), length)
        return [_np.bitwise_xor.reduce(stack, axis=0).tobytes()]

    def decode(
        self,
        data: Sequence[Optional[bytes]],
        parity: Sequence[Optional[bytes]],
    ) -> List[bytes]:
        missing = self._erasures(data, parity)
        if not missing:
            return list(data)  # type: ignore[arg-type]
        present = [shard for shard in data if shard is not None]
        present.append(parity[0])  # type: ignore[arg-type]
        length = len(present[0])
        if length < self.min_batch or len(present) < 2:
            self.scalar_batches += 1
            return super().decode(data, parity)
        self.vector_batches += 1
        self.decodes += 1
        stack = _np.frombuffer(b"".join(present), dtype=_np.uint8)
        stack = stack.reshape(len(present), length)
        out = list(data)
        out[missing[0]] = _np.bitwise_xor.reduce(stack, axis=0).tobytes()
        return out  # type: ignore[return-value]


class NumpyGF256Codec(GF256Codec):
    """Vectorized Cauchy/GF(256) codec; bit-exact with :class:`GF256Codec`.

    Multiplication is the same table lookup as the scalar path — a
    lazily built 256x256 product table indexed per coefficient — so the
    outputs are identical byte for byte; only the per-byte loop moves
    into numpy.
    """

    _mul_table: Any = None  # class-level lazy 256x256 uint8 product table

    def __init__(
        self, k: int, m: int, min_batch: int = _DEFAULT_MIN_BATCH
    ) -> None:
        if _np is None:
            raise ImportError(
                "NumpyGF256Codec requires numpy; use GF256Codec instead"
            )
        super().__init__(k, m)
        self.min_batch = min_batch
        self.vector_batches = 0
        self.scalar_batches = 0
        if NumpyGF256Codec._mul_table is None:
            table = _np.empty((256, 256), dtype=_np.uint8)
            for a in range(256):
                table[a] = _np.frombuffer(self._table(a), dtype=_np.uint8)
            NumpyGF256Codec._mul_table = table

    def _rows_vector(
        self,
        rows: List[List[int]],
        shards: List[bytes],
        columns: List[int],
        length: int,
    ) -> List[bytes]:
        """``[sum_i rows[r][columns[i]] * shards[i] for r]``, vectorized."""
        mul = NumpyGF256Codec._mul_table
        stack = _np.frombuffer(b"".join(shards), dtype=_np.uint8)
        stack = stack.reshape(len(shards), length)
        out: List[bytes] = []
        for row in rows:
            acc = _np.zeros(length, dtype=_np.uint8)
            for i, col in enumerate(columns):
                coefficient = row[col]
                if coefficient == 0:
                    continue
                if coefficient == 1:
                    acc ^= stack[i]
                else:
                    acc ^= mul[coefficient][stack[i]]
            out.append(acc.tobytes())
        return out

    def encode(self, shards: Sequence[bytes]) -> List[bytes]:
        length = self._check_group(shards)
        if length < self.min_batch:
            self.scalar_batches += 1
            return super().encode(shards)
        self.vector_batches += 1
        self.encodes += 1
        return self._rows_vector(
            self.matrix, list(shards), list(range(len(shards))), length
        )

    def decode(
        self,
        data: Sequence[Optional[bytes]],
        parity: Sequence[Optional[bytes]],
    ) -> List[bytes]:
        missing = self._erasures(data, parity)
        if not missing:
            return list(data)  # type: ignore[arg-type]
        length = len(next(s for s in parity if s is not None))
        if length < self.min_batch:
            self.scalar_batches += 1
            return super().decode(data, parity)
        self.vector_batches += 1
        self.decodes += 1
        rows = [j for j, shard in enumerate(parity) if shard is not None]
        rows = rows[: len(missing)]
        known_idx = [i for i, shard in enumerate(data) if shard is not None]
        known = [data[i] for i in known_idx]
        contributions = (
            self._rows_vector(
                [self.matrix[j] for j in rows], known, known_idx, length
            )
            if known
            else [bytes(length)] * len(rows)
        )
        syndromes = [
            (
                _np.frombuffer(parity[j], dtype=_np.uint8)
                ^ _np.frombuffer(contributions[r], dtype=_np.uint8)
            ).tobytes()
            for r, j in enumerate(rows)
        ]
        sub = [[self.matrix[j][i] for i in missing] for j in rows]
        inverse = _gf_matrix_invert(sub)
        repaired = self._rows_vector(
            inverse, syndromes, list(range(len(syndromes))), length
        )
        out = list(data)
        for c, position in enumerate(missing):
            out[position] = repaired[c]
        return out  # type: ignore[return-value]


def make_codec(k: int, m: int, *, numpy: Any = False) -> FecCodec:
    """Build the right codec for a ``(k, m)`` group geometry.

    ``numpy`` selects the vectorized implementation: ``True`` requires
    it (ImportError when numpy is absent), ``"auto"`` uses it when numpy
    is importable and falls back silently, ``False`` (the default) stays
    pure python — matching :func:`repro.core.kernel.kernel_for`.
    """
    use_numpy = numpy is True or (numpy == "auto" and fec_numpy_available())
    if m == 1:
        return NumpyXorCodec(k) if use_numpy else XorCodec(k)
    return NumpyGF256Codec(k, m) if use_numpy else GF256Codec(k, m)
