"""Surplus Round Robin (SRR) — the paper's workhorse CFQ algorithm.

SRR (section 3.5) is a variant of Deficit Round Robin in which a queue may
*overdraw* its deficit counter: when a queue is selected, its deficit
counter (DC) is incremented by its quantum, and packets are sent while the
DC is *positive*; the DC is decremented by each packet's size, possibly
going negative ("surplus"), in which case the queue is penalized by that
amount in the next round.  Unlike classic DRR, SRR never needs to look at
the size of the *next* packet — which is exactly what makes it **causal**
and therefore usable for striping with logical reception.

This module also expresses ordinary Round Robin (RR) and Generalized Round
Robin (GRR, integer-weighted packet counting) as members of the SRR family:
they are SRR with every packet costing one unit.  That unification means
the marker synchronization machinery of section 5 works for all three.

State / implicit numbering
--------------------------
An :class:`SRRState` satisfies the invariant that ``dc[ptr] > 0`` and
already includes the quantum for the current visit, so the *next* packet
goes to channel ``ptr`` and carries the implicit number
``(round_number, dc[ptr])`` — the ``(R, D)`` pair of section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.cfq import Capabilities, CausalFQ, NonCausalFQ


@dataclass(frozen=True)
class SRRState:
    """Immutable SRR state.

    Attributes:
        ptr: channel currently being served.
        round_number: the global round number ``G``; a round is one scan of
            all channels, and ``G`` increments when the pointer wraps to
            channel 0.
        dc: per-channel deficit counters.  ``dc[ptr]`` includes the quantum
            for the current visit and is positive; for other channels the
            value is the (possibly negative) surplus carried to their next
            visit.
    """

    ptr: int
    round_number: int
    dc: Tuple[float, ...]

    def implicit_number(self) -> Tuple[int, float]:
        """The ``(R, D)`` implicit number of the next packet to be sent."""
        return (self.round_number, self.dc[self.ptr])


class SRR(CausalFQ):
    """Surplus Round Robin over ``n`` channels.

    Args:
        quanta: per-channel quantum of service.  For byte-counting SRR this
            is in bytes per round and should be proportional to channel
            bandwidth (weighted fair sharing); the paper recommends
            ``quantum_i >= max packet size`` so no channel is ever skipped
            for lack of deficit (assumption of Theorem 5.1).
        count_packets: if True, every packet costs 1 unit regardless of its
            byte size.  ``SRR([1]*n, count_packets=True)`` is ordinary RR;
            integer quanta with ``count_packets=True`` is GRR.
    """

    capabilities = Capabilities(
        fifo_delivery="quasi",
        load_sharing="good",
        environment="At all levels",
    )

    def __init__(
        self, quanta: Sequence[float], count_packets: bool = False
    ) -> None:
        if not quanta:
            raise ValueError("need at least one channel")
        if any(q <= 0 for q in quanta):
            raise ValueError(f"quanta must be positive, got {list(quanta)}")
        self.quanta: Tuple[float, ...] = tuple(float(q) for q in quanta)
        self.count_packets = count_packets

    @property
    def n_channels(self) -> int:
        return len(self.quanta)

    def cost(self, size: int) -> float:
        """Deficit cost of transmitting a packet of ``size`` bytes."""
        return 1.0 if self.count_packets else float(size)

    def initial_state(self) -> SRRState:
        """All DCs start at 0; channel 0 is selected and gets its quantum.

        Matches the paper's Figure 5: "the DC of channel 1 is initially the
        quantum size".  Rounds are numbered from 1.
        """
        dc = [0.0] * self.n_channels
        dc[0] = self.quanta[0]
        return SRRState(ptr=0, round_number=1, dc=tuple(dc))

    def select(self, state: SRRState) -> int:
        return state.ptr

    def update(self, state: SRRState, size: int) -> SRRState:
        dc = list(state.dc)
        dc[state.ptr] -= self.cost(size)
        if dc[state.ptr] > 0:
            return SRRState(state.ptr, state.round_number, tuple(dc))
        ptr, round_number = self.advance(state.ptr, state.round_number, dc)
        return SRRState(ptr, round_number, tuple(dc))

    def advance(
        self, ptr: int, round_number: int, dc: List[float]
    ) -> Tuple[int, int]:
        """Move the round-robin pointer to the next serviceable channel.

        Mutates ``dc`` in place, adding one quantum per visit; channels
        whose DC stays non-positive even after their quantum (deep
        overdraw, only possible when ``quantum < max packet``) are skipped,
        which may span multiple rounds.  Returns the new
        ``(ptr, round_number)``.
        """
        n = self.n_channels
        while True:
            ptr = (ptr + 1) % n
            if ptr == 0:
                round_number += 1
            dc[ptr] += self.quanta[ptr]
            if dc[ptr] > 0:
                return ptr, round_number

    # ------------------------------------------------------------------ #
    # marker support (section 5)

    def next_number_for_channel(
        self, state: SRRState, channel: int
    ) -> Tuple[int, float]:
        """The implicit number ``(r, d)`` of the next packet on ``channel``.

        This is what a marker for ``channel`` carries: the round number and
        deficit-counter value the channel will have when its next data
        packet is sent.  For the currently served channel that is the
        current ``(G, dc)``; for others we roll the state forward through
        future quantum additions until the channel's DC would be positive.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        if channel == state.ptr:
            # Invariant: dc[ptr] > 0, so the next packet is in this round.
            return (state.round_number, state.dc[channel])
        dc = state.dc[channel]
        if channel > state.ptr:
            round_number = state.round_number  # visited later this round
        else:
            round_number = state.round_number + 1  # next round
        dc += self.quanta[channel]
        while dc <= 0:
            round_number += 1
            dc += self.quanta[channel]
        return (round_number, dc)


def make_rr(n: int) -> SRR:
    """Ordinary round robin: one packet per channel per round."""
    rr = SRR([1.0] * n, count_packets=True)
    rr.capabilities = Capabilities(
        fifo_delivery="may_reorder",
        load_sharing="poor",
        environment="At all levels",
    )
    return rr


def make_grr(weights: Sequence[int]) -> SRR:
    """Generalized round robin: ``weights[i]`` packets on channel i per round.

    The paper's GRR "allocates packets to interfaces based on the closest
    integer ratio of their bandwidths" (section 6.2).
    """
    if any(w < 1 or int(w) != w for w in weights):
        raise ValueError(f"GRR weights must be positive integers, got {weights}")
    grr = SRR([float(w) for w in weights], count_packets=True)
    grr.capabilities = Capabilities(
        fifo_delivery="may_reorder",
        load_sharing="poor",
        environment="At all levels",
    )
    return grr


def grr_weights_for_bandwidths(
    bandwidths: Sequence[float], max_denominator: int = 8
) -> List[int]:
    """Closest small-integer ratio of channel bandwidths, for GRR.

    The paper's GRR "allocates packets to interfaces based on the closest
    integer ratio of their bandwidths": e.g. (10e6, 5e6) -> [2, 1] and
    (10e6, 13.8e6) -> [5, 7].  We approximate each bandwidth relative to
    the smallest with a bounded-denominator fraction and put the weights
    over a common denominator.
    """
    from fractions import Fraction
    from math import gcd

    if not bandwidths or any(b <= 0 for b in bandwidths):
        raise ValueError("bandwidths must be positive")
    smallest = min(bandwidths)
    fractions = [
        Fraction(b / smallest).limit_denominator(max_denominator)
        for b in bandwidths
    ]
    common = 1
    for f in fractions:
        common = common * f.denominator // gcd(common, f.denominator)
    weights = [max(1, int(f * common)) for f in fractions]
    divisor = weights[0]
    for w in weights[1:]:
        divisor = gcd(divisor, w)
    return [w // divisor for w in weights]


class DRR(NonCausalFQ):
    """Classic Deficit Round Robin [Shreedhar & Varghese 1994].

    DRR differs from SRR in that a queue sends a packet only if its deficit
    *covers* the packet — so the algorithm must peek at the head-of-line
    packet size before deciding, making it **non-causal**.  It serves here
    as the contrast case showing why the paper modified DRR into SRR for
    striping: a receiver cannot simulate DRR without seeing packets it has
    not received.
    """

    def __init__(self, quanta: Sequence[float]) -> None:
        if not quanta or any(q <= 0 for q in quanta):
            raise ValueError("quanta must be positive")
        self.quanta = tuple(float(q) for q in quanta)

    @property
    def n_queues(self) -> int:
        return len(self.quanta)

    def initial_state(self) -> Tuple[int, Tuple[float, ...]]:
        """``(ptr, deficits)``: ``dc[ptr]`` already includes this visit's quantum."""
        dc = [0.0] * self.n_queues
        dc[0] = self.quanta[0]
        return (0, tuple(dc))

    def next(
        self,
        state: Tuple[int, Tuple[float, ...]],
        head_sizes: Sequence[Optional[int]],
    ) -> Tuple[int, Tuple[int, Tuple[float, ...]]]:
        ptr, deficits = state
        dc = list(deficits)
        n = self.n_queues
        # Walk until the current queue's head fits in its deficit.  Each
        # move to a new queue banks that queue's quantum.  Bounded walk:
        # after enough visits every backlogged queue's deficit exceeds its
        # head (deficits grow by a quantum per visit).
        max_head = max((h for h in head_sizes if h is not None), default=0)
        min_quantum = min(self.quanta)
        visits_needed = n * (2 + int(max_head / min_quantum))
        for _ in range(visits_needed + n):
            head = head_sizes[ptr]
            if head is not None and head <= dc[ptr]:
                return ptr, (ptr, tuple(dc))
            if head is None:
                dc[ptr] = 0.0  # empty queue forfeits its deficit
            ptr = (ptr + 1) % n
            dc[ptr] += self.quanta[ptr]
        raise RuntimeError("DRR walk failed to find a serviceable queue")

    def update(
        self,
        state: Tuple[int, Tuple[float, ...]],
        queue: int,
        size: int,
    ) -> Tuple[int, Tuple[float, ...]]:
        ptr, deficits = state
        dc = list(deficits)
        dc[queue] -= size
        return (ptr, tuple(dc))
