"""Fairness accounting and the Theorem 3.2 / Lemma 3.3 bounds.

The paper's fairness notion (section 3.3): over any backlogged execution,
the bytes allocated to any two queues (FQ) or channels (load sharing) may
differ by at most a constant — for SRR specifically, after K rounds the
bytes actually sent on channel *i* deviate from the ideal ``K * Quantum_i``
by at most ``Max + 2 * Quantum`` (Max = maximum packet size, Quantum =
maximum quantum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.packet import Packet
from repro.core.srr import SRR, SRRState
from repro.core.transform import TransformedLoadSharer


@dataclass
class FairnessReport:
    """Result of checking an SRR execution against the paper's bound.

    Attributes:
        rounds_completed: number of complete rounds K in the execution.
        ideal_bytes: ``K * Quantum_i`` per channel.
        actual_bytes: bytes sent per channel during those K rounds.
        deviations: ``|actual - ideal|`` per channel.
        bound: the Theorem 3.2 bound ``Max + 2 * Quantum``.
        within_bound: True iff every deviation is <= bound.
    """

    rounds_completed: int
    ideal_bytes: List[float]
    actual_bytes: List[int]
    deviations: List[float]
    bound: float
    within_bound: bool


def srr_fairness_report(
    algorithm: SRR, packets: Sequence[Packet]
) -> FairnessReport:
    """Stripe ``packets`` with SRR and audit the per-channel byte counts.

    Only byte-counting SRR has the byte-fairness bound; packet-counting
    variants (RR / GRR) are exactly what the bound is *not* claimed for.
    """
    if algorithm.count_packets:
        raise ValueError("byte-fairness bound applies to byte-counting SRR only")
    sharer = TransformedLoadSharer(algorithm)
    n = algorithm.n_channels
    sent = [0] * n
    max_packet = 0
    for packet, channel in zip(packets, sharer.assign_many(packets)):
        sent[channel] += packet.size
        if packet.size > max_packet:
            max_packet = packet.size
    final = sharer.state
    assert isinstance(final, SRRState)
    rounds_completed = final.round_number - 1
    quantum_max = max(algorithm.quanta)
    bound = max_packet + 2 * quantum_max
    ideal = [rounds_completed * q for q in algorithm.quanta]
    deviations = [abs(sent[i] - ideal[i]) for i in range(n)]
    return FairnessReport(
        rounds_completed=rounds_completed,
        ideal_bytes=ideal,
        actual_bytes=sent,
        deviations=deviations,
        bound=bound,
        within_bound=all(d <= bound for d in deviations),
    )


def max_pairwise_imbalance(byte_counts: Sequence[int]) -> int:
    """Largest difference in bytes between any two channels."""
    if not byte_counts:
        return 0
    return max(byte_counts) - min(byte_counts)


def jain_fairness_index(byte_counts: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal shares.

    Not from the paper, but the standard scalar summary for load-sharing
    quality; used in benches to compare schemes at a glance.
    """
    values = [float(v) for v in byte_counts]
    if not values or all(v == 0 for v in values):
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def normalized_shares(
    byte_counts: Sequence[int], weights: Sequence[float]
) -> List[float]:
    """Bytes per unit weight, normalized so a fair split gives all 1.0."""
    if len(byte_counts) != len(weights):
        raise ValueError("byte_counts and weights must have equal length")
    per_weight = [b / w for b, w in zip(byte_counts, weights)]
    mean = sum(per_weight) / len(per_weight) if per_weight else 0.0
    if mean == 0:
        return [0.0 for _ in per_weight]
    return [v / mean for v in per_weight]
