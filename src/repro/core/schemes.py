"""Additional CFQ algorithms beyond the SRR family.

The transformation theorem (3.1) applies to *any* causal FQ algorithm,
deterministic or randomized.  This module provides:

* :class:`SeededRandomFQ` — the paper's RFQ example: a randomized scheme
  that picks a uniformly random queue per packet.  Seeding the PRNG and
  putting its state *into* the CFQ state makes the scheme causal — a
  receiver sharing the seed can simulate the sender exactly, so even a
  randomized striper gets logical reception.
* :class:`WeightedRandomFQ` — RFQ biased by channel weights (expected
  byte share proportional to weight only if packet sizes are i.i.d.;
  included as a contrast case for fairness tests).

Both keep the ``(s0, f, g)`` discipline: ``select`` derives the choice from
the PRNG state without advancing it, ``update`` advances it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from repro.core.cfq import Capabilities, CausalFQ


@dataclass(frozen=True)
class RandomFQState:
    """PRNG-state-carrying CFQ state; equality by PRNG state identity."""

    rng_state: Tuple[Any, ...]


def _draw(rng_state: Tuple[Any, ...], n: int) -> Tuple[int, Tuple[Any, ...]]:
    rng = random.Random()
    rng.setstate(rng_state)
    value = rng.randrange(n)
    return value, rng.getstate()


class SeededRandomFQ(CausalFQ):
    """Uniform random queue selection with a shared-seed PRNG.

    Fair in expectation: over backlogged executions the expected bytes per
    queue are identical (the paper's randomized fairness definition,
    section 3.3).
    """

    capabilities = Capabilities(
        fifo_delivery="quasi",
        load_sharing="good",
        environment="At all levels (requires shared seed)",
    )

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("need at least one channel")
        self._n = n
        self.seed = seed

    @property
    def n_channels(self) -> int:
        return self._n

    def initial_state(self) -> RandomFQState:
        return RandomFQState(random.Random(self.seed).getstate())

    def select(self, state: RandomFQState) -> int:
        value, _ = _draw(state.rng_state, self._n)
        return value

    def update(self, state: RandomFQState, size: int) -> RandomFQState:
        _, new_state = _draw(state.rng_state, self._n)
        return RandomFQState(new_state)


class WeightedRandomFQ(CausalFQ):
    """Random selection with per-channel weights (probability ∝ weight)."""

    capabilities = Capabilities(
        fifo_delivery="quasi",
        load_sharing="good",
        environment="At all levels (requires shared seed)",
    )

    def __init__(self, weights: Sequence[float], seed: int = 0) -> None:
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = tuple(float(w) for w in weights)
        self.seed = seed
        total = sum(self.weights)
        self._cumulative = []
        acc = 0.0
        for w in self.weights:
            acc += w / total
            self._cumulative.append(acc)

    @property
    def n_channels(self) -> int:
        return len(self.weights)

    def initial_state(self) -> RandomFQState:
        return RandomFQState(random.Random(self.seed).getstate())

    def _pick(self, rng_state: Tuple[Any, ...]) -> Tuple[int, Tuple[Any, ...]]:
        rng = random.Random()
        rng.setstate(rng_state)
        u = rng.random()
        for i, edge in enumerate(self._cumulative):
            if u < edge:
                return i, rng.getstate()
        return len(self.weights) - 1, rng.getstate()

    def select(self, state: RandomFQState) -> int:
        value, _ = self._pick(state.rng_state)
        return value

    def update(self, state: RandomFQState, size: int) -> RandomFQState:
        _, new_state = self._pick(state.rng_state)
        return RandomFQState(new_state)
