"""The fair-queuing → load-sharing transformation (Theorem 3.1).

A load sharing algorithm is the "time reversal" of a fair queuing
algorithm: where FQ pulls packets *from* many queues onto one channel, load
sharing pushes packets from one queue *to* many channels, using the same
``(s0, f, g)``.

This module provides:

* :class:`LoadSharer` — the interface every striping policy implements
  (including non-causal baselines like shortest-queue-first, which is why
  ``choose`` also receives the packet and current queue depths).
* :class:`TransformedLoadSharer` — wraps any :class:`~repro.core.cfq.CausalFQ`
  into a load sharer, per the paper's transformation.  Internally it steps
  a :class:`~repro.core.kernel.SchedulerKernel`, so the per-packet path is
  mutation, not frozen-state churn.
* :func:`stripe_sequence` — offline driver: split an input sequence across
  channels (the paper's Figure 3 / Figure 6 direction), batched through
  ``assign_many``.
* :func:`verify_reverse_correspondence` — an executable rendering of the
  Theorem 3.1 proof: feed the load sharer's per-channel outputs back into
  the original CFQ algorithm as queues and check the FQ service order
  reproduces the original input sequence.  Property tests run this over
  random algorithms and inputs.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence

from repro.core.cfq import Capabilities, CausalFQ, fq_service_order
from repro.core.kernel import SchedulerKernel, kernel_for
from repro.core.packet import Packet


class LoadSharer(abc.ABC):
    """A striping policy: assigns each packet, in order, to a channel.

    The two-phase protocol matters for backpressure: the sender engine
    calls :meth:`choose` to learn where the next packet must go, waits (if
    needed) for that channel to have queue space, sends, then calls
    :meth:`notify_sent`.  A causal policy must commit to its choice before
    seeing anything but its own state; non-causal baselines may inspect the
    packet and live queue depths.
    """

    #: Table 1 feature claims.
    capabilities: Capabilities = Capabilities(
        fifo_delivery="may_reorder",
        load_sharing="poor",
        environment="At all levels",
    )

    #: True if a receiver can simulate this policy (logical reception).
    simulatable: bool = False

    @property
    @abc.abstractmethod
    def n_channels(self) -> int: ...

    @abc.abstractmethod
    def choose(
        self,
        packet: Any,
        queue_depths: Optional[Sequence[int]] = None,
    ) -> int:
        """Channel index for this packet.  Must not mutate policy state."""

    @abc.abstractmethod
    def notify_sent(self, channel: int, packet: Any) -> None:
        """Commit: the packet was handed to ``channel``'s transmit queue."""

    def assign_many(
        self,
        packets: Sequence[Any],
        queue_depths: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Assign a burst of packets; returns one channel index per packet.

        The default runs the two-phase protocol per packet, tracking the
        queue-depth growth a depth-sensitive policy (e.g. shortest queue
        first) would observe if the burst were submitted one at a time to
        infinite queues.  Kernel-backed policies override this with a
        single batched loop.
        """
        depths = (
            list(queue_depths)
            if queue_depths is not None
            else [0] * self.n_channels
        )
        out: List[int] = []
        for packet in packets:
            channel = self.choose(packet, depths)
            self.notify_sent(channel, packet)
            depths[channel] += 1
            out.append(channel)
        return out

    def reset(self) -> None:
        """Restore initial state (default implemented by subclasses)."""
        raise NotImplementedError


class TransformedLoadSharer(LoadSharer):
    """Load sharer obtained from a CFQ algorithm via Theorem 3.1.

    The wrapped algorithm's ``f`` picks the output channel; ``g`` advances
    the state on each send.  Because the choice never depends on the packet
    (until it is sent), the policy is causal and a receiver running the
    same CFQ algorithm can simulate it — the basis of logical reception.

    Stepping is delegated to the :class:`~repro.core.kernel.SchedulerKernel`
    built by :func:`~repro.core.kernel.kernel_for`; the legacy ``state``
    attribute remains available as a snapshot view for code (and tests)
    written against the immutable path.
    """

    simulatable = True

    def __init__(self, algorithm: CausalFQ) -> None:
        self.algorithm = algorithm
        self.capabilities = algorithm.capabilities
        self.kernel: SchedulerKernel = kernel_for(algorithm)

    @property
    def n_channels(self) -> int:
        return self.algorithm.n_channels

    @property
    def state(self) -> Any:
        """Snapshot of the kernel state (immutable-path compatibility)."""
        return self.kernel.snapshot()

    @state.setter
    def state(self, value: Any) -> None:
        self.kernel.restore(value)

    def choose(
        self,
        packet: Any,
        queue_depths: Optional[Sequence[int]] = None,
    ) -> int:
        return self.kernel.peek()

    def notify_sent(self, channel: int, packet: Any) -> None:
        expected = self.kernel.peek()
        if channel != expected:
            raise ValueError(
                f"causal policy must send to channel {expected}, "
                f"but {channel} was reported"
            )
        self.kernel.step(packet.size)

    def assign_many(
        self,
        packets: Sequence[Any],
        queue_depths: Optional[Sequence[int]] = None,
    ) -> List[int]:
        return self.kernel.assign_many([p.size for p in packets])

    def reset(self) -> None:
        self.kernel.reset()


def stripe_sequence(
    sharer: LoadSharer, packets: Sequence[Packet]
) -> List[List[Packet]]:
    """Split ``packets`` (in order) across channels; returns per-channel lists.

    This is the offline (infinite queue, zero time) view used for fairness
    analysis and the Theorem 3.1 check; the event-driven sender lives in
    :mod:`repro.core.striper`.  Assignment goes through the policy's
    batched :meth:`~LoadSharer.assign_many`, so kernel-backed policies run
    the whole sequence in one tight loop.
    """
    channels: List[List[Packet]] = [[] for _ in range(sharer.n_channels)]
    for packet, channel in zip(packets, sharer.assign_many(packets)):
        channels[channel].append(packet)
    return channels


def bytes_per_channel(channels: Sequence[Sequence[Packet]]) -> List[int]:
    """Total bytes assigned to each channel."""
    return [sum(p.size for p in channel) for channel in channels]


def verify_reverse_correspondence(
    algorithm: CausalFQ, packets: Sequence[Packet]
) -> bool:
    """Executable Theorem 3.1 proof construction.

    Stripe ``packets`` with the transformed algorithm to get per-channel
    output sequences E; initialize FQ queues with those sequences and run
    the *original* CFQ algorithm on them (execution E').  The theorem's
    1-1 correspondence holds iff the FQ service order equals the original
    input order.
    """
    sharer = TransformedLoadSharer(algorithm)
    channels = stripe_sequence(sharer, packets)
    replay = fq_service_order(algorithm, channels)
    if len(replay) != len(packets):
        return False
    return all(a.uid == b.uid for a, b in zip(replay, packets))
