"""DKS fair queuing — the paper's example of a *non-causal* algorithm.

Section 3.1: "the DKS algorithm [DKS89] depends on the packets at the head
of each queue in order to simulate bit-by-bit round robin.  Thus the DKS
fair queuing algorithm is non-causal, while ordinary round robin is
causal."

This is the Demers–Keshav–Shenker PGPS/WFQ emulation: each packet gets a
virtual *finish time* — the round number at which bit-by-bit round robin
would finish sending it — and packets are served in finish-time order.
Computing a packet's finish time requires its *length*, i.e. the algorithm
must look at queued packets before choosing, which is exactly what makes
it unusable for striping with logical reception: a receiver cannot predict
the sender's next channel without the very packets it has not received.

Implemented here (a) to regenerate the paper's causal/non-causal contrast
in tests, and (b) as a quality yardstick: DKS's fairness is tighter than
SRR's per-round bound, which quantifies what the paper trades for
causality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.cfq import NonCausalFQ


@dataclass(frozen=True)
class DKSState:
    """Virtual-time state of the DKS emulation (backlogged case).

    With every queue continuously backlogged, virtual time advances
    ``1/N`` of a byte per byte sent, so it can be tracked directly from
    the bytes served; each queue's last finish time is enough to assign
    the next finish time.
    """

    finish_times: Tuple[float, ...]


class DKS(NonCausalFQ):
    """Bit-by-bit round robin emulation (backlogged behaviour).

    ``weights[i]`` is queue *i*'s service share (bytes per virtual round).
    """

    def __init__(self, weights: Optional[Sequence[float]] = None,
                 n: Optional[int] = None) -> None:
        if weights is None:
            if n is None or n < 1:
                raise ValueError("give weights or a positive queue count")
            weights = [1.0] * n
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = tuple(float(w) for w in weights)

    @property
    def n_queues(self) -> int:
        return len(self.weights)

    def initial_state(self) -> DKSState:
        return DKSState(finish_times=tuple(0.0 for _ in self.weights))

    def next(
        self, state: DKSState, head_sizes: Sequence[Optional[int]]
    ) -> Tuple[int, DKSState]:
        """Serve the queue whose head packet finishes earliest.

        The head *sizes* are required to compute candidate finish times —
        the non-causal dependence the paper points at.
        """
        best_queue = -1
        best_finish = float("inf")
        for queue, head in enumerate(head_sizes):
            if head is None:
                continue
            finish = state.finish_times[queue] + head / self.weights[queue]
            if finish < best_finish:
                best_finish = finish
                best_queue = queue
        if best_queue < 0:
            raise ValueError("all queues empty")
        return best_queue, state

    def update(self, state: DKSState, queue: int, size: int) -> DKSState:
        finish_times = list(state.finish_times)
        finish_times[queue] += size / self.weights[queue]
        return DKSState(finish_times=tuple(finish_times))


def dks_service_gap(order, queue_of, n_queues: int) -> int:
    """Largest byte-service gap between any two queues over all prefixes.

    Utility for comparing DKS's fairness envelope with SRR's bound.
    """
    totals = [0] * n_queues
    worst = 0
    for packet in order:
        totals[queue_of(packet)] += packet.size
        worst = max(worst, max(totals) - min(totals))
    return worst
