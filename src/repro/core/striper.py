"""The event-driven sender: stripe an input stream across channel ports.

The :class:`Striper` connects three things:

* an input FIFO of data packets from the upper layer,
* a :class:`~repro.core.transform.LoadSharer` policy deciding, in input
  order, which channel each packet goes to,
* N *channel ports* (anything with ``send``/``can_accept``) with finite
  transmit queues.

Backpressure semantics are the crux: a causal policy commits to the channel
of the next packet *before* sending it, so if that channel's queue is full
the sender must **wait** — it may not reorder around the full queue.  This
is what makes plain round robin collapse to the slowest channel's rate in
Figure 15, and it is faithfully what a kernel implementation does (the
driver queue fills and the upper layer blocks).

The striper also hosts the :class:`MarkerScheduler` (section 5): every
``interval`` rounds, at a configurable position within the round, it
injects one marker per channel carrying that channel's next implicit packet
number ``(r, d)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Protocol, Sequence

from repro.core.kernel import SRRKernel
from repro.core.packet import MarkerPacket, Packet
from repro.core.srr import SRRState
from repro.core.transform import LoadSharer, TransformedLoadSharer
from repro.sim.trace import NULL_TRACER, Tracer


class ChannelPort(Protocol):
    """What the striper needs from a channel's sender side."""

    def send(self, packet: Any, force: bool = False) -> bool: ...

    def can_accept(self) -> bool: ...

    @property
    def queue_length(self) -> int: ...


@dataclass
class MarkerPolicy:
    """When and where markers are emitted (section 5, section 6.3).

    Attributes:
        interval_rounds: emit a marker batch every this many rounds; 0
            disables markers.
        position: emit when the round-robin pointer advances *into* this
            channel index.  Position 0 is the round boundary — the paper's
            "beginning or end of the round", found optimal in section 6.3.
        initial_markers: emit a batch before the first data packet, so the
            receiver starts synchronized even if it boots late.
        marker_size: bytes per marker packet on the wire.
    """

    interval_rounds: int = 1
    position: int = 0
    initial_markers: bool = True
    marker_size: int = 32

    def __post_init__(self) -> None:
        if self.interval_rounds < 0:
            raise ValueError("interval_rounds must be >= 0")
        if self.position < 0:
            raise ValueError("position must be >= 0")


class Striper:
    """Stripes an input packet stream across channel ports.

    Args:
        sharer: the striping policy.  If it is a
            :class:`TransformedLoadSharer` wrapping an :class:`SRR`-family
            algorithm and ``marker_policy`` is set, markers are emitted.
        ports: one sender port per channel.
        marker_policy: optional marker emission policy.
        marker_decorator: invoked as ``decorator(channel, marker)`` just
            before each marker is sent — the hook that lets reverse-path
            state (FCVC credits, §6.3) piggyback on markers.
        on_marker: test hook invoked as ``on_marker(channel, marker)``
            after the marker is sent.

    The upper layer calls :meth:`submit`; packets the currently selected
    channel cannot accept wait in the input queue, and the owner must call
    :meth:`pump` when a channel reports queue space (the sim wiring hooks
    ``channel.on_space`` to ``pump``).
    """

    def __init__(
        self,
        sharer: LoadSharer,
        ports: Sequence[ChannelPort],
        marker_policy: Optional[MarkerPolicy] = None,
        on_marker: Optional[Callable[[int, MarkerPacket], None]] = None,
        marker_decorator: Optional[Callable[[int, MarkerPacket], None]] = None,
        tracer: Tracer = NULL_TRACER,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if len(ports) != sharer.n_channels:
            raise ValueError(
                f"policy expects {sharer.n_channels} channels, got {len(ports)} ports"
            )
        self.sharer = sharer
        self.ports = list(ports)
        self.marker_policy = marker_policy
        self.on_marker = on_marker
        self.marker_decorator = marker_decorator
        self.tracer = tracer
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.input_queue: Deque[Any] = deque()
        self.packets_sent = 0
        self.bytes_sent = 0
        self.markers_sent = 0
        #: the policy's scheduler kernel, when it has one (causal policies)
        self._kernel: Optional[SRRKernel] = None
        if isinstance(sharer, TransformedLoadSharer) and isinstance(
            sharer.kernel, SRRKernel
        ):
            self._kernel = sharer.kernel
        self._markers_enabled = (
            marker_policy is not None
            and marker_policy.interval_rounds > 0
            and self._kernel is not None
        )
        if marker_policy is not None and not self._markers_enabled:
            if marker_policy.interval_rounds > 0:
                raise ValueError(
                    "marker emission requires a TransformedLoadSharer "
                    "wrapping an SRR-family algorithm"
                )
        self._crossings_seen = 0
        self._initial_markers_pending = (
            self._markers_enabled and marker_policy.initial_markers
        )

    # ------------------------------------------------------------------ #
    # upper-layer API

    def submit(self, packet: Any) -> None:
        """Queue a data packet from the upper layer and try to send."""
        self.input_queue.append(packet)
        self.pump()

    def submit_many(self, packets: Any) -> None:
        """Queue a burst of data packets and pump once.

        Equivalent to ``submit(p)`` per packet — the pump drains greedily
        either way, so sends, marker points, and backpressure stops are
        identical — but a batched pump (``FastStriper``) sees the whole
        burst at once and can assign it through ``assign_many``.
        """
        self.input_queue.extend(packets)
        self.pump()

    @property
    def backlog(self) -> int:
        """Packets waiting in the striper's input queue."""
        return len(self.input_queue)

    def can_send_now(self) -> bool:
        """True if the next packet's designated channel has queue space."""
        if not self.input_queue:
            return False
        if self._kernel is not None:
            channel = self._kernel.ptr
        else:
            channel = self.sharer.choose(
                self.input_queue[0], [p.queue_length for p in self.ports]
            )
        return self.ports[channel].can_accept()

    def pump(self) -> int:
        """Send as many queued packets as backpressure allows.

        Returns the number of data packets sent.  Called by the owner when
        a channel frees queue space.
        """
        if self._initial_markers_pending:
            self._initial_markers_pending = False
            self._emit_markers()
        sent = 0
        kernel = self._kernel
        markers = self._markers_enabled
        trace = self.tracer.enabled
        while self.input_queue:
            packet = self.input_queue[0]
            if kernel is not None:
                # Causal policy: the kernel's pointer *is* the choice; no
                # need to materialize queue depths it cannot look at.
                channel = kernel.ptr
            else:
                depths = [p.queue_length for p in self.ports]
                channel = self.sharer.choose(packet, depths)
            port = self.ports[channel]
            if not port.can_accept():
                break  # must wait: causality forbids sending elsewhere
            self.input_queue.popleft()
            if markers:
                old_ptr, old_round = kernel.ptr, kernel.round_number
            port.send(packet)
            self.sharer.notify_sent(channel, packet)
            self.packets_sent += 1
            self.bytes_sent += getattr(packet, "size", 0)
            sent += 1
            if trace:
                self.tracer.emit(
                    self.clock(), "striper", "send",
                    channel=channel, size=getattr(packet, "size", 0),
                )
            if markers:
                self._check_marker_crossing(old_ptr, old_round)
        return sent

    # ------------------------------------------------------------------ #
    # marker machinery

    def _srr_state(self) -> Optional[SRRState]:
        if self._kernel is None:
            return None
        return self._kernel.snapshot()

    def _check_marker_crossing(self, old_ptr: int, old_round: int) -> None:
        """Emit markers if the pointer advanced into the policy position.

        A single step can hop several channels (deep overdraw skipping), so
        we walk the pointer path from ``(old_ptr, old_round)`` to the
        kernel's live position and count every entry into ``position``.
        """
        kernel = self._kernel
        policy = self.marker_policy
        assert kernel is not None and policy is not None
        new_ptr, new_round = kernel.ptr, kernel.round_number
        if old_ptr == new_ptr and old_round == new_round:
            return
        n = kernel.n_channels
        position = policy.position % n
        crossings = 0
        ptr, rnd = old_ptr, old_round
        while (ptr, rnd) != (new_ptr, new_round):
            ptr += 1
            if ptr == n:
                ptr = 0
                rnd += 1
            if ptr == position:
                crossings += 1
            if rnd > new_round:  # safety: should never happen
                break
        for _ in range(crossings):
            self._crossings_seen += 1
            if self._crossings_seen % policy.interval_rounds == 0:
                self._emit_markers()

    def _emit_markers(self) -> None:
        """Send one marker per channel with its next implicit number."""
        kernel = self._kernel
        policy = self.marker_policy
        assert kernel is not None and policy is not None
        trace = self.tracer.enabled
        for channel in range(kernel.n_channels):
            round_number, deficit = kernel.next_number_for_channel(channel)
            marker = MarkerPacket(
                channel=channel,
                round_number=round_number,
                deficit=deficit,
                size=policy.marker_size,
            )
            if self.marker_decorator is not None:
                self.marker_decorator(channel, marker)
            self.ports[channel].send(marker, force=True)
            self.markers_sent += 1
            if trace:
                self.tracer.emit(
                    self.clock(), "striper", "marker",
                    channel=channel, r=round_number, d=deficit,
                )
            if self.on_marker is not None:
                self.on_marker(channel, marker)

    def force_marker_batch(self) -> None:
        """Emit a marker batch now (used for time-based keepalive markers)."""
        if not self._markers_enabled:
            raise RuntimeError("markers are not enabled on this striper")
        self._emit_markers()


class ListPort:
    """A trivial in-memory channel port: records everything sent.

    Used by offline tests and the Figure 3/6 reproductions, where no
    event-driven timing is needed.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.sent: List[Any] = []
        self.limit = limit

    def send(self, packet: Any, force: bool = False) -> bool:
        if not force and self.limit is not None and len(self.sent) >= self.limit:
            return False
        self.sent.append(packet)
        return True

    def can_accept(self) -> bool:
        return self.limit is None or len(self.sent) < self.limit

    @property
    def queue_length(self) -> int:
        return len(self.sent)

    def data_packets(self) -> List[Packet]:
        return [p for p in self.sent if isinstance(p, Packet)]
