"""Marker-based synchronization recovery (section 5).

Losing a single packet desynchronizes sender and receiver: the receiver's
simulated state drifts and it delivers packets persistently out of order.
The paper's fix is per-channel implicit numbering plus periodic markers:

* Every packet has an implicit number ``(R, D)`` — the round number and
  deficit-counter value just before it is sent.  Neither is carried in the
  packet.
* The sender periodically sends, on each channel ``c``, a **marker**
  carrying the implicit number of the *next* data packet on ``c``.
* The receiver, on processing a marker ``(r, d)`` for channel ``c``, sets
  its local per-channel round ``r_c = r`` and that channel's DC to ``d``.
* Condition **C1** (never deliver a higher-round packet before a
  lower-round one) is enforced by *skipping*: when the receiver's
  round-robin scan reaches a channel with ``r_c > G`` (its global round),
  the channel is skipped for this scan; it is serviced again once
  ``G = r_c``.

Theorem 5.1: once losses stop and a marker has been delivered on every
channel, delivery is FIFO again — recovery takes roughly the marker period
plus one one-way propagation delay.

:class:`SRRReceiver` implements the receiver for the whole SRR family
(SRR / RR / GRR, via the unified cost function).
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.core.kernel import SRRKernel
from repro.core.packet import MarkerPacket, SackInfo, is_marker
from repro.core.srr import SRR, SRRState
from repro.sim.trace import NULL_TRACER, Tracer

# --------------------------------------------------------------------- #
# canonical marker wire codec
#
# Every transport stack used to carry its own ad-hoc framing for marker
# packets; this is the one canonical encoding.  Layout (network order):
#
#   magic     u16   0x5352 ("SR") — demux guard
#   version   u8    codec version (1)
#   flags     u8    bit 0: a piggybacked credit is present
#                   bit 1: a SACK extension follows the base frame
#   channel   u32   sender's channel number (condition C2)
#   round     i64   round number r of the next data packet
#   deficit   f64   deficit-counter value d of that packet
#   credit    i64   piggybacked FCVC credit (0 unless flagged)
#
# 32 bytes total — exactly the default MarkerPacket.size, so simulated
# wire timing and the real encoding agree.
#
# When bit 1 of flags is set, a SACK extension follows:
#
#   cum_ack   u64   lowest bundle rseq not yet received in order
#   count     u8    number of SACK blocks (<= MAX_SACK_BLOCKS_WIRE)
#   then count x:
#     start   u32   block start, as an offset above cum_ack
#     length  u32   block length in packets
#
# A marker with the full complement of piggybacked SACK blocks is
# 32 + 9 + 2*8 = 57 bytes — still below the 64-byte control-packet
# threshold of the fault layer, so SACK-bearing markers keep behaving as
# control traffic everywhere.

_MARKER_STRUCT = struct.Struct("!HBBIqdq")
_SACK_HEAD_STRUCT = struct.Struct("!QB")
_SACK_BLOCK_STRUCT = struct.Struct("!II")
MARKER_MAGIC = 0x5352
MARKER_CODEC_VERSION = 1
MARKER_WIRE_BYTES = _MARKER_STRUCT.size
_FLAG_CREDIT = 0x01
_FLAG_SACK = 0x02
#: reserved for FEC group metadata on reverse markers (forward compat:
#: assigned now so no other extension claims the bit; no payload format
#: is defined yet, so decoders reject frames carrying it)
_FLAG_FEC = 0x04
#: the flag bits this codec version understands
_KNOWN_FLAGS = _FLAG_CREDIT | _FLAG_SACK | _FLAG_FEC
#: most SACK blocks a piggybacked marker may carry (wire-size budget)
MAX_SACK_BLOCKS_WIRE = 2


class MarkerDecodeError(ValueError):
    """A marker frame failed validation (truncated, oversized, corrupt).

    Subclasses :class:`ValueError` so callers that predate the typed
    error keep working; receivers catch this, bump a counter, and drop
    the frame instead of surfacing raw :mod:`struct` errors.
    """


def marker_wire_size(sack: Optional[SackInfo]) -> int:
    """Encoded size of a marker carrying ``sack`` (None → base frame)."""
    if sack is None:
        return MARKER_WIRE_BYTES
    return (
        MARKER_WIRE_BYTES
        + _SACK_HEAD_STRUCT.size
        + _SACK_BLOCK_STRUCT.size * len(sack.blocks)
    )


def encode_marker(marker: MarkerPacket) -> bytes:
    """Serialize a marker to its canonical wire form (32 B + SACK ext)."""
    flags = 0
    credit = 0
    if marker.credit is not None:
        flags |= _FLAG_CREDIT
        credit = marker.credit
    sack = getattr(marker, "sack", None)
    if sack is not None:
        flags |= _FLAG_SACK
    frame = _MARKER_STRUCT.pack(
        MARKER_MAGIC,
        MARKER_CODEC_VERSION,
        flags,
        marker.channel,
        marker.round_number,
        marker.deficit,
        credit,
    )
    if sack is None:
        return frame
    if len(sack.blocks) > MAX_SACK_BLOCKS_WIRE:
        raise ValueError(
            f"marker SACK carries at most {MAX_SACK_BLOCKS_WIRE} blocks, "
            f"got {len(sack.blocks)}"
        )
    parts = [frame, _SACK_HEAD_STRUCT.pack(sack.cum_ack, len(sack.blocks))]
    for start, end in sack.blocks:
        parts.append(
            _SACK_BLOCK_STRUCT.pack(start - sack.cum_ack, end - start)
        )
    return b"".join(parts)


def _decode_sack(data: bytes, offset: int) -> SackInfo:
    """Parse the SACK extension starting at ``offset``; validates length."""
    head_end = offset + _SACK_HEAD_STRUCT.size
    if len(data) < head_end:
        raise MarkerDecodeError(
            f"marker SACK extension truncated at {len(data)} bytes"
        )
    cum_ack, count = _SACK_HEAD_STRUCT.unpack_from(data, offset)
    expected = head_end + count * _SACK_BLOCK_STRUCT.size
    if len(data) != expected:
        raise MarkerDecodeError(
            f"marker SACK extension with {count} blocks must be "
            f"{expected} bytes total, got {len(data)}"
        )
    blocks = []
    pos = head_end
    for _ in range(count):
        start_off, length = _SACK_BLOCK_STRUCT.unpack_from(data, pos)
        pos += _SACK_BLOCK_STRUCT.size
        if length == 0:
            raise MarkerDecodeError("marker SACK block with zero length")
        start = cum_ack + start_off
        blocks.append((start, start + length))
    return SackInfo(cum_ack=cum_ack, blocks=tuple(blocks))


def decode_marker(data: bytes) -> MarkerPacket:
    """Parse the canonical wire form back into a :class:`MarkerPacket`.

    Raises :class:`MarkerDecodeError` (a :class:`ValueError`) on any
    malformed input: truncated or oversized frames, bad magic, unknown
    codec version, or an inconsistent SACK extension.
    """
    if len(data) < MARKER_WIRE_BYTES:
        raise MarkerDecodeError(
            f"marker frame must be at least {MARKER_WIRE_BYTES} bytes, "
            f"got {len(data)}"
        )
    magic, version, flags, channel, round_number, deficit, credit = (
        _MARKER_STRUCT.unpack_from(data, 0)
    )
    if magic != MARKER_MAGIC:
        raise MarkerDecodeError(f"bad marker magic {magic:#06x}")
    if version != MARKER_CODEC_VERSION:
        raise MarkerDecodeError(f"unsupported marker codec version {version}")
    if flags & ~_KNOWN_FLAGS:
        # A flag bit this codec version has never assigned: the frame's
        # layout past the base header is unknowable, so parsing on would
        # misread it.  Reject rather than guess.
        raise MarkerDecodeError(
            f"unknown marker flag bits {flags & ~_KNOWN_FLAGS:#04x}"
        )
    if flags & _FLAG_FEC:
        # Reserved, not yet specified: a frame claiming an FEC extension
        # carries bytes this decoder cannot frame.
        raise MarkerDecodeError(
            "marker carries the reserved FEC-metadata flag (0x04); "
            "no extension format is defined for it yet"
        )
    sack: Optional[SackInfo] = None
    if flags & _FLAG_SACK:
        try:
            sack = _decode_sack(data, MARKER_WIRE_BYTES)
        except ValueError as exc:  # SackInfo validation → typed error
            raise MarkerDecodeError(str(exc)) from None
    elif len(data) != MARKER_WIRE_BYTES:
        raise MarkerDecodeError(
            f"marker frame must be {MARKER_WIRE_BYTES} bytes, got {len(data)}"
        )
    return MarkerPacket(
        channel=channel,
        round_number=round_number,
        deficit=deficit,
        size=len(data),
        credit=credit if flags & _FLAG_CREDIT else None,
        sack=sack,
    )


def attach_sack(marker: MarkerPacket, sack: SackInfo) -> None:
    """Piggyback ``sack`` on ``marker``, updating its simulated size."""
    if len(sack.blocks) > MAX_SACK_BLOCKS_WIRE:
        sack = SackInfo(
            cum_ack=sack.cum_ack, blocks=sack.blocks[:MAX_SACK_BLOCKS_WIRE]
        )
    marker.sack = sack
    marker.size = marker_wire_size(sack)


def piggybacked_credit(packet: Any) -> Optional[Tuple[int, int]]:
    """The ``(channel, credit)`` riding ``packet``, if it is a credit-bearing
    marker (the §6.3 FCVC piggyback); None otherwise."""
    if is_marker(packet) and packet.credit is not None:
        return (packet.channel, packet.credit)
    return None


def piggybacked_sack(packet: Any) -> Optional[SackInfo]:
    """The :class:`SackInfo` riding ``packet``, if it is a SACK-bearing
    marker (the reliability-layer reverse path); None otherwise."""
    if is_marker(packet):
        return getattr(packet, "sack", None)
    return None


@dataclass(frozen=True)
class ReceiverSnapshot:
    """Immutable capture of an :class:`SRRReceiver`'s mirror state.

    The ``(ptr, round_number, dc)`` triple is the simulated sender state
    (an :class:`~repro.core.srr.SRRState` worth of information); ``pending``
    and ``sync_round`` are the receiver-only annotations: which channels
    still owe themselves a quantum on their next visit, and which channels
    hold an un-reached marker round (condition C1).
    """

    ptr: int
    round_number: int
    dc: Tuple[float, ...]
    pending: Tuple[bool, ...]
    sync_round: Tuple[Optional[int], ...]


@dataclass
class SRRReceiverStats:
    """Counters for the marker-synchronized receiver."""

    delivered: int = 0
    markers_received: int = 0
    adoptions: int = 0
    #: markers dropped because they repeated the last adopted ``(r, d)``
    #: pair on their channel — a network-duplicated marker re-adopted
    #: after data consumption would inflate the mirrored deficit and skip
    #: rounds, so exact repeats are discarded (idempotent adoption)
    duplicate_markers: int = 0
    channel_skips: int = 0
    #: visits abandoned because the deficit stayed non-positive even after
    #: adding a quantum — only possible when quantum < max packet size
    #: (the Theorem 5.1 assumption violated).
    deep_overdraw_skips: int = 0
    max_buffered: int = 0
    #: expected packets on a failed (dead) channel written off as lost so
    #: the surviving channels could keep delivering
    assumed_lost: int = 0
    #: packets delivered by the lag flush: data buffered behind a marker
    #: whose round the scan had already passed (late arrivals after a
    #: reorder burst or an outage) released immediately instead of being
    #: metered one quantum per round
    lag_flushed: int = 0


class SRRReceiver:
    """Logical reception with marker recovery for SRR-family striping.

    The receiver mirrors the sender's SRR state — pointer, global round
    ``G``, per-channel deficit counters — and additionally keeps, per
    channel, an optional *sync round* installed by markers.  A channel with
    a sync round in the future (``r_c > G``) is skipped (condition C1); a
    channel whose sync round has arrived is serviced with the marker's
    absolute DC value.

    Args:
        algorithm: the SRR-family algorithm in use at the sender.
        on_deliver: callback receiving data packets in logical order.
        tracer: optional :class:`~repro.sim.trace.Tracer`; emits ``deliver``,
            ``marker``, ``skip`` and ``block`` events.
        clock: optional ``() -> float`` supplying timestamps for traces.
    """

    def __init__(
        self,
        algorithm: SRR,
        on_deliver: Optional[Callable[[Any], None]] = None,
        tracer: Tracer = NULL_TRACER,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if isinstance(algorithm, SRRKernel):
            algorithm = algorithm.algorithm
        if not isinstance(algorithm, SRR):
            raise TypeError("marker recovery requires an SRR-family algorithm")
        self.algorithm = algorithm
        self.on_deliver = on_deliver
        self.tracer = tracer
        self.clock = clock if clock is not None else (lambda: 0.0)
        n = algorithm.n_channels
        self._n = n
        self.buffers: List[Deque[Any]] = [deque() for _ in range(n)]
        self._buffered = 0
        self.stats = SRRReceiverStats()
        # Mirror of the sender's initial state (see SRR.initial_state).
        self.ptr = 0
        self.round_number = 1
        self.dc: List[float] = [0.0] * n
        self.dc[0] = algorithm.quanta[0]
        self.pending: List[bool] = [False] + [True] * (n - 1)
        self.sync_round: List[Optional[int]] = [None] * n
        #: channels declared dead (see :meth:`fail_channel`)
        self.failed: set = set()
        # Last adopted (round, deficit) per channel; implicit numbers are
        # non-decreasing on a channel, so an exact repeat is a duplicate.
        self._last_marker: List[Optional[Tuple[int, float]]] = [None] * n

    # ------------------------------------------------------------------ #

    @property
    def n_channels(self) -> int:
        return self.algorithm.n_channels

    @property
    def buffered(self) -> int:
        """Packets buffered across channels (tracked incrementally, O(1))."""
        return self._buffered

    def expected_channel(self) -> int:
        """The channel the receiver is currently blocked on."""
        return self.ptr

    def push(self, channel: int, packet: Any) -> List[Any]:
        """Physical arrival on ``channel``; returns packets delivered."""
        if not 0 <= channel < self._n:
            raise ValueError(f"channel {channel} out of range")
        self.buffers[channel].append(packet)
        self._buffered += 1
        if self._buffered > self.stats.max_buffered:
            self.stats.max_buffered = self._buffered
        return self.drain()

    # ------------------------------------------------------------------ #

    def _advance(self) -> None:
        """Move the scan pointer to the next channel; wrap bumps ``G``."""
        ptr = self.ptr + 1
        if ptr == self._n:
            ptr = 0
            self.round_number += 1
        self.ptr = ptr

    def fail_channel(self, channel: int) -> List[Any]:
        """Declare ``channel`` dead; expected packets there count as lost.

        After failure, a scan that blocks on the dead channel (empty
        buffer) while data is buffered elsewhere writes the expected packet
        off as lost — one nominal quantum-sized packet per visit — so the
        surviving channels keep delivering instead of stalling forever.
        Returns packets that became deliverable immediately.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        self.failed.add(channel)
        return self.drain()

    def revive_channel(self, channel: int) -> None:
        """Welcome a failed channel back; stop assuming its packets lost.

        The channel's pre-outage state is gone, so it re-enters pending
        resync: its first marker installs a future sync round (condition
        C1) and the scan skips it until that round arrives, exactly the
        initial-adoption path.  No session reset is required.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        if channel not in self.failed:
            return
        self.failed.discard(channel)
        self.dc[channel] = 0.0
        self.pending[channel] = True
        self.sync_round[channel] = None
        # Forget the duplicate memo: the resync marker after revival may
        # legitimately repeat the last pre-outage pair on an idle channel.
        self._last_marker[channel] = None

    def _nominal_size(self, channel: int) -> int:
        """Assumed size of an unseen (lost) packet on a failed channel."""
        return max(1, int(self.algorithm.quanta[channel]))

    def drain(self) -> List[Any]:
        """Deliver every packet currently deliverable, honoring C1 skips."""
        out: List[Any] = []
        # This is the receive-side per-packet hot loop (every arrival on
        # both the reference and the fast path funnels through it), so
        # loop-invariant attribute lookups are hoisted into locals.  The
        # mutable lists (dc, pending, ...) are aliases: helper methods
        # mutate them in place, so the locals always see current state.
        n = self._n
        assumed_budget = 64 * n
        algorithm = self.algorithm
        cost = algorithm.cost
        quanta = algorithm.quanta
        dc = self.dc
        pending = self.pending
        sync_round = self.sync_round
        buffers = self.buffers
        failed = self.failed
        stats = self.stats
        tracing = self.tracer.enabled
        on_deliver = self.on_deliver
        marker = is_marker
        # The scan terminates: each iteration either consumes a buffered
        # packet, advances the pointer toward the minimum pending sync
        # round, or blocks.  The skip budget bounds pathological spins.
        while True:
            c = self.ptr
            sync = sync_round[c]
            if sync is not None and sync > self.round_number:
                # C1: arrived too early at this channel; skip it this scan.
                stats.channel_skips += 1
                if tracing:
                    self.tracer.emit(
                        self.clock(), "receiver", "skip",
                        channel=c, G=self.round_number, r_c=sync,
                    )
                self._advance()
                if self._all_future_synced_and_idle():
                    # Every channel is waiting for a future round and no
                    # data is buffered anywhere: fast-forward G.
                    self._fast_forward()
                continue
            if sync is not None:
                # The marker round has arrived: DC is already absolute.
                sync_round[c] = None
                pending[c] = False
            if pending[c]:
                dc[c] += quanta[c]
                pending[c] = False
            if dc[c] <= 0:
                # Deep overdraw (quantum < max packet): skip this visit.
                stats.deep_overdraw_skips += 1
                pending[c] = True
                self._advance()
                continue
            buffer = buffers[c]
            if not buffer:
                if (
                    c in failed
                    and self._buffered > 0
                    and assumed_budget > 0
                ):
                    # Dead channel with live data elsewhere: write the
                    # expected packet off as lost and keep scanning.
                    stats.assumed_lost += 1
                    assumed_budget -= 1
                    dc[c] -= cost(self._nominal_size(c))
                    if dc[c] <= 0:
                        pending[c] = True
                        self._advance()
                    continue
                return out  # block on this channel
            assumed_budget = 64 * n
            packet = buffer.popleft()
            self._buffered -= 1
            if marker(packet):
                if self._is_duplicate_marker(c, packet):
                    continue
                self._adopt(c, packet)
                if packet.round_number < self.round_number:
                    # The marker is stale: the scan has already passed the
                    # round it describes, so data buffered behind it (late
                    # arrivals from a reorder burst or an outage) belongs
                    # to slots that are gone.  Metering it one quantum per
                    # round would lock in a permanent delivery lag; flush
                    # the provably-past segments now.
                    self._flush_lag(c, out)
                continue
            out.append(packet)
            stats.delivered += 1
            if on_deliver is not None:
                on_deliver(packet)
            if tracing:
                self.tracer.emit(
                    self.clock(), "receiver", "deliver",
                    channel=c, G=self.round_number, dc=dc[c],
                )
            dc[c] -= cost(packet.size)
            if dc[c] <= 0:
                pending[c] = True
                self._advance()

    def _is_duplicate_marker(self, channel: int, marker: MarkerPacket) -> bool:
        """True if ``marker`` exactly repeats the last adoption on its channel.

        Implicit numbers ``(r, d)`` are non-decreasing per channel, so a
        marker matching the last adopted pair after any consumption is a
        network duplicate (or an idle-channel keepalive repeat, for which
        re-adoption would be a state no-op anyway).  Re-adopting it after
        data was consumed would reinstall a stale deficit and skip rounds;
        adoption must be idempotent, so exact repeats are dropped.
        """
        if self._last_marker[channel] != (marker.round_number, marker.deficit):
            return False
        self.stats.markers_received += 1
        self.stats.duplicate_markers += 1
        return True

    def _adopt(self, channel: int, marker: MarkerPacket) -> None:
        """Install the marker's ``(r, d)`` as channel state (section 5)."""
        self.stats.markers_received += 1
        self.stats.adoptions += 1
        self.dc[channel] = marker.deficit
        self.sync_round[channel] = marker.round_number
        self.pending[channel] = False
        self._last_marker[channel] = (marker.round_number, marker.deficit)
        if self.tracer.enabled:
            self.tracer.emit(
                self.clock(), "receiver", "marker",
                channel=channel, r=marker.round_number, d=marker.deficit,
                G=self.round_number,
            )

    def _flush_lag(self, channel: int, out: List[Any]) -> None:
        """Release data whose logical slot the scan has already passed.

        Called after adopting a marker with ``r < round_number``: the
        channel is ``round_number - r`` rounds behind the scan (late
        arrivals after a reorder burst or an outage).  The marker gives
        the implicit number ``(r, d)`` of the very next data packet, so
        the missed rounds can be replayed exactly: consume buffered data
        against the simulated deficit, advancing the channel's local
        round each time the deficit exhausts, until it reaches the live
        edge.  Everything consumed this way is provably overdue and is
        delivered immediately, uncharged — its deficit belonged to rounds
        the scan skipped; metering it instead would lock in a permanent
        one-packet-per-round delivery lag.  A marker encountered mid-
        replay re-anchors the simulation; if the buffer runs dry before
        the lag is repaid, the partial progress is written back and the
        next stale marker resumes from there.
        """
        buffer = self.buffers[channel]
        quantum = self.algorithm.quanta[channel]
        lag = self.round_number - self.sync_round[channel]
        dc = self.dc[channel]
        while lag > 0:
            if buffer and is_marker(buffer[0]):
                marker = buffer.popleft()
                self._buffered -= 1
                if self._is_duplicate_marker(channel, marker):
                    continue
                self._adopt(channel, marker)
                if marker.round_number >= self.round_number:
                    return  # live edge (or C1 future; the scan handles it)
                lag = self.round_number - marker.round_number
                dc = self.dc[channel]
                continue
            if dc <= 0:
                dc += quantum
                lag -= 1
                continue
            if not buffer:
                # Partial catch-up: the rest of the overdue data is still
                # in flight.  Record how far the replay got.
                self.dc[channel] = dc
                self.sync_round[channel] = self.round_number - lag
                return
            packet = buffer.popleft()
            self._buffered -= 1
            out.append(packet)
            self.stats.delivered += 1
            self.stats.lag_flushed += 1
            if self.on_deliver is not None:
                self.on_deliver(packet)
            if self.tracer.enabled:
                self.tracer.emit(
                    self.clock(), "receiver", "deliver",
                    channel=channel, G=self.round_number - lag, dc=dc,
                )
            dc -= self.algorithm.cost(packet.size)
        # Caught up: dc is the channel's absolute deficit for the current
        # round (its quantum already granted by the replay).
        self.dc[channel] = dc
        self.sync_round[channel] = self.round_number

    def _all_future_synced_and_idle(self) -> bool:
        return (
            all(
                self.sync_round[c] is not None
                and self.sync_round[c] > self.round_number
                for c in range(self._n)
            )
        )

    def _fast_forward(self) -> None:
        """Jump ``G`` to the nearest pending sync round instead of spinning.

        Semantically identical to scanning-and-skipping round by round
        (each full skip-scan increments ``G`` by one and touches nothing
        else), just O(1).
        """
        target = min(r for r in self.sync_round if r is not None)
        if target > self.round_number and self.ptr == 0:
            self.round_number = target

    # ------------------------------------------------------------------ #
    # kernel snapshot surface (sections 4-5; used by session reset)

    def snapshot(self) -> ReceiverSnapshot:
        """Immutable capture of the full receiver mirror state."""
        return ReceiverSnapshot(
            ptr=self.ptr,
            round_number=self.round_number,
            dc=tuple(self.dc),
            pending=tuple(self.pending),
            sync_round=tuple(self.sync_round),
        )

    def restore(self, snapshot: ReceiverSnapshot) -> None:
        """Install a state previously captured with :meth:`snapshot`.

        Buffered packets and stats are left alone: restore only rewinds the
        simulated sender state, which is what self-stabilization needs.
        """
        if len(snapshot.dc) != self.n_channels:
            raise ValueError(
                f"snapshot has {len(snapshot.dc)} channels, "
                f"receiver has {self.n_channels}"
            )
        self.ptr = snapshot.ptr
        self.round_number = snapshot.round_number
        self.dc = list(snapshot.dc)
        self.pending = list(snapshot.pending)
        self.sync_round = list(snapshot.sync_round)
        self._last_marker = [None] * self.n_channels

    def adopt_snapshot(self, state: SRRState) -> List[Any]:
        """Adopt a *sender* kernel snapshot wholesale (all channels at once).

        Equivalent to receiving a fresh marker on every channel
        simultaneously, but exact: the receiver's mirror becomes the
        sender's state as of the snapshot.  Used when both ends share an
        out-of-band state channel (session reset installing a fresh epoch,
        or a warm standby receiver joining mid-stream); per-channel marker
        adoption (:meth:`push` with markers) remains the in-band path.

        In the sender invariant ``dc[ptr]`` already includes the current
        visit's quantum, so ``pending`` is False only for ``ptr``; markers
        pending against the old state are void.  Returns packets that
        became deliverable under the adopted state.
        """
        if len(state.dc) != self.n_channels:
            raise ValueError(
                f"snapshot has {len(state.dc)} channels, "
                f"receiver has {self.n_channels}"
            )
        self.stats.adoptions += 1
        self.ptr = state.ptr
        self.round_number = state.round_number
        self.dc = list(state.dc)
        self.pending = [True] * self.n_channels
        self.pending[state.ptr] = False
        self.sync_round = [None] * self.n_channels
        self._last_marker = [None] * self.n_channels
        return self.drain()

    # ------------------------------------------------------------------ #
    # introspection for tests

    def mirror_state(self) -> dict:
        """Snapshot of the receiver's simulated sender state."""
        return {
            "ptr": self.ptr,
            "G": self.round_number,
            "dc": tuple(self.dc),
            "pending": tuple(self.pending),
            "sync_round": tuple(self.sync_round),
        }
