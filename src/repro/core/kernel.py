"""The scheduler kernel: one mutable, batch-capable stepping engine.

The paper's central observation is that *one* causal FQ algorithm drives
both ends of the stripe (Theorems 3.1 / 4.1): the sender steps it to pick
output channels, the receiver steps the very same algorithm to predict
arrival channels.  Historically this repo stepped that algorithm through
several divergent per-packet paths — ``CausalFQ.select``/``update`` with
frozen :class:`~repro.core.srr.SRRState` dataclasses, the two-phase
``LoadSharer.choose``/``notify_sent`` protocol, and ad-hoc loops in the FQ
drivers.  Allocating a frozen dataclass (plus a list copy and a tuple) per
packet dominated the hot path.

A :class:`SchedulerKernel` is the consolidation: a *mutable* stepping
engine with

* in-place :meth:`~SchedulerKernel.step` — account one packet, return the
  channel it goes to,
* batched :meth:`~SchedulerKernel.assign_many` — assign a whole burst of
  packet sizes in one tight loop,
* explicit :meth:`~SchedulerKernel.snapshot` / :meth:`~SchedulerKernel.restore`
  — immutable state capture replacing the per-packet frozen states, while
  preserving the ``(R, D)`` implicit-numbering and marker-adoption
  semantics of sections 4–5 (an :class:`SRRKernel` snapshot *is* an
  :class:`~repro.core.srr.SRRState`).

:func:`kernel_for` builds the fastest kernel available for any
:class:`~repro.core.cfq.CausalFQ`: a native :class:`SRRKernel` for the SRR
family (SRR / RR / GRR share one engine via the unified cost function) and
a :class:`CFQKernelAdapter` wrapping ``select``/``update`` for everything
else (e.g. the seeded randomized schemes), so every layer can hold a
kernel without caring which algorithm is underneath.

:class:`DRRKernel` is the mutable engine for classic (non-causal) DRR; it
exists for the fair-queuing direction only and deliberately does *not*
implement :class:`SchedulerKernel` — its selection needs head-of-line
sizes, which is exactly why DRR cannot be striped with logical reception.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.cfq import CausalFQ
from repro.core.srr import SRR, SRRState

try:  # optional acceleration; the pure-python kernels never need it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None


def numpy_available() -> bool:
    """True if the optional numpy-backed kernel can be constructed."""
    return _np is not None


class SchedulerKernel(abc.ABC):
    """A mutable stepping engine for a causal scheduling algorithm.

    Unlike :class:`~repro.core.cfq.CausalFQ` (pure ``select``/``update``
    over immutable states), a kernel owns its state and mutates it in
    place.  The immutable semantics are recovered exactly through
    :meth:`snapshot` / :meth:`restore`, which is what the marker machinery
    and session reset use.
    """

    @property
    @abc.abstractmethod
    def n_channels(self) -> int:
        """Number of channels the kernel schedules over."""

    @abc.abstractmethod
    def peek(self) -> int:
        """Channel the next packet will be assigned to (no state change)."""

    @abc.abstractmethod
    def step(self, size: int) -> int:
        """Account one packet of ``size`` bytes; returns its channel.

        Mutates the kernel in place.  The returned channel always equals
        what :meth:`peek` returned immediately before the call (causality:
        the choice is committed before the packet is seen).
        """

    def assign_many(self, sizes: Sequence[int]) -> List[int]:
        """Assign a burst of packet sizes; returns one channel per size.

        Equivalent to calling :meth:`step` per size, but implemented as a
        single tight loop by native kernels.  This is the batch API the
        offline drivers and benchmarks use.
        """
        return [self.step(size) for size in sizes]

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """An immutable capture of the current state."""

    @abc.abstractmethod
    def restore(self, snapshot: Any) -> None:
        """Install a state previously captured with :meth:`snapshot`."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return to the algorithm's initial state ``s0``."""


class SRRKernel(SchedulerKernel):
    """Native mutable kernel for the SRR family (SRR / RR / GRR).

    Exposes the live ``ptr`` / ``round_number`` / ``dc`` fields directly —
    the striper reads ``(ptr, round_number)`` before and after each step to
    detect marker-position crossings without materializing a snapshot.

    Snapshots are :class:`~repro.core.srr.SRRState` instances, so they are
    interchangeable with the immutable path: a receiver can adopt a kernel
    snapshot (marker adoption, section 5) and a kernel can restore a state
    produced by ``CausalFQ.update``.
    """

    __slots__ = ("algorithm", "quanta", "count_packets", "ptr",
                 "round_number", "dc")

    def __init__(self, algorithm: SRR) -> None:
        if not isinstance(algorithm, SRR):
            raise TypeError("SRRKernel requires an SRR-family algorithm")
        self.algorithm = algorithm
        self.quanta: Tuple[float, ...] = algorithm.quanta
        self.count_packets = algorithm.count_packets
        self.reset()

    @property
    def n_channels(self) -> int:
        return len(self.quanta)

    def reset(self) -> None:
        self.ptr = 0
        self.round_number = 1
        self.dc = [0.0] * len(self.quanta)
        self.dc[0] = self.quanta[0]

    def peek(self) -> int:
        return self.ptr

    def step(self, size: int) -> int:
        channel = self.ptr
        dc = self.dc
        d = dc[channel] - (1.0 if self.count_packets else size)
        dc[channel] = d
        if d <= 0:
            ptr = channel
            rnd = self.round_number
            quanta = self.quanta
            n = len(quanta)
            while True:
                ptr += 1
                if ptr == n:
                    ptr = 0
                    rnd += 1
                d = dc[ptr] + quanta[ptr]
                dc[ptr] = d
                if d > 0:
                    break
            self.ptr = ptr
            self.round_number = rnd
        return channel

    def assign_many(self, sizes: Sequence[int]) -> List[int]:
        out: List[int] = []
        append = out.append
        ptr = self.ptr
        rnd = self.round_number
        dc = self.dc
        quanta = self.quanta
        n = len(quanta)
        count_packets = self.count_packets
        for size in sizes:
            append(ptr)
            d = dc[ptr] - (1.0 if count_packets else size)
            dc[ptr] = d
            if d <= 0:
                while True:
                    ptr += 1
                    if ptr == n:
                        ptr = 0
                        rnd += 1
                    d = dc[ptr] + quanta[ptr]
                    dc[ptr] = d
                    if d > 0:
                        break
        self.ptr = ptr
        self.round_number = rnd
        return out

    def snapshot(self) -> SRRState:
        return SRRState(self.ptr, self.round_number, tuple(self.dc))

    def restore(self, snapshot: SRRState) -> None:
        if len(snapshot.dc) != len(self.quanta):
            raise ValueError(
                f"snapshot has {len(snapshot.dc)} channels, "
                f"kernel has {len(self.quanta)}"
            )
        self.ptr = snapshot.ptr
        self.round_number = snapshot.round_number
        self.dc = list(snapshot.dc)

    # ------------------------------------------------------------------ #
    # marker support (section 5): same semantics as SRR, off the live state

    def implicit_number(self) -> Tuple[int, float]:
        """The ``(R, D)`` implicit number of the next packet to be sent."""
        return (self.round_number, self.dc[self.ptr])

    def next_number_for_channel(self, channel: int) -> Tuple[int, float]:
        """The implicit number ``(r, d)`` of the next packet on ``channel``.

        This is what a marker for ``channel`` carries; see
        :meth:`repro.core.srr.SRR.next_number_for_channel`.
        """
        if not 0 <= channel < len(self.quanta):
            raise ValueError(f"channel {channel} out of range")
        if channel == self.ptr:
            return (self.round_number, self.dc[channel])
        d = self.dc[channel]
        if channel > self.ptr:
            rnd = self.round_number  # visited later this round
        else:
            rnd = self.round_number + 1  # next round
        d += self.quanta[channel]
        while d <= 0:
            rnd += 1
            d += self.quanta[channel]
        return (rnd, d)


class NumpySRRKernel(SRRKernel):
    """:class:`SRRKernel` with a vectorized ``assign_many`` for uniform bursts.

    Byte-mode SRR over *mixed* sizes is inherently sequential — each
    advance decision depends on the exact bytes served so far, so there is
    no exact data-parallel formulation.  But the two workloads the striping
    benchmarks actually run are closed-form:

    * packet-counting mode (RR / GRR): every packet costs ``1.0``;
    * uniform-size bursts (the constant-MTU bulk-transfer case): every
      packet costs the same ``size``.

    With a uniform cost ``c`` a channel's cumulative serve count depends
    only on its own granted budget, never on the interleaving: by the end
    of its ``j``-th visit, a channel with first-visit budget ``o`` and
    quantum ``q`` has served exactly ``max(0, ceil((o + j*q) / c))``
    packets.  Evaluating that threshold matrix for all visits at once,
    differencing per visit, and ``repeat``-ing the visit channels yields
    the whole assignment without stepping.

    Exactness: the closed form multiplies where the reference loop
    repeatedly subtracts.  When quanta, deficits and cost are all
    integer-valued (true for every byte-counting testbed in this repo) both
    are exact in float64 below 2**53, except that ``ceil`` of a float
    division may misround — fixed up with two exact multiply-compares.
    Whenever exactness cannot be guaranteed (mixed sizes, fractional
    quanta in byte mode, tiny bursts) the kernel silently falls back to
    the inherited scalar loop, so assignments are *always* bit-identical
    to :class:`SRRKernel`.
    """

    __slots__ = ("min_batch", "vector_batches", "scalar_batches")

    def __init__(self, algorithm: SRR, min_batch: int = 32) -> None:
        if _np is None:
            raise ImportError(
                "NumpySRRKernel requires numpy; use SRRKernel instead"
            )
        super().__init__(algorithm)
        self.min_batch = min_batch
        #: batches served by the vectorized path (perf counter)
        self.vector_batches = 0
        #: batches that fell back to the scalar loop (perf counter)
        self.scalar_batches = 0

    # ------------------------------------------------------------------ #

    def _uniform_cost(self, sizes: Sequence[int]) -> Optional[float]:
        """The single per-packet cost, or None if not vectorizable."""
        if self.count_packets:
            return 1.0
        arr = _np.asarray(sizes)
        first = arr.flat[0]
        if not bool((arr == first).all()):
            return None
        cost = float(first)
        return cost if cost > 0 and cost.is_integer() else None

    def _exact(self) -> bool:
        """True if quanta and live deficits are all integer-valued."""
        return all(float(q).is_integer() for q in self.quanta) and all(
            float(d).is_integer() for d in self.dc
        )

    def assign_many(self, sizes: Sequence[int]) -> List[int]:
        n_packets = len(sizes)
        if n_packets >= self.min_batch and self.dc[self.ptr] > 0:
            cost = self._uniform_cost(sizes)
            if cost is not None and self._exact():
                out = self._vector_assign(n_packets, cost)
                if out is not None:
                    self.vector_batches += 1
                    return out
        self.scalar_batches += 1
        return super().assign_many(sizes)

    def _vector_assign(self, n_packets: int, cost: float) -> Optional[List[int]]:
        np = _np
        n = len(self.quanta)
        ptr0 = self.ptr
        q = np.asarray(self.quanta, dtype=np.float64)
        dc0 = np.asarray(self.dc, dtype=np.float64)
        # visit order: the pointer walks channels (ptr0, ptr0+1, ...) % n;
        # column m of the threshold matrix is channel cols[m]
        cols = (ptr0 + np.arange(n)) % n
        qv = q[cols]
        ov = dc0[cols].copy()
        # every channel but the current one banks a quantum on first visit
        ov[1:] += qv[1:]
        qsum = float(qv.sum())
        rows = int(max(0.0, n_packets * cost - float(ov.sum())) // qsum) + 3
        if rows * n > max(8 * n_packets, 4096):
            return None  # deep-overdraw pathologies: scalar loop is fine
        while True:
            j = np.arange(rows, dtype=np.float64)[:, None]
            # T[j, m]: channel cols[m]'s cumulative budget at end of its
            # j-th visit
            T = ov[None, :] + j * qv[None, :]
            # packets served by then: smallest m with m*cost >= T
            m = np.ceil(T / cost)
            m += m * cost < T  # division rounded the ceil down
            m -= (m - 1.0) * cost >= T  # division rounded the ceil up
            cum_served = np.maximum.accumulate(np.maximum(m, 0.0), axis=0)
            cnt = np.diff(cum_served, axis=0, prepend=0.0).ravel()
            cum = np.cumsum(cnt)
            if cum[-1] >= n_packets:
                break
            rows *= 2  # safety net; the sizing bound makes this unreachable
        k_last = int(np.searchsorted(cum, n_packets, side="left"))
        spill = int(cum[k_last]) - n_packets
        cnt = cnt[: k_last + 1].astype(np.int64)
        cnt[k_last] -= spill
        visit_ch = np.tile(cols, rows)[: k_last + 1]
        out = np.repeat(visit_ch, cnt)
        # --- reconstruct the final kernel state analytically ---
        served = np.bincount(visit_ch, weights=cnt, minlength=n)
        a = ptr0 + k_last
        ptr = a % n
        rnd = self.round_number + a // n
        full, rem = divmod(k_last + 1, n)
        dc = self.dc
        quanta = self.quanta
        for c in range(n):
            visits = full + (1 if (c - ptr0) % n < rem else 0)
            if visits:
                # the current channel's first visit spends its live deficit
                # without banking a quantum; later visits bank one each
                grants = visits - 1 if c == ptr0 else visits
                dc[c] = dc[c] + grants * quanta[c] - float(served[c]) * cost
        if dc[ptr] <= 0:
            # the last packet exhausted the visit: emulate the advance loop
            while True:
                ptr += 1
                if ptr == n:
                    ptr = 0
                    rnd += 1
                d = dc[ptr] + quanta[ptr]
                dc[ptr] = d
                if d > 0:
                    break
        self.ptr = ptr
        self.round_number = rnd
        return out.tolist()


class CFQKernelAdapter(SchedulerKernel):
    """Kernel over any immutable :class:`~repro.core.cfq.CausalFQ`.

    Holds the algorithm's current state and advances it through
    ``select``/``update``.  Slower than a native kernel (every step still
    allocates a new state object) but gives arbitrary CFQ algorithms —
    seeded randomized schemes, user-defined ones — the same stepping,
    batching, and snapshot surface.
    """

    __slots__ = ("algorithm", "state")

    def __init__(self, algorithm: CausalFQ, state: Any = None) -> None:
        self.algorithm = algorithm
        self.state = state if state is not None else algorithm.initial_state()

    @property
    def n_channels(self) -> int:
        return self.algorithm.n_channels

    def peek(self) -> int:
        return self.algorithm.select(self.state)

    def step(self, size: int) -> int:
        channel = self.algorithm.select(self.state)
        self.state = self.algorithm.update(self.state, size)
        return channel

    def assign_many(self, sizes: Sequence[int]) -> List[int]:
        algorithm = self.algorithm
        select = algorithm.select
        update = algorithm.update
        state = self.state
        out: List[int] = []
        append = out.append
        for size in sizes:
            append(select(state))
            state = update(state, size)
        self.state = state
        return out

    def snapshot(self) -> Any:
        return self.state

    def restore(self, snapshot: Any) -> None:
        self.state = snapshot

    def reset(self) -> None:
        self.state = self.algorithm.initial_state()


class _SizedProbe:
    """A minimal packet stand-in for size-only kernel stepping."""

    __slots__ = ("size", "flow")

    def __init__(self, size: int, flow: Any = None) -> None:
        self.size = size
        self.flow = flow


class SharerKernel(SchedulerKernel):
    """Kernel surface over any load-sharing policy, causal or not.

    The comparison baselines (shortest queue first, random selection,
    address hashing) implement the two-phase
    :class:`~repro.core.transform.LoadSharer` protocol rather than the
    ``(s0, f, g)`` algebra, so they historically sat outside the kernel
    machinery.  This adapter runs choose/notify behind the standard
    stepping surface, so one endpoint pipeline can hold *any* discipline
    as a kernel.

    Depth-sensitive policies (SQF) see live queue depths through the
    ``depths`` provider; without one they degrade exactly as the policy
    itself degrades.  Snapshots deep-copy the sharer's mutable attributes —
    these policies keep a few scalars (and at most one PRNG) of state.
    """

    __slots__ = ("sharer", "depths")

    def __init__(
        self,
        sharer: Any,
        depths: Optional[Callable[[], Sequence[int]]] = None,
    ) -> None:
        self.sharer = sharer
        self.depths = depths

    @property
    def n_channels(self) -> int:
        return self.sharer.n_channels

    def _depths(self) -> Optional[Sequence[int]]:
        return self.depths() if self.depths is not None else None

    def peek(self) -> int:
        return self.sharer.choose(None, self._depths())

    def step(self, size: int) -> int:
        return self.step_packet(_SizedProbe(size))

    def step_packet(self, packet: Any) -> int:
        """Step with a real packet (address hashing reads ``flow``)."""
        channel = self.sharer.choose(packet, self._depths())
        self.sharer.notify_sent(channel, packet)
        return channel

    def assign_many(self, sizes: Sequence[int]) -> List[int]:
        return self.sharer.assign_many(
            [_SizedProbe(size) for size in sizes], self._depths()
        )

    def snapshot(self) -> Any:
        return copy.deepcopy(vars(self.sharer))

    def restore(self, snapshot: Any) -> None:
        vars(self.sharer).clear()
        vars(self.sharer).update(copy.deepcopy(snapshot))

    def reset(self) -> None:
        self.sharer.reset()


def kernel_for(algorithm: Any, *, numpy: Any = False) -> SchedulerKernel:
    """The fastest kernel available for ``algorithm``.

    SRR-family algorithms (SRR, and RR / GRR via :func:`~repro.core.srr.make_rr`
    / :func:`~repro.core.srr.make_grr`) get the native :class:`SRRKernel`;
    other :class:`~repro.core.cfq.CausalFQ` algorithms are wrapped in a
    :class:`CFQKernelAdapter`, and plain load sharers (the non-causal
    baselines) in a :class:`SharerKernel`.

    ``numpy`` selects the vectorized :class:`NumpySRRKernel` for the SRR
    family: ``True`` requires it (ImportError when numpy is absent),
    ``"auto"`` uses it when numpy is importable and falls back silently,
    and ``False`` (the default) always builds the pure-python kernel.
    The selection is construction-time only — both kernels produce
    bit-identical assignments.
    """
    if isinstance(algorithm, SRR):
        if numpy is True or (numpy == "auto" and numpy_available()):
            return NumpySRRKernel(algorithm)
        return SRRKernel(algorithm)
    if isinstance(algorithm, CausalFQ):
        return CFQKernelAdapter(algorithm)
    if hasattr(algorithm, "choose") and hasattr(algorithm, "notify_sent"):
        return SharerKernel(algorithm)
    raise TypeError(f"no kernel available for {algorithm!r}")


def make_rr_kernel(n: int) -> SRRKernel:
    """Native kernel for ordinary round robin over ``n`` channels."""
    from repro.core.srr import make_rr

    return SRRKernel(make_rr(n))


def make_grr_kernel(weights: Sequence[int]) -> SRRKernel:
    """Native kernel for GRR with integer per-channel weights."""
    from repro.core.srr import make_grr

    return SRRKernel(make_grr(weights))


class DRRKernel:
    """Mutable engine for classic (non-causal) Deficit Round Robin.

    The fair-queuing direction only: selection must see head-of-line sizes
    (:meth:`next`), which is why DRR is not a :class:`SchedulerKernel` and
    cannot be striped with logical reception.  Snapshot/restore mirror the
    causal kernels so FQ drivers can treat all engines uniformly.
    """

    __slots__ = ("quanta", "ptr", "dc")

    def __init__(self, quanta: Sequence[float]) -> None:
        if not quanta or any(q <= 0 for q in quanta):
            raise ValueError("quanta must be positive")
        self.quanta = tuple(float(q) for q in quanta)
        self.reset()

    @property
    def n_queues(self) -> int:
        return len(self.quanta)

    def reset(self) -> None:
        self.ptr = 0
        self.dc = [0.0] * len(self.quanta)
        self.dc[0] = self.quanta[0]

    def next(self, head_sizes: Sequence[Optional[int]]) -> int:
        """Pick the queue to serve given head-of-line sizes (mutates state).

        Walks the round-robin ring banking quanta until the current queue's
        head fits its deficit, exactly as
        :meth:`repro.core.srr.DRR.next` does over immutable states.
        """
        ptr = self.ptr
        dc = self.dc
        quanta = self.quanta
        n = len(quanta)
        max_head = max((h for h in head_sizes if h is not None), default=0)
        visits = n * (2 + int(max_head / min(quanta))) + n
        for _ in range(visits):
            head = head_sizes[ptr]
            if head is not None and head <= dc[ptr]:
                self.ptr = ptr
                return ptr
            if head is None:
                dc[ptr] = 0.0  # empty queue forfeits its deficit
            ptr = (ptr + 1) % n
            dc[ptr] += quanta[ptr]
        raise RuntimeError("DRR walk failed to find a serviceable queue")

    def consume(self, queue: int, size: int) -> None:
        """Account for the packet just sent from ``queue``."""
        self.dc[queue] -= size

    def snapshot(self) -> Tuple[int, Tuple[float, ...]]:
        return (self.ptr, tuple(self.dc))

    def restore(self, snapshot: Tuple[int, Tuple[float, ...]]) -> None:
        ptr, dc = snapshot
        self.ptr = ptr
        self.dc = list(dc)
