"""Session control: reset, reconfiguration, and multi-flow striping.

Section 5 of the paper sketches what this package-of-three implements:

    "It is also possible to make the marker algorithm self-stabilizing
    (i.e., robust against any error in the state) by periodically running
    a snapshot [CL85] and then doing a reset [Var93].  We deal with sender
    or receiver node crashes by doing a reset."

The session layer is split across three modules:

* :mod:`repro.core.control` — the control-plane vocabulary:
  :class:`StripeConfig` (with O(1) channel-position lookups) and the
  RESET / PROBE packet family.  Re-exported here for compatibility.
* :mod:`repro.core.stabilize` — the self-stabilization companions:
  :class:`ChannelProber` (channel revival) and :class:`LocalChecker`
  ([Var93] local checking).  Re-exported here for compatibility.
* this module — the two session state machines.

Three protocol pieces live in the state machines:

* **Reset protocol** — an epoch-numbered, per-channel in-band RESET
  exchange that reinitializes both ends of a striped channel group.  A
  RESET packet travels down every channel; it is the *separator* between
  the old and new packet streams, so no data packet needs tagging.  The
  receiver flushes (discards) pre-reset data still in flight, installs the
  configuration carried by the RESET (quanta — so reconfiguration is just
  reset-with-new-parameters), and acknowledges on the reverse control
  path.  Lost RESETs/ACKs are retried on a timer.

* **Reconfiguration** — because the RESET carries the striping
  configuration, changing quanta (capacity re-estimation) or dropping a
  dead channel is a single reset round trip: both ends atomically agree on
  the new `(channels, quanta)` at the epoch boundary.

* **Multi-flow fabric consumption** — the sender session no longer owns a
  single implicit flow: :meth:`StripeSenderSession.attach_fabric` mounts a
  :class:`~repro.transport.fabric.FabricScheduler` (weighted DRR across
  flows) above the striper, and :meth:`StripeSenderSession.submit` accepts
  ``flow_id`` so upper layers address flows, not the bundle.  The fabric
  drains into the striper only while the session is RUNNING and the
  striper's input queue is short, so per-flow queues — not the shared
  epoch replay buffer — absorb multi-tenant backlog across resets.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, List, Optional, Sequence

from repro.core.control import (
    CODEPOINT_PROBE,
    CODEPOINT_PROBE_ACK,
    CODEPOINT_RESET,
    CODEPOINT_RESET_ACK,
    CODEPOINT_RESET_REQUEST,
    ProbeAckPacket,
    ProbePacket,
    ResetAckPacket,
    ResetPacket,
    ResetRequestPacket,
    StripeConfig,
)
from repro.core.markers import SRRReceiver
from repro.core.packet import Codepoint, MarkerPacket
from repro.core.stabilize import ChannelProber, LocalChecker
from repro.core.striper import ChannelPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer
from repro.sim.engine import Event, Simulator

__all__ = [
    "CODEPOINT_PROBE",
    "CODEPOINT_PROBE_ACK",
    "CODEPOINT_RESET",
    "CODEPOINT_RESET_ACK",
    "CODEPOINT_RESET_REQUEST",
    "ChannelProber",
    "LocalChecker",
    "ProbeAckPacket",
    "ProbePacket",
    "ResetAckPacket",
    "ResetPacket",
    "ResetRequestPacket",
    "StripeConfig",
    "StripeReceiverSession",
    "StripeSenderSession",
]


class StripeSenderSession:
    """Owns the sender striper across resets and reconfigurations.

    Args:
        sim: event engine (for retry timers).
        ports: the full set of channel ports (a reset may activate a
            subset).
        config: initial striping configuration.
        marker_policy: marker policy applied to every epoch's striper.
        checkpoint_every_rounds: stamp a sender-round checkpoint onto the
            markers this often (0 disables; see LocalChecker).
        retry_timeout: seconds before an unacked RESET is retransmitted.
        striper_factory: optional ``(config, active_ports) -> Striper``
            override for each epoch's striper — how non-SRR disciplines
            (any registry entry, e.g. marker-free Sprinklers) ride the
            session layer's reset/reconfiguration machinery.  Default
            builds the paper's SRR striper from the config's quanta.

    Upper layers call :meth:`submit`; during a reset, packets queue and are
    replayed into the new epoch's striper.  With a fabric attached
    (:meth:`attach_fabric`), ``submit(packet, flow_id=...)`` routes through
    per-flow weighted-DRR queues instead.
    """

    RUNNING = "running"
    RESETTING = "resetting"

    def __init__(
        self,
        sim: Simulator,
        ports: Sequence[ChannelPort],
        config: StripeConfig,
        marker_policy: Optional[MarkerPolicy] = None,
        retry_timeout: float = 0.25,
        max_retries: int = 20,
        striper_factory: Optional[
            Callable[[StripeConfig, List[ChannelPort]], Striper]
        ] = None,
    ) -> None:
        if config.active_channels is None:
            config = StripeConfig(
                quanta=config.quanta,
                count_packets=config.count_packets,
                active_channels=tuple(range(len(ports)))[: config.n_channels],
            )
        if len(config.active_channels) != config.n_channels:
            raise ValueError("active_channels must match quanta length")
        self.sim = sim
        self.all_ports = list(ports)
        self.marker_policy = marker_policy
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.epoch = 0
        self.config = config
        self.state = self.RUNNING
        self.striper_factory = striper_factory
        self.striper = self._make_striper(config)
        self._pending_during_reset: List[Any] = []
        self._retry_event: Optional[Event] = None
        self._retries = 0
        self.resets_completed = 0
        self.reset_packets_sent = 0
        self.on_reset_complete: Optional[Callable[[int], None]] = None
        #: routed ProbeAck packets (claimed by a ChannelProber)
        self.on_probe_ack: Optional[Callable[["ProbeAckPacket"], None]] = None
        #: routed reliability acknowledgments (claimed by a reliable
        #: sender stack); matched by codepoint so the session layer does
        #: not depend on the transport-level AckPacket type
        self.on_ack: Optional[Callable[[Any], None]] = None
        #: optional FabricScheduler mounted by :meth:`attach_fabric`
        self.fabric: Optional[Any] = None
        self._fabric_backlog_limit = 0
        self._fabric_extra_ready: Optional[Callable[[], bool]] = None

    # ------------------------------------------------------------------ #

    def _make_striper(self, config: StripeConfig) -> Striper:
        active = [self.all_ports[i] for i in config.active_channels]
        if self.striper_factory is not None:
            return self.striper_factory(config, active)
        return Striper(
            TransformedLoadSharer(config.algorithm()),
            active,
            self.marker_policy,
        )

    @property
    def active_ports(self) -> List[ChannelPort]:
        return [self.all_ports[i] for i in self.config.active_channels]

    def attach_fabric(
        self,
        fabric: Any,
        *,
        downstream: Optional[Callable[[Any], None]] = None,
        backlog_limit: Optional[int] = None,
        extra_ready: Optional[Callable[[], bool]] = None,
    ) -> Any:
        """Mount a flow-layer scheduler (FQ across flows) above the striper.

        ``fabric`` is duck-typed (anything with ``bind``/``submit``/
        ``can_submit``/``pump``), normally a
        :class:`~repro.transport.fabric.FabricScheduler`.  The fabric
        drains into ``downstream`` (default: :meth:`submit`, i.e. the
        striper) but only while :meth:`_fabric_ready` holds: session
        RUNNING, striper input queue below ``backlog_limit`` (default
        ``4 × n_ports``), and any caller-supplied ``extra_ready`` gate
        (e.g. a reliable sender's window check).  Backlog therefore sits
        in per-flow queues where the DRR can arbitrate it, not in the
        shared FIFO below.
        """
        if backlog_limit is None:
            backlog_limit = 4 * len(self.all_ports)
        self.fabric = fabric
        self._fabric_backlog_limit = backlog_limit
        self._fabric_extra_ready = extra_ready
        fabric.bind(downstream or self._stripe_one, ready=self._fabric_ready)
        return fabric

    def _stripe_one(self, packet: Any) -> None:
        """Fabric downstream: one scheduled packet into the striper."""
        if self.state == self.RESETTING:
            self._pending_during_reset.append(packet)
            return
        self.striper.submit(packet)

    def _fabric_ready(self) -> bool:
        if self.state != self.RUNNING:
            return False
        if self.striper.backlog >= self._fabric_backlog_limit:
            return False
        if self._fabric_extra_ready is not None:
            return bool(self._fabric_extra_ready())
        return True

    def submit(self, packet: Any, flow_id: Optional[Any] = None) -> None:
        """Send a data packet (queued while a reset is in flight).

        With ``flow_id`` the packet enters that flow's fabric queue and is
        scheduled by weighted DRR; requires a prior :meth:`attach_fabric`.
        """
        if flow_id is not None:
            if self.fabric is None:
                raise RuntimeError(
                    "flow-addressed submit requires attach_fabric()"
                )
            self.fabric.submit(flow_id, packet)
            return
        self._stripe_one(packet)

    def can_submit(self, flow_id: Optional[Any] = None) -> bool:
        """Per-flow backpressure: False only when that flow's queue is full.

        Without ``flow_id`` the session-level queue is unbounded (epoch
        replay semantics), so this is always True.
        """
        if flow_id is None:
            return True
        if self.fabric is None:
            return False
        return self.fabric.can_submit(flow_id)

    def pump(self) -> int:
        if self.state == self.RESETTING:
            return 0
        if self.fabric is not None:
            self.fabric.pump()
        return self.striper.pump()

    # ------------------------------------------------------------------ #
    # reset / reconfiguration

    def initiate_reset(self, new_config: Optional[StripeConfig] = None) -> int:
        """Start a reset (optionally with a new configuration).

        Returns the new epoch number.  Data already in the old striper's
        input queue carries over to the new epoch; packets submitted while
        the reset is outstanding queue behind them.
        """
        if new_config is None:
            new_config = self.config
        if new_config.active_channels is None:
            new_config = StripeConfig(
                quanta=new_config.quanta,
                count_packets=new_config.count_packets,
                active_channels=tuple(range(new_config.n_channels)),
            )
        if any(i >= len(self.all_ports) for i in new_config.active_channels):
            raise ValueError("active channel index out of range")
        self.epoch += 1
        # Preserve undelivered input.
        self._pending_during_reset = list(self.striper.input_queue) + (
            self._pending_during_reset
        )
        self.config = new_config
        self.state = self.RESETTING
        self._retries = 0
        self._send_resets()
        return self.epoch

    def _send_resets(self) -> None:
        packet_config = self.config
        for index in self.config.active_channels:
            self.all_ports[index].send(
                ResetPacket(epoch=self.epoch, config=packet_config), force=True
            )
            self.reset_packets_sent += 1
        self._arm_retry()

    def _arm_retry(self) -> None:
        self._cancel_retry()
        self._retry_event = self.sim.schedule(
            self.retry_timeout, self._on_retry_timeout
        )

    def _cancel_retry(self) -> None:
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None

    def _on_retry_timeout(self) -> None:
        self._retry_event = None
        if self.state != self.RESETTING:
            return
        self._retries += 1
        if self._retries > self.max_retries:
            raise RuntimeError(
                f"reset epoch {self.epoch} unacknowledged after "
                f"{self.max_retries} retries"
            )
        self._send_resets()

    def on_control(self, packet: Any) -> None:
        """Reverse-path control input (ACKs, reset requests, probe ACKs)."""
        if getattr(packet, "codepoint", None) == Codepoint.ACK:
            if self.on_ack is not None:
                self.on_ack(packet)
        elif isinstance(packet, ResetAckPacket):
            if packet.epoch == self.epoch and self.state == self.RESETTING:
                self._complete_reset()
        elif isinstance(packet, ProbeAckPacket):
            if self.on_probe_ack is not None:
                self.on_probe_ack(packet)
        elif isinstance(packet, ResetRequestPacket):
            if self.state != self.RUNNING:
                return
            if (
                packet.exclude_channel is not None
                and self.config.is_active(packet.exclude_channel)
                and len(self.config.active_channels) > 1
            ):
                self.initiate_reset(self.config_without(packet.exclude_channel))
            else:
                self.initiate_reset()

    def _complete_reset(self) -> None:
        self._cancel_retry()
        self.state = self.RUNNING
        self.resets_completed += 1
        self.striper = self._make_striper(self.config)
        pending = self._pending_during_reset
        self._pending_during_reset = []
        for packet in pending:
            self.striper.submit(packet)
        if self.fabric is not None:
            # The new epoch's striper is empty: let the DRR refill it from
            # the per-flow queues that absorbed the reset window.
            self.fabric.pump()
        if self.on_reset_complete is not None:
            self.on_reset_complete(self.epoch)

    def config_without(self, port_index: int) -> StripeConfig:
        """The current configuration minus one (failed) channel.  O(n) in
        the rebuilt tuples, O(1) in lookups — no per-channel scan."""
        position = self.config.position_of(port_index)
        if position is None:
            raise ValueError(f"channel {port_index} is not active")
        if len(self.config.active_channels) <= 1:
            raise ValueError("cannot drop the last active channel")
        channels = self.config.active_channels
        quanta = self.config.quanta
        return StripeConfig(
            quanta=quanta[:position] + quanta[position + 1 :],
            count_packets=self.config.count_packets,
            active_channels=channels[:position] + channels[position + 1 :],
        )

    def config_with(
        self, port_index: int, quantum: Optional[float] = None
    ) -> StripeConfig:
        """The current configuration plus one (recovered) channel.

        ``quantum`` defaults to the mean of the active quanta — a neutral
        share for a channel whose pre-failure quantum is unknown.
        """
        if self.config.is_active(port_index):
            raise ValueError(f"channel {port_index} is already active")
        if not 0 <= port_index < len(self.all_ports):
            raise ValueError(f"channel {port_index} out of range")
        if quantum is None:
            quantum = sum(self.config.quanta) / len(self.config.quanta)
        channels = self.config.active_channels
        quanta = self.config.quanta
        # active_channels is sorted by construction, so the insertion
        # point comes from a binary search rather than a re-sort.
        position = bisect_left(channels, port_index)
        return StripeConfig(
            quanta=quanta[:position] + (float(quantum),) + quanta[position:],
            count_packets=self.config.count_packets,
            active_channels=(
                channels[:position] + (port_index,) + channels[position:]
            ),
        )

    def exclude_channel(self, port_index: int) -> bool:
        """Drop a channel via a reconfiguration reset (stall detection path).

        Returns True if a reset was initiated; False when the request is
        not actionable right now (already resetting, channel not active, or
        it is the last active channel).
        """
        if self.state != self.RUNNING:
            return False
        if not self.config.is_active(port_index):
            return False
        if len(self.config.active_channels) <= 1:
            return False
        self.initiate_reset(self.config_without(port_index))
        return True

    # ------------------------------------------------------------------ #
    # checkpoints (self-stabilization support)

    def checkpoint_round(self) -> int:
        """The sender's current global round (stamped onto markers by the
        session wiring; see LocalChecker)."""
        kernel = self.striper._kernel
        return kernel.round_number if kernel is not None else 0


class StripeReceiverSession:
    """Owns the receiver across resets; demuxes in-band control packets.

    Args:
        sim: event engine.
        n_ports: size of the full channel set.
        config: initial configuration (must match the sender's).
        send_control: reverse-path transmit function for ACKs/requests.
        on_deliver: in-order data callback.
        checker: optional :class:`LocalChecker` for self-stabilization.
        receiver_factory: optional ``(config, on_deliver) -> receiver``
            override for each epoch's reception engine (anything with
            ``push(channel, packet)``) — the receiver half of non-SRR
            disciplines, e.g.
            :class:`~repro.core.resequencer.DirectReception` for
            marker-free schemes.  Default builds the paper's
            simulated-sender :class:`~repro.core.markers.SRRReceiver`.
    """

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        config: StripeConfig,
        send_control: Callable[[Any], None],
        on_deliver: Optional[Callable[[Any], None]] = None,
        checker: Optional["LocalChecker"] = None,
        receiver_factory: Optional[
            Callable[[StripeConfig, Callable[[Any], None]], Any]
        ] = None,
    ) -> None:
        if config.active_channels is None:
            config = StripeConfig(
                quanta=config.quanta,
                count_packets=config.count_packets,
                active_channels=tuple(range(config.n_channels)),
            )
        self.sim = sim
        self.n_ports = n_ports
        self.send_control = send_control
        self.on_deliver = on_deliver
        self.checker = checker
        if checker is not None:
            checker.attach(self)
        self.epoch = 0
        self.config = config
        self.receiver_factory = receiver_factory
        self.receiver = self._make_receiver(config)
        #: epoch each physical channel's stream is currently in
        self._channel_epoch = [0] * n_ports
        self.reset_discards = 0
        self.resets_seen = 0
        self.acks_sent = 0
        #: optional ChannelLifecycleManager (set by its ``attach``): gates
        #: probe acknowledgements behind hold-down and revival thresholds
        self.lifecycle: Optional[Any] = None
        self.probes_seen = 0
        self.probe_acks_sent = 0

    def _make_receiver(self, config: StripeConfig) -> Any:
        if self.receiver_factory is not None:
            return self.receiver_factory(config, self._deliver)
        receiver = SRRReceiver(
            config.algorithm(),
            on_deliver=self._deliver,
            clock=lambda: self.sim.now,
        )
        # Epoch boundary: both ends agree on the fresh kernel state, so the
        # receiver adopts the sender's epoch-initial snapshot wholesale.
        receiver.adopt_snapshot(config.initial_snapshot())
        return receiver

    def _deliver(self, packet: Any) -> None:
        if self.on_deliver is not None:
            self.on_deliver(packet)

    # ------------------------------------------------------------------ #

    def push(self, port_index: int, packet: Any) -> None:
        """Physical arrival on a channel (by *original* port index)."""
        codepoint = getattr(packet, "codepoint", Codepoint.DATA)
        if codepoint == CODEPOINT_RESET:
            self._on_reset(port_index, packet)
            return
        if codepoint == CODEPOINT_PROBE:
            # Liveness probes are not stream data: they are meaningful on
            # excluded channels and across epochs, so they bypass both the
            # epoch gate and the active-channel gate.
            self._on_probe(port_index, packet)
            return
        if self._channel_epoch[port_index] != self.epoch:
            # Pre-reset stragglers (or packets racing ahead of this
            # channel's RESET): not part of the current stream.
            self.reset_discards += 1
            return
        channel = self.config.position_of(port_index)
        if channel is None:
            self.reset_discards += 1
            return
        if self.checker is not None and isinstance(packet, MarkerPacket):
            self.checker.observe_marker(packet)
        self.receiver.push(channel, packet)

    def _on_reset(self, port_index: int, packet: ResetPacket) -> None:
        if packet.epoch < self.epoch:
            return  # stale duplicate
        if packet.epoch > self.epoch:
            # First RESET of a new epoch: reinitialize wholesale.
            self.epoch = packet.epoch
            self.config = packet.config
            if self.config.active_channels is None:
                self.config = StripeConfig(
                    quanta=packet.config.quanta,
                    count_packets=packet.config.count_packets,
                    active_channels=tuple(range(packet.config.n_channels)),
                )
            # Marker-free reception engines hold no per-channel buffers
            # (delivery at arrival), so there is nothing to discard.
            discarded = sum(
                len(b) for b in getattr(self.receiver, "buffers", ())
            )
            self.reset_discards += discarded
            self.receiver = self._make_receiver(self.config)
            self.resets_seen += 1
            if self.checker is not None:
                self.checker.on_reset(self.epoch)
            if self.lifecycle is not None:
                # A rejoin RESET re-admits previously failed channels; the
                # lifecycle manager must rearm its silence watch for them.
                self.lifecycle.note_rejoin(self.config.active_channels)
        # Mark this channel as switched (idempotent for retries).
        self._channel_epoch[port_index] = packet.epoch
        if all(
            self._channel_epoch[i] == self.epoch
            for i in self.config.active_channels
        ):
            self.acks_sent += 1
            self.send_control(ResetAckPacket(epoch=self.epoch))

    def _on_probe(self, port_index: int, packet: "ProbePacket") -> None:
        self.probes_seen += 1
        ack = True
        if self.lifecycle is not None:
            ack = self.lifecycle.note_probe(port_index)
        if ack:
            self.probe_acks_sent += 1
            self.send_control(
                ProbeAckPacket(channel=port_index, seq=packet.seq)
            )

    def request_reset(self, reason: str) -> None:
        """Ask the sender for a reset (reboot, detected corruption)."""
        self.send_control(ResetRequestPacket(reason=reason))
