"""Session control: reset, reconfiguration, and self-stabilization.

Section 5 of the paper sketches what this module implements in full:

    "It is also possible to make the marker algorithm self-stabilizing
    (i.e., robust against any error in the state) by periodically running
    a snapshot [CL85] and then doing a reset [Var93].  We deal with sender
    or receiver node crashes by doing a reset."

Three pieces:

* **Reset protocol** — an epoch-numbered, per-channel in-band RESET
  exchange that reinitializes both ends of a striped channel group.  A
  RESET packet travels down every channel; it is the *separator* between
  the old and new packet streams, so no data packet needs tagging.  The
  receiver flushes (discards) pre-reset data still in flight, installs the
  configuration carried by the RESET (quanta — so reconfiguration is just
  reset-with-new-parameters), and acknowledges on the reverse control
  path.  Lost RESETs/ACKs are retried on a timer.

* **Reconfiguration** — because the RESET carries the striping
  configuration, changing quanta (capacity re-estimation) or dropping a
  dead channel is a single reset round trip: both ends atomically agree on
  the new `(channels, quanta)` at the epoch boundary.

* **Self-stabilization by local checking** — in the spirit of [Var93]
  (local checking and correction): the sender periodically stamps markers
  as *checkpoints* carrying its global round number.  In-flight data is
  bounded (by channel queues / credits), so a synchronized receiver's
  round lags the sender's by at most a computable window.  A checkpoint
  whose round is outside that window proves the receiver's state is
  corrupt (bit flip, bug, crash-restore) — correction is a reset request.
  Ordinary marker adoption already repairs per-channel ``(r, d)`` drift;
  the checkpoint check catches the global-round corruption that markers
  alone cannot (a receiver whose ``G`` runs far ahead never skips, so C1
  silently dies).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.kernel import SRRKernel
from repro.core.markers import SRRReceiver
from repro.core.packet import Codepoint, MarkerPacket
from repro.core.srr import SRR, SRRState
from repro.core.striper import ChannelPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer
from repro.sim.engine import Event, Simulator

_control_ids = itertools.count(1)

CODEPOINT_RESET = "reset"
CODEPOINT_RESET_ACK = "reset_ack"
CODEPOINT_RESET_REQUEST = "reset_request"
CODEPOINT_PROBE = "probe"
CODEPOINT_PROBE_ACK = "probe_ack"


@dataclass(frozen=True)
class StripeConfig:
    """The striping parameters both ends must agree on."""

    quanta: Tuple[float, ...]
    count_packets: bool = False
    #: indices into the *original* port list that are active this epoch
    active_channels: Optional[Tuple[int, ...]] = None

    def algorithm(self) -> SRR:
        return SRR(list(self.quanta), count_packets=self.count_packets)

    def kernel(self) -> SRRKernel:
        """A fresh scheduler kernel at this configuration's initial state."""
        return SRRKernel(self.algorithm())

    def initial_snapshot(self) -> SRRState:
        """The epoch-initial kernel state both ends install at a reset."""
        return self.algorithm().initial_state()

    @property
    def n_channels(self) -> int:
        return len(self.quanta)


@dataclass
class ResetPacket:
    """In-band epoch separator, sent on every active channel."""

    epoch: int
    config: StripeConfig
    size: int = 40
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESET

    def __repr__(self) -> str:
        return f"Reset(epoch={self.epoch}, {self.config.n_channels}ch)"


@dataclass
class ResetAckPacket:
    """Reverse-path acknowledgement: all channels switched to ``epoch``."""

    epoch: int
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESET_ACK


@dataclass
class ResetRequestPacket:
    """Reverse-path plea from the receiver (reboot, corruption, dead link).

    ``exclude_channel`` (an *original* port index) asks the sender to
    reconfigure without that channel — the link-failure path.
    """

    reason: str
    exclude_channel: Optional[int] = None
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_RESET_REQUEST


@dataclass
class ProbePacket:
    """Forward-path liveness probe on an excluded (possibly dead) channel.

    ``channel`` is the *original* port index being probed; ``seq`` lets
    the prober tell fresh acknowledgements from stale ones.
    """

    channel: int
    seq: int
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_PROBE


@dataclass
class ProbeAckPacket:
    """Reverse-path acknowledgement: the probed channel delivered again."""

    channel: int
    seq: int
    size: int = 16
    uid: int = field(default_factory=lambda: next(_control_ids))
    codepoint: str = CODEPOINT_PROBE_ACK


class StripeSenderSession:
    """Owns the sender striper across resets and reconfigurations.

    Args:
        sim: event engine (for retry timers).
        ports: the full set of channel ports (a reset may activate a
            subset).
        config: initial striping configuration.
        marker_policy: marker policy applied to every epoch's striper.
        checkpoint_every_rounds: stamp a sender-round checkpoint onto the
            markers this often (0 disables; see LocalChecker).
        retry_timeout: seconds before an unacked RESET is retransmitted.

    Upper layers call :meth:`submit`; during a reset, packets queue and are
    replayed into the new epoch's striper.
    """

    RUNNING = "running"
    RESETTING = "resetting"

    def __init__(
        self,
        sim: Simulator,
        ports: Sequence[ChannelPort],
        config: StripeConfig,
        marker_policy: Optional[MarkerPolicy] = None,
        retry_timeout: float = 0.25,
        max_retries: int = 20,
    ) -> None:
        if config.active_channels is None:
            config = StripeConfig(
                quanta=config.quanta,
                count_packets=config.count_packets,
                active_channels=tuple(range(len(ports)))[: config.n_channels],
            )
        if len(config.active_channels) != config.n_channels:
            raise ValueError("active_channels must match quanta length")
        self.sim = sim
        self.all_ports = list(ports)
        self.marker_policy = marker_policy
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.epoch = 0
        self.config = config
        self.state = self.RUNNING
        self.striper = self._make_striper(config)
        self._pending_during_reset: List[Any] = []
        self._retry_event: Optional[Event] = None
        self._retries = 0
        self.resets_completed = 0
        self.reset_packets_sent = 0
        self.on_reset_complete: Optional[Callable[[int], None]] = None
        #: routed ProbeAck packets (claimed by a ChannelProber)
        self.on_probe_ack: Optional[Callable[["ProbeAckPacket"], None]] = None
        #: routed reliability acknowledgments (claimed by a reliable
        #: sender stack); matched by codepoint so the session layer does
        #: not depend on the transport-level AckPacket type
        self.on_ack: Optional[Callable[[Any], None]] = None

    # ------------------------------------------------------------------ #

    def _make_striper(self, config: StripeConfig) -> Striper:
        active = [self.all_ports[i] for i in config.active_channels]
        return Striper(
            TransformedLoadSharer(config.algorithm()),
            active,
            self.marker_policy,
        )

    @property
    def active_ports(self) -> List[ChannelPort]:
        return [self.all_ports[i] for i in self.config.active_channels]

    def submit(self, packet: Any) -> None:
        """Send a data packet (queued while a reset is in flight)."""
        if self.state == self.RESETTING:
            self._pending_during_reset.append(packet)
            return
        self.striper.submit(packet)

    def pump(self) -> int:
        if self.state == self.RESETTING:
            return 0
        return self.striper.pump()

    # ------------------------------------------------------------------ #
    # reset / reconfiguration

    def initiate_reset(self, new_config: Optional[StripeConfig] = None) -> int:
        """Start a reset (optionally with a new configuration).

        Returns the new epoch number.  Data already in the old striper's
        input queue carries over to the new epoch; packets submitted while
        the reset is outstanding queue behind them.
        """
        if new_config is None:
            new_config = self.config
        if new_config.active_channels is None:
            new_config = StripeConfig(
                quanta=new_config.quanta,
                count_packets=new_config.count_packets,
                active_channels=tuple(range(new_config.n_channels)),
            )
        if any(i >= len(self.all_ports) for i in new_config.active_channels):
            raise ValueError("active channel index out of range")
        self.epoch += 1
        # Preserve undelivered input.
        self._pending_during_reset = list(self.striper.input_queue) + (
            self._pending_during_reset
        )
        self.config = new_config
        self.state = self.RESETTING
        self._retries = 0
        self._send_resets()
        return self.epoch

    def _send_resets(self) -> None:
        packet_config = self.config
        for index in self.config.active_channels:
            self.all_ports[index].send(
                ResetPacket(epoch=self.epoch, config=packet_config), force=True
            )
            self.reset_packets_sent += 1
        self._arm_retry()

    def _arm_retry(self) -> None:
        self._cancel_retry()
        self._retry_event = self.sim.schedule(
            self.retry_timeout, self._on_retry_timeout
        )

    def _cancel_retry(self) -> None:
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None

    def _on_retry_timeout(self) -> None:
        self._retry_event = None
        if self.state != self.RESETTING:
            return
        self._retries += 1
        if self._retries > self.max_retries:
            raise RuntimeError(
                f"reset epoch {self.epoch} unacknowledged after "
                f"{self.max_retries} retries"
            )
        self._send_resets()

    def on_control(self, packet: Any) -> None:
        """Reverse-path control input (ACKs, reset requests, probe ACKs)."""
        if getattr(packet, "codepoint", None) == Codepoint.ACK:
            if self.on_ack is not None:
                self.on_ack(packet)
        elif isinstance(packet, ResetAckPacket):
            if packet.epoch == self.epoch and self.state == self.RESETTING:
                self._complete_reset()
        elif isinstance(packet, ProbeAckPacket):
            if self.on_probe_ack is not None:
                self.on_probe_ack(packet)
        elif isinstance(packet, ResetRequestPacket):
            if self.state != self.RUNNING:
                return
            if (
                packet.exclude_channel is not None
                and packet.exclude_channel in self.config.active_channels
                and len(self.config.active_channels) > 1
            ):
                self.initiate_reset(self.config_without(packet.exclude_channel))
            else:
                self.initiate_reset()

    def _complete_reset(self) -> None:
        self._cancel_retry()
        self.state = self.RUNNING
        self.resets_completed += 1
        self.striper = self._make_striper(self.config)
        pending = self._pending_during_reset
        self._pending_during_reset = []
        for packet in pending:
            self.striper.submit(packet)
        if self.on_reset_complete is not None:
            self.on_reset_complete(self.epoch)

    def config_without(self, port_index: int) -> StripeConfig:
        """The current configuration minus one (failed) channel."""
        if port_index not in self.config.active_channels:
            raise ValueError(f"channel {port_index} is not active")
        if len(self.config.active_channels) <= 1:
            raise ValueError("cannot drop the last active channel")
        keep = [
            (channel, quantum)
            for channel, quantum in zip(
                self.config.active_channels, self.config.quanta
            )
            if channel != port_index
        ]
        return StripeConfig(
            quanta=tuple(q for _, q in keep),
            count_packets=self.config.count_packets,
            active_channels=tuple(c for c, _ in keep),
        )

    def config_with(
        self, port_index: int, quantum: Optional[float] = None
    ) -> StripeConfig:
        """The current configuration plus one (recovered) channel.

        ``quantum`` defaults to the mean of the active quanta — a neutral
        share for a channel whose pre-failure quantum is unknown.
        """
        if port_index in self.config.active_channels:
            raise ValueError(f"channel {port_index} is already active")
        if not 0 <= port_index < len(self.all_ports):
            raise ValueError(f"channel {port_index} out of range")
        if quantum is None:
            quantum = sum(self.config.quanta) / len(self.config.quanta)
        merged = sorted(
            zip(
                self.config.active_channels + (port_index,),
                self.config.quanta + (float(quantum),),
            )
        )
        return StripeConfig(
            quanta=tuple(q for _, q in merged),
            count_packets=self.config.count_packets,
            active_channels=tuple(c for c, _ in merged),
        )

    def exclude_channel(self, port_index: int) -> bool:
        """Drop a channel via a reconfiguration reset (stall detection path).

        Returns True if a reset was initiated; False when the request is
        not actionable right now (already resetting, channel not active, or
        it is the last active channel).
        """
        if self.state != self.RUNNING:
            return False
        if port_index not in self.config.active_channels:
            return False
        if len(self.config.active_channels) <= 1:
            return False
        self.initiate_reset(self.config_without(port_index))
        return True

    # ------------------------------------------------------------------ #
    # checkpoints (self-stabilization support)

    def checkpoint_round(self) -> int:
        """The sender's current global round (stamped onto markers by the
        session wiring; see LocalChecker)."""
        kernel = self.striper._kernel
        return kernel.round_number if kernel is not None else 0


class StripeReceiverSession:
    """Owns the receiver across resets; demuxes in-band control packets.

    Args:
        sim: event engine.
        n_ports: size of the full channel set.
        config: initial configuration (must match the sender's).
        send_control: reverse-path transmit function for ACKs/requests.
        on_deliver: in-order data callback.
        checker: optional :class:`LocalChecker` for self-stabilization.
    """

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        config: StripeConfig,
        send_control: Callable[[Any], None],
        on_deliver: Optional[Callable[[Any], None]] = None,
        checker: Optional["LocalChecker"] = None,
    ) -> None:
        if config.active_channels is None:
            config = StripeConfig(
                quanta=config.quanta,
                count_packets=config.count_packets,
                active_channels=tuple(range(config.n_channels)),
            )
        self.sim = sim
        self.n_ports = n_ports
        self.send_control = send_control
        self.on_deliver = on_deliver
        self.checker = checker
        if checker is not None:
            checker.attach(self)
        self.epoch = 0
        self.config = config
        self.receiver = self._make_receiver(config)
        #: epoch each physical channel's stream is currently in
        self._channel_epoch = [0] * n_ports
        self.reset_discards = 0
        self.resets_seen = 0
        self.acks_sent = 0
        #: optional ChannelLifecycleManager (set by its ``attach``): gates
        #: probe acknowledgements behind hold-down and revival thresholds
        self.lifecycle: Optional[Any] = None
        self.probes_seen = 0
        self.probe_acks_sent = 0

    def _make_receiver(self, config: StripeConfig) -> SRRReceiver:
        receiver = SRRReceiver(
            config.algorithm(),
            on_deliver=self._deliver,
            clock=lambda: self.sim.now,
        )
        # Epoch boundary: both ends agree on the fresh kernel state, so the
        # receiver adopts the sender's epoch-initial snapshot wholesale.
        receiver.adopt_snapshot(config.initial_snapshot())
        return receiver

    def _deliver(self, packet: Any) -> None:
        if self.on_deliver is not None:
            self.on_deliver(packet)

    # ------------------------------------------------------------------ #

    def push(self, port_index: int, packet: Any) -> None:
        """Physical arrival on a channel (by *original* port index)."""
        codepoint = getattr(packet, "codepoint", Codepoint.DATA)
        if codepoint == CODEPOINT_RESET:
            self._on_reset(port_index, packet)
            return
        if codepoint == CODEPOINT_PROBE:
            # Liveness probes are not stream data: they are meaningful on
            # excluded channels and across epochs, so they bypass both the
            # epoch gate and the active-channel gate.
            self._on_probe(port_index, packet)
            return
        if self._channel_epoch[port_index] != self.epoch:
            # Pre-reset stragglers (or packets racing ahead of this
            # channel's RESET): not part of the current stream.
            self.reset_discards += 1
            return
        try:
            channel = self.config.active_channels.index(port_index)
        except ValueError:
            self.reset_discards += 1
            return
        if self.checker is not None and isinstance(packet, MarkerPacket):
            self.checker.observe_marker(packet)
        self.receiver.push(channel, packet)

    def _on_reset(self, port_index: int, packet: ResetPacket) -> None:
        if packet.epoch < self.epoch:
            return  # stale duplicate
        if packet.epoch > self.epoch:
            # First RESET of a new epoch: reinitialize wholesale.
            self.epoch = packet.epoch
            self.config = packet.config
            if self.config.active_channels is None:
                self.config = StripeConfig(
                    quanta=packet.config.quanta,
                    count_packets=packet.config.count_packets,
                    active_channels=tuple(range(packet.config.n_channels)),
                )
            discarded = sum(len(b) for b in self.receiver.buffers)
            self.reset_discards += discarded
            self.receiver = self._make_receiver(self.config)
            self.resets_seen += 1
            if self.checker is not None:
                self.checker.on_reset(self.epoch)
            if self.lifecycle is not None:
                # A rejoin RESET re-admits previously failed channels; the
                # lifecycle manager must rearm its silence watch for them.
                self.lifecycle.note_rejoin(self.config.active_channels)
        # Mark this channel as switched (idempotent for retries).
        self._channel_epoch[port_index] = packet.epoch
        if all(
            self._channel_epoch[i] == self.epoch
            for i in self.config.active_channels
        ):
            self.acks_sent += 1
            self.send_control(ResetAckPacket(epoch=self.epoch))

    def _on_probe(self, port_index: int, packet: "ProbePacket") -> None:
        self.probes_seen += 1
        ack = True
        if self.lifecycle is not None:
            ack = self.lifecycle.note_probe(port_index)
        if ack:
            self.probe_acks_sent += 1
            self.send_control(
                ProbeAckPacket(channel=port_index, seq=packet.seq)
            )

    def request_reset(self, reason: str) -> None:
        """Ask the sender for a reset (reboot, detected corruption)."""
        self.send_control(ResetRequestPacket(reason=reason))


class ChannelProber:
    """Sender-side revival: probe excluded channels, rejoin on an ACK.

    The receiver cannot transmit on a failed *forward* channel, so revival
    detection is the sender's job.  Every channel excluded from the bundle
    is probed with exponentially backed-off :class:`ProbePacket` sends
    (forced past the queue limit, so a wedged queue cannot mask a probe).
    A probe that gets through elicits a :class:`ProbeAckPacket` on the
    reverse control path — gated by the receiver's lifecycle manager's
    hold-down — and the prober then re-admits the channel via a
    reconfiguration RESET carrying its pre-failure quantum: the paper's
    reset machinery doubles as the rejoin path, so the revived channel
    re-enters with fresh epoch-initial striping state.

    Flap damping mirrors the receiver's: a channel that fails again within
    ``flap_window`` seconds of rejoining must sit out a hold-down that
    doubles per flap (``flap_penalty``, ``flap_factor``, capped at
    ``max_hold_down``) before the next rejoin.
    """

    def __init__(
        self,
        sim: Simulator,
        session: StripeSenderSession,
        *,
        initial_interval: float = 0.05,
        backoff: float = 2.0,
        max_interval: float = 1.0,
        max_probes: int = 200,
        min_hold_down: float = 0.0,
        flap_penalty: float = 0.2,
        flap_window: float = 2.0,
        flap_factor: float = 2.0,
        max_hold_down: float = 4.0,
    ) -> None:
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        self.sim = sim
        self.session = session
        self.initial_interval = initial_interval
        self.backoff = backoff
        self.max_interval = max_interval
        self.max_probes = max_probes
        self.min_hold_down = min_hold_down
        self.flap_penalty = flap_penalty
        self.flap_window = flap_window
        self.flap_factor = flap_factor
        self.max_hold_down = max_hold_down
        self.probes_sent = 0
        self.rejoins = 0
        #: channels given up on after ``max_probes`` unanswered probes
        self.abandoned: List[int] = []
        self._probing: dict = {}
        self._quantum: dict = {}
        self._hold_down: dict = {}
        self._down_at: dict = {}
        self._rejoined_at: dict = {}
        self._probe_seq = 0
        session.on_probe_ack = self._on_probe_ack
        self._chained_on_reset = session.on_reset_complete
        session.on_reset_complete = self._on_reset_complete
        self._sync()

    @property
    def probing_channels(self) -> List[int]:
        """Original port indices currently under probe, sorted."""
        return sorted(self._probing)

    def hold_down(self, channel: int) -> float:
        """Current flap-damped rejoin hold-down of ``channel``."""
        return self._hold_down.get(channel, self.min_hold_down)

    # ------------------------------------------------------------------ #

    def _on_reset_complete(self, epoch: int) -> None:
        if self._chained_on_reset is not None:
            self._chained_on_reset(epoch)
        self._sync()

    def _sync(self) -> None:
        """Reconcile probing state with the session's active-channel set."""
        config = self.session.config
        active = set(config.active_channels)
        for channel, quantum in zip(config.active_channels, config.quanta):
            # Remember each channel's quantum while it is healthy, so a
            # later rejoin restores its pre-failure share.
            self._quantum[channel] = quantum
        for channel in range(len(self.session.all_ports)):
            if channel in active:
                if channel in self._probing:
                    self._stop(channel)
            elif channel not in self._probing:
                self._start(channel)

    def _start(self, channel: int) -> None:
        now = self.sim.now
        rejoined = self._rejoined_at.get(channel)
        if rejoined is not None and now - rejoined < self.flap_window:
            previous = self._hold_down.get(channel, 0.0)
            self._hold_down[channel] = min(
                max(previous * self.flap_factor, self.flap_penalty),
                self.max_hold_down,
            )
        else:
            self._hold_down[channel] = self.min_hold_down
        self._down_at[channel] = now
        state = {"interval": self.initial_interval, "sent": 0, "event": None}
        self._probing[channel] = state
        state["event"] = self.sim.schedule(
            state["interval"], self._probe, channel
        )

    def _stop(self, channel: int) -> None:
        state = self._probing.pop(channel, None)
        if state is not None and state["event"] is not None:
            state["event"].cancel()

    def _probe(self, channel: int) -> None:
        state = self._probing.get(channel)
        if state is None:
            return
        state["event"] = None
        if state["sent"] >= self.max_probes:
            self.abandoned.append(channel)
            del self._probing[channel]
            return
        state["sent"] += 1
        self.probes_sent += 1
        self._probe_seq += 1
        self.session.all_ports[channel].send(
            ProbePacket(channel=channel, seq=self._probe_seq), force=True
        )
        state["interval"] = min(
            state["interval"] * self.backoff, self.max_interval
        )
        state["event"] = self.sim.schedule(
            state["interval"], self._probe, channel
        )

    def _on_probe_ack(self, packet: ProbeAckPacket) -> None:
        channel = packet.channel
        if channel not in self._probing:
            return
        now = self.sim.now
        if now - self._down_at[channel] < self._hold_down[channel]:
            return  # flap-damped: not willing to rejoin yet
        session = self.session
        if session.state != session.RUNNING:
            return  # a reset is in flight; _sync re-evaluates after it
        if channel in session.config.active_channels:
            self._stop(channel)
            return
        self._stop(channel)
        self.rejoins += 1
        self._rejoined_at[channel] = now
        session.initiate_reset(
            session.config_with(channel, self._quantum.get(channel))
        )


class LocalChecker:
    """Self-stabilization by local checking ([Var93]) and correction.

    The sender's markers each carry the sender round number ``r`` for the
    channel they ride; with bounded in-flight data the receiver's global
    round ``G`` must satisfy ``r - window <= G <= r + window`` whenever a
    marker is *observed on arrival* (no blocking involved).  A violation
    proves state corruption; the correction is a reset request.

    Args:
        window_rounds: tolerated |marker round − receiver round| slack;
            choose ≥ the worst-case in-flight rounds (channel queue depth /
            packets-per-round) plus the marker interval.
    """

    def __init__(self, window_rounds: int = 50) -> None:
        if window_rounds < 1:
            raise ValueError("window must be >= 1 round")
        self.window_rounds = window_rounds
        self.session: Optional[StripeReceiverSession] = None
        self.violations = 0
        self.resets_requested = 0
        self._requested_this_epoch = False

    def attach(self, session: StripeReceiverSession) -> None:
        self.session = session

    def on_reset(self, epoch: int) -> None:
        self._requested_this_epoch = False

    def observe_marker(self, marker: MarkerPacket) -> None:
        assert self.session is not None
        receiver_round = self.session.receiver.round_number
        if abs(marker.round_number - receiver_round) > self.window_rounds:
            self.violations += 1
            if not self._requested_this_epoch:
                self._requested_this_epoch = True
                self.resets_requested += 1
                self.session.request_reset(
                    f"round divergence {marker.round_number} vs "
                    f"{receiver_round}"
                )
