"""Sprinklers: randomized variable-size striping without markers.

The marker-free counterpoint to the paper's SRR+markers design
(arXiv:1407.0006): instead of striping the aggregate and re-deriving
order at the receiver, hash each *flow* to its own **stripe** — an
interleaved subset of channels sized to the flow's measured rate — and
round-robin the flow's packets inside that stripe only.

Why this needs no receiver machinery at all:

* A mouse flow (rate below one channel's fair share) gets stripe size 1:
  per-flow FIFO is free, exactly like address hashing.
* An elephant flow gets a stripe just wide enough that its per-channel
  load stays below each member channel's capacity share.  On stable
  equal channels with equal-size packets, round-robin across identical
  FIFO channels preserves the flow's submission order end to end — the
  in-order **proof obligations** checked as property tests in
  ``tests/core/test_sprinklers.py`` and
  ``tests/properties/test_endpoint_equivalence.py``.
* Stripe *placement* is randomized by flow hash (aligned to the stripe
  size), so elephants land on disjoint or evenly overlapping channel
  sets and aggregate load spreads without coordination.

The price, relative to SRR: load sharing is only as good as the flow
population (one flow's stripe can be the whole bundle, but two mice
hashed to one channel still collide), and a stripe *resize* — triggered
when a flow's measured rate crosses the next power of two, with
hysteresis — momentarily relaxes the in-order guarantee, exactly like
the original Sprinklers design.  Resizes happen only at a flow's round
boundary and are counted in :attr:`SprinklersDiscipline.resizes`.

The discipline is per-flow by construction, so the PR-6 fabric's
``FlowTable`` flows map directly onto stripes (the fabric stamps
``packet.flow``), and ``marker_free = True`` gives it the ``"direct"``
receiver mode: no resequencer, no marker codec, structurally zero
receiver buffering (:class:`~repro.core.resequencer.DirectReception`).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.baselines.address_hash import stable_hash
from repro.core.cfq import Capabilities
from repro.core.transform import LoadSharer

__all__ = ["FlowRateEstimator", "SprinklersDiscipline", "stripe_size_for"]

_LN2 = math.log(2.0)


def stripe_size_for(share: float, n_channels: int) -> int:
    """Stripe width for a flow carrying ``share`` of the traffic.

    The smallest power of two ``k`` with ``share * n_channels <= k`` —
    i.e. just wide enough that the flow loads each member channel no more
    than a fair channel share — capped at the bundle width (a saturating
    flow stripes the whole bundle even when ``n_channels`` is not a power
    of two).
    """
    if n_channels < 1:
        raise ValueError("need at least one channel")
    need = share * n_channels
    if need <= 1.0:
        return 1
    k = 1 << max(0, math.ceil(math.log2(need)))
    return min(k, n_channels)


class FlowRateEstimator:
    """Per-flow traffic-share estimation with lazily decayed byte counters.

    Deterministic and clockless by default: "time" is cumulative bytes
    through the striper, so the estimate depends only on the traffic
    sequence (property tests stay reproducible; an optional wall ``clock``
    can replace it for rate-in-seconds estimation).  Each flow keeps an
    exponentially decayed byte counter with half-life ``window_bytes`` of
    global traffic, decayed lazily at its own updates — updating a flow is
    O(1) regardless of how many flows exist, which is what makes the
    10k-flow scalability runs affordable.

    For a flow receiving a steady fraction ``p`` of the traffic, the
    decayed counter converges to ``p * window / ln 2`` — :meth:`share`
    inverts that, clamped to [0, 1].
    """

    def __init__(
        self,
        window_bytes: float = 512 * 1024,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if window_bytes <= 0:
            raise ValueError("window_bytes must be positive")
        self.window = float(window_bytes)
        self.clock = clock
        #: cumulative bytes observed across all flows (the decay clock)
        self.total_bytes = 0.0

    def observe(self, state: List[float], size: int) -> None:
        """Fold one ``size``-byte packet of a flow into its ``state``.

        ``state`` is the flow's two-slot record ``[decayed_bytes,
        total_at_last_update]``, created by :meth:`new_state`.
        """
        self.total_bytes += size
        elapsed = self.total_bytes - state[1]
        if elapsed > 0:
            state[0] *= 0.5 ** (elapsed / self.window)
        state[0] += size
        state[1] = self.total_bytes

    def new_state(self, share: float = 0.0) -> List[float]:
        """Fresh flow state, optionally seeded with a prior ``share``.

        Seeding sets the decayed counter to the steady-state value a flow
        at that share would hold, so the estimate *starts* at the prior
        and converges toward the measured rate instead of ramping up from
        zero (which would immediately contradict a provisioned stripe).
        """
        return [share * self.window / _LN2, self.total_bytes]

    def share(self, state: List[float]) -> float:
        """The flow's estimated fraction of current traffic, in [0, 1]."""
        elapsed = self.total_bytes - state[1]
        decayed = state[0]
        if elapsed > 0:
            decayed *= 0.5 ** (elapsed / self.window)
        share = decayed * _LN2 / self.window
        return share if share < 1.0 else 1.0

    def reset(self) -> None:
        self.total_bytes = 0.0


class _FlowStripe:
    """One flow's striping state: member channels + intra-stripe SRR."""

    __slots__ = (
        "size",
        "channels",
        "cursor",
        "current",
        "credit",
        "rate_state",
        "packets",
    )

    def __init__(
        self,
        channels: List[int],
        rate_state: List[float],
        initial_credit: float,
    ) -> None:
        self.size = len(channels)
        self.channels = channels
        self.cursor = 0
        #: the committed next channel — what :meth:`choose` returns;
        #: advanced only by ``notify_sent`` (two-phase purity).
        self.current = channels[0]
        self.credit = initial_credit
        self.rate_state = rate_state
        self.packets = 0


class SprinklersDiscipline(LoadSharer):
    """Hash each flow to a rate-sized stripe; round-robin within it.

    Args:
        n: channel count.
        weights: per-channel relative capacities (default equal).  Within
            a stripe, packets interleave in proportion to member weights
            (a per-flow surplus-round-robin over the stripe), so unequal
            channels fill evenly.
        resize_interval: re-evaluate a flow's stripe size every this many
            of its packets (at its next round boundary).
        hysteresis: shrink a stripe only when the rate-derived size is
            smaller by at least this factor; grows apply immediately
            (overload hurts more than a briefly-too-wide stripe).
        window_bytes: rate-estimator half-life, in global traffic bytes.
        initial_share: assumed traffic share of a flow the estimator has
            not seen yet (default 0: new flows start as width-1 mice and
            grow as their rate is measured).  A flow whose stripe *grows*
            mid-stream pays a reorder transient — packets queued on the
            old, narrower stripe are overtaken by packets on the fresh
            members — so callers striping a known-heavy aggregate (the
            flowless closed-loop harness, a single bulk transfer) set
            ``initial_share=1.0`` to provision the full bundle up front
            and never resize.
        clock: optional wall clock for the rate estimator.

    ``choose`` is pure (the committed channel is advanced only by
    ``notify_sent``), so the striper's two-phase backpressure protocol —
    wait on the chosen channel, never reorder around it — holds exactly
    as for the causal policies.
    """

    capabilities = Capabilities(
        fifo_delivery="per_flow_fifo",
        load_sharing="good",
        environment="Flow-aware endpoints (rate-sized stripes)",
    )
    simulatable = False
    #: no marker stream, no resequencer: receiver mode ``"direct"``
    marker_free = True

    def __init__(
        self,
        n: int,
        *,
        weights: Optional[Sequence[float]] = None,
        resize_interval: int = 64,
        hysteresis: float = 2.0,
        window_bytes: float = 512 * 1024,
        initial_share: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one channel")
        if weights is None:
            weights = [1.0] * n
        weights = [float(w) for w in weights]
        if len(weights) != n:
            raise ValueError(f"weights must have {n} entries")
        if any(w <= 0 for w in weights):
            raise ValueError("channel weights must be positive")
        if resize_interval < 1:
            raise ValueError("resize_interval must be >= 1")
        if hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0")
        if not 0.0 <= initial_share <= 1.0:
            raise ValueError("initial_share must be in [0, 1]")
        self._n = n
        self.initial_share = initial_share
        self.weights = weights
        self.resize_interval = resize_interval
        self.hysteresis = hysteresis
        self.estimator = FlowRateEstimator(window_bytes, clock=clock)
        self._flows: Dict[Any, _FlowStripe] = {}
        #: stripe resizes performed (each one is a transient reorder risk)
        self.resizes = 0

    @property
    def n_channels(self) -> int:
        return self._n

    @property
    def flow_count(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------ #

    def stripe_of(self, flow: Any) -> List[int]:
        """The channel set currently striping ``flow`` (introspection)."""
        return list(self._stripe(flow).channels)

    def _stripe_channels(self, flow: Any, k: int) -> List[int]:
        """Hash-placed member channels for a width-``k`` stripe.

        When ``k`` divides the bundle, placement is aligned to multiples
        of ``k`` — stripes of one width tile the bundle and overlap either
        fully or not at all, the Sprinklers trick that keeps elephant
        collisions rare.  Otherwise (k = n, or an irregular bundle) the
        stripe is a contiguous wrap-around run from the hashed offset.
        """
        n = self._n
        if k >= n:
            return list(range(n))
        if n % k == 0:
            offset = stable_hash(flow, n // k) * k
        else:
            offset = stable_hash(flow, n)
        return [(offset + i) % n for i in range(k)]

    def _stripe(self, flow: Any) -> _FlowStripe:
        stripe = self._flows.get(flow)
        if stripe is None:
            state = self.estimator.new_state(self.initial_share)
            # By default a new flow starts as a mouse (stripe width 1) and
            # grows as its rate is measured; ``initial_share`` provisions a
            # wider stripe from the first packet, avoiding the grow
            # transient for flows known to be heavy.
            k = stripe_size_for(self.initial_share, self._n)
            channels = self._stripe_channels(flow, k)
            stripe = _FlowStripe(channels, state, self.weights[channels[0]])
            self._flows[flow] = stripe
        return stripe

    def choose(
        self, packet: Any, queue_depths: Optional[Sequence[int]] = None
    ) -> int:
        return self._stripe(getattr(packet, "flow", None)).current

    def notify_sent(self, channel: int, packet: Any) -> None:
        flow = getattr(packet, "flow", None)
        stripe = self._stripe(flow)
        size = packet.size
        self.estimator.observe(stripe.rate_state, size)
        stripe.packets += 1
        if stripe.size == 1:
            if stripe.packets % self.resize_interval == 0:
                self._maybe_resize(flow, stripe)
            return
        # Intra-stripe surplus round robin, counted in *packets* (each
        # member's quantum is its weight): with equal weights this is
        # exact per-packet round-robin, which is what makes delivery
        # order-preserving across identical FIFO channels.  Byte-quantum
        # SRR would occasionally put two back-to-back packets on one
        # member while the next member transmits concurrently — the very
        # reordering the paper's resequencer absorbs, which Sprinklers
        # must avoid at the source since it has no resequencer.
        stripe.credit -= 1.0
        if stripe.credit <= 0:
            cursor = stripe.cursor
            at_boundary = False
            while stripe.credit <= 0:
                cursor += 1
                if cursor >= stripe.size:
                    cursor = 0
                    at_boundary = True
                stripe.credit += self._quantum(stripe, cursor)
            stripe.cursor = cursor
            stripe.current = stripe.channels[cursor]
            if (
                at_boundary
                and stripe.packets >= self.resize_interval
                and stripe.packets % self.resize_interval
                < stripe.size
            ):
                self._maybe_resize(flow, stripe)

    def _quantum(self, stripe: _FlowStripe, cursor: int) -> float:
        """Credit refill for a stripe member: its weight, in packets per
        round (weight 1.0 everywhere = exact packet round-robin)."""
        return self.weights[stripe.channels[cursor]]

    def _maybe_resize(self, flow: Any, stripe: _FlowStripe) -> None:
        share = self.estimator.share(stripe.rate_state)
        k = stripe_size_for(share, self._n)
        if k == stripe.size:
            return
        if k < stripe.size and k * self.hysteresis > stripe.size:
            return  # shrink reluctantly: the rate may only be dipping
        self.resizes += 1
        channels = self._stripe_channels(flow, k)
        new = _FlowStripe(channels, stripe.rate_state, self.weights[channels[0]])
        new.packets = stripe.packets
        self._flows[flow] = new

    def reset(self) -> None:
        self._flows.clear()
        self.estimator.reset()
        self.resizes = 0

    # -- checkpoint support (repro.transport.recovery) ------------------ #

    def snapshot(self) -> Any:
        """Plain-data capture of every stripe + the rate estimator.

        The estimator's clock callback is not state; ``total_bytes`` and
        the per-flow ``rate_state`` pairs carry everything the EWMA needs.
        """
        return {
            "total_bytes": self.estimator.total_bytes,
            "resizes": self.resizes,
            "flows": [
                [
                    flow,
                    list(s.channels),
                    s.cursor,
                    s.current,
                    s.credit,
                    list(s.rate_state),
                    s.packets,
                ]
                for flow, s in self._flows.items()
            ],
        }

    def restore(self, state: Any) -> None:
        self.estimator.total_bytes = state["total_bytes"]
        self.resizes = state["resizes"]
        self._flows.clear()
        for flow, channels, cursor, current, credit, rate_state, packets in (
            state["flows"]
        ):
            stripe = _FlowStripe(list(channels), list(rate_state), credit)
            stripe.cursor = cursor
            stripe.current = current
            stripe.credit = credit
            stripe.packets = packets
            self._flows[flow] = stripe
