"""The paper's primary contribution: fair striping with logical reception.

Public surface:

* Packets: :class:`Packet`, :class:`MarkerPacket`.
* CFQ algorithms: :class:`CausalFQ`, :class:`SRR` (plus :func:`make_rr`,
  :func:`make_grr`), :class:`SeededRandomFQ`, :class:`DRR` (non-causal
  contrast case).
* The transformation: :class:`TransformedLoadSharer`,
  :func:`verify_reverse_correspondence` (Theorem 3.1 as code).
* Sender: :class:`Striper` with :class:`MarkerPolicy`.
* Receiver: :class:`Resequencer` (Theorem 4.1), :class:`SRRReceiver`
  (marker recovery, Theorem 5.1), :class:`NullResequencer` (ablation).
* Fairness: :func:`srr_fairness_report` (Theorem 3.2 bound).
* Marker-free striping: :class:`SprinklersDiscipline` (per-flow
  power-of-two stripes over :func:`stripe_size_for` /
  :class:`FlowRateEstimator` — in-order without markers or resequencing).
"""

from repro.core.packet import Codepoint, MarkerPacket, Packet, is_marker
from repro.core.cfq import (
    Capabilities,
    CausalFQ,
    NonCausalFQ,
    bits_per_queue,
    fq_service_order,
    fq_service_order_noncausal,
)
from repro.core.srr import (
    DRR,
    SRR,
    SRRState,
    grr_weights_for_bandwidths,
    make_grr,
    make_rr,
)
from repro.core.dks import DKS, DKSState
from repro.core.kernel import (
    CFQKernelAdapter,
    DRRKernel,
    SchedulerKernel,
    SharerKernel,
    SRRKernel,
    kernel_for,
    make_grr_kernel,
    make_rr_kernel,
)
from repro.core.schemes import SeededRandomFQ, WeightedRandomFQ
from repro.core.transform import (
    LoadSharer,
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
    verify_reverse_correspondence,
)
from repro.core.striper import ChannelPort, ListPort, MarkerPolicy, Striper
from repro.core.resequencer import (
    RESEQ_MODES,
    NullResequencer,
    Resequencer,
    make_resequencer,
)
from repro.core.markers import (
    MARKER_WIRE_BYTES,
    ReceiverSnapshot,
    SRRReceiver,
    SRRReceiverStats,
    decode_marker,
    encode_marker,
    piggybacked_credit,
)
from repro.core.fairness import (
    FairnessReport,
    jain_fairness_index,
    max_pairwise_imbalance,
    normalized_shares,
    srr_fairness_report,
)
from repro.core.sprinklers import (
    FlowRateEstimator,
    SprinklersDiscipline,
    stripe_size_for,
)
from repro.core.session import (
    LocalChecker,
    ResetAckPacket,
    ResetPacket,
    ResetRequestPacket,
    StripeConfig,
    StripeReceiverSession,
    StripeSenderSession,
)

__all__ = [
    "Codepoint",
    "Packet",
    "MarkerPacket",
    "is_marker",
    "Capabilities",
    "CausalFQ",
    "NonCausalFQ",
    "fq_service_order",
    "fq_service_order_noncausal",
    "bits_per_queue",
    "SRR",
    "SRRState",
    "SchedulerKernel",
    "SRRKernel",
    "SharerKernel",
    "CFQKernelAdapter",
    "DRRKernel",
    "kernel_for",
    "make_rr_kernel",
    "make_grr_kernel",
    "DRR",
    "DKS",
    "DKSState",
    "make_rr",
    "make_grr",
    "grr_weights_for_bandwidths",
    "SeededRandomFQ",
    "WeightedRandomFQ",
    "LoadSharer",
    "TransformedLoadSharer",
    "stripe_sequence",
    "bytes_per_channel",
    "verify_reverse_correspondence",
    "Striper",
    "MarkerPolicy",
    "ChannelPort",
    "ListPort",
    "Resequencer",
    "NullResequencer",
    "make_resequencer",
    "RESEQ_MODES",
    "SRRReceiver",
    "encode_marker",
    "decode_marker",
    "piggybacked_credit",
    "MARKER_WIRE_BYTES",
    "SRRReceiverStats",
    "ReceiverSnapshot",
    "FairnessReport",
    "srr_fairness_report",
    "max_pairwise_imbalance",
    "jain_fairness_index",
    "normalized_shares",
    "SprinklersDiscipline",
    "FlowRateEstimator",
    "stripe_size_for",
    "StripeConfig",
    "StripeSenderSession",
    "StripeReceiverSession",
    "LocalChecker",
    "ResetPacket",
    "ResetAckPacket",
    "ResetRequestPacket",
]
