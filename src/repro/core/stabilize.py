"""Self-stabilization companions of the session layer.

Split out of :mod:`repro.core.session`: the sender-side channel prober
(revival detection for excluded channels) and the [Var93]-style local
checker (round-divergence detection on markers).  Both attach to the
session state machines in :mod:`repro.core.session` but carry no session
state of their own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.control import ProbeAckPacket, ProbePacket
from repro.core.packet import MarkerPacket
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.session import StripeReceiverSession, StripeSenderSession


class ChannelProber:
    """Sender-side revival: probe excluded channels, rejoin on an ACK.

    The receiver cannot transmit on a failed *forward* channel, so revival
    detection is the sender's job.  Every channel excluded from the bundle
    is probed with exponentially backed-off :class:`ProbePacket` sends
    (forced past the queue limit, so a wedged queue cannot mask a probe).
    A probe that gets through elicits a :class:`ProbeAckPacket` on the
    reverse control path — gated by the receiver's lifecycle manager's
    hold-down — and the prober then re-admits the channel via a
    reconfiguration RESET carrying its pre-failure quantum: the paper's
    reset machinery doubles as the rejoin path, so the revived channel
    re-enters with fresh epoch-initial striping state.

    Flap damping mirrors the receiver's: a channel that fails again within
    ``flap_window`` seconds of rejoining must sit out a hold-down that
    doubles per flap (``flap_penalty``, ``flap_factor``, capped at
    ``max_hold_down``) before the next rejoin.

    Bookkeeping is dict/set based: reconciliation after a reset touches
    only the channels whose membership actually changed plus a C-level
    set difference, so per-event cost stays flat at fabric scale.
    """

    def __init__(
        self,
        sim: Simulator,
        session: "StripeSenderSession",
        *,
        initial_interval: float = 0.05,
        backoff: float = 2.0,
        max_interval: float = 1.0,
        max_probes: int = 200,
        min_hold_down: float = 0.0,
        flap_penalty: float = 0.2,
        flap_window: float = 2.0,
        flap_factor: float = 2.0,
        max_hold_down: float = 4.0,
    ) -> None:
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        self.sim = sim
        self.session = session
        self.initial_interval = initial_interval
        self.backoff = backoff
        self.max_interval = max_interval
        self.max_probes = max_probes
        self.min_hold_down = min_hold_down
        self.flap_penalty = flap_penalty
        self.flap_window = flap_window
        self.flap_factor = flap_factor
        self.max_hold_down = max_hold_down
        self.probes_sent = 0
        self.rejoins = 0
        #: channels given up on after ``max_probes`` unanswered probes
        self.abandoned: List[int] = []
        self._probing: dict = {}
        self._quantum: dict = {}
        self._hold_down: dict = {}
        self._down_at: dict = {}
        self._rejoined_at: dict = {}
        self._probe_seq = 0
        #: the full channel universe, computed once (the port set is fixed
        #: for a session's lifetime; only membership in ``active`` moves)
        self._all_channels = frozenset(range(len(session.all_ports)))
        session.on_probe_ack = self._on_probe_ack
        self._chained_on_reset = session.on_reset_complete
        session.on_reset_complete = self._on_reset_complete
        self._sync()

    @property
    def probing_channels(self) -> List[int]:
        """Original port indices currently under probe, sorted."""
        return sorted(self._probing)

    def hold_down(self, channel: int) -> float:
        """Current flap-damped rejoin hold-down of ``channel``."""
        return self._hold_down.get(channel, self.min_hold_down)

    # ------------------------------------------------------------------ #

    def _on_reset_complete(self, epoch: int) -> None:
        if self._chained_on_reset is not None:
            self._chained_on_reset(epoch)
        self._sync()

    def _sync(self) -> None:
        """Reconcile probing state with the session's active-channel set."""
        config = self.session.config
        for channel, quantum in zip(config.active_channels, config.quanta):
            # Remember each channel's quantum while it is healthy, so a
            # later rejoin restores its pre-failure share.
            self._quantum[channel] = quantum
        # Probes to stop: channels the new epoch re-admitted.
        for channel in [c for c in self._probing if config.is_active(c)]:
            self._stop(channel)
        # Probes to start: excluded channels not already under probe
        # (abandoned channels get a fresh probe budget, as before).
        for channel in self._all_channels.difference(
            config.active_channels, self._probing
        ):
            self._start(channel)

    def _start(self, channel: int) -> None:
        now = self.sim.now
        rejoined = self._rejoined_at.get(channel)
        if rejoined is not None and now - rejoined < self.flap_window:
            previous = self._hold_down.get(channel, 0.0)
            self._hold_down[channel] = min(
                max(previous * self.flap_factor, self.flap_penalty),
                self.max_hold_down,
            )
        else:
            self._hold_down[channel] = self.min_hold_down
        self._down_at[channel] = now
        state = {"interval": self.initial_interval, "sent": 0, "event": None}
        self._probing[channel] = state
        state["event"] = self.sim.schedule(
            state["interval"], self._probe, channel
        )

    def _stop(self, channel: int) -> None:
        state = self._probing.pop(channel, None)
        if state is not None and state["event"] is not None:
            state["event"].cancel()

    def _probe(self, channel: int) -> None:
        state = self._probing.get(channel)
        if state is None:
            return
        state["event"] = None
        if state["sent"] >= self.max_probes:
            self.abandoned.append(channel)
            del self._probing[channel]
            return
        state["sent"] += 1
        self.probes_sent += 1
        self._probe_seq += 1
        self.session.all_ports[channel].send(
            ProbePacket(channel=channel, seq=self._probe_seq), force=True
        )
        state["interval"] = min(
            state["interval"] * self.backoff, self.max_interval
        )
        state["event"] = self.sim.schedule(
            state["interval"], self._probe, channel
        )

    def _on_probe_ack(self, packet: ProbeAckPacket) -> None:
        channel = packet.channel
        if channel not in self._probing:
            return
        now = self.sim.now
        if now - self._down_at[channel] < self._hold_down[channel]:
            return  # flap-damped: not willing to rejoin yet
        session = self.session
        if session.state != session.RUNNING:
            return  # a reset is in flight; _sync re-evaluates after it
        if session.config.is_active(channel):
            self._stop(channel)
            return
        self._stop(channel)
        self.rejoins += 1
        self._rejoined_at[channel] = now
        session.initiate_reset(
            session.config_with(channel, self._quantum.get(channel))
        )


class LocalChecker:
    """Self-stabilization by local checking ([Var93]) and correction.

    The sender's markers each carry the sender round number ``r`` for the
    channel they ride; with bounded in-flight data the receiver's global
    round ``G`` must satisfy ``r - window <= G <= r + window`` whenever a
    marker is *observed on arrival* (no blocking involved).  A violation
    proves state corruption; the correction is a reset request.

    Args:
        window_rounds: tolerated |marker round − receiver round| slack;
            choose ≥ the worst-case in-flight rounds (channel queue depth /
            packets-per-round) plus the marker interval.
    """

    def __init__(self, window_rounds: int = 50) -> None:
        if window_rounds < 1:
            raise ValueError("window must be >= 1 round")
        self.window_rounds = window_rounds
        self.session: Optional["StripeReceiverSession"] = None
        self.violations = 0
        self.resets_requested = 0
        self._requested_this_epoch = False

    def attach(self, session: "StripeReceiverSession") -> None:
        self.session = session

    def on_reset(self, epoch: int) -> None:
        self._requested_this_epoch = False

    def observe_marker(self, marker: MarkerPacket) -> None:
        assert self.session is not None
        receiver_round = self.session.receiver.round_number
        if abs(marker.round_number - receiver_round) > self.window_rounds:
            self.violations += 1
            if not self._requested_this_epoch:
                self._requested_this_epoch = True
                self.resets_requested += 1
                self.session.request_reset(
                    f"round divergence {marker.round_number} vs "
                    f"{receiver_round}"
                )


__all__ = ["ChannelProber", "LocalChecker"]
