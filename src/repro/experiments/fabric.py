"""The 10k-flow fabric scalability experiment.

One bundle, many tenants: ``n_flows`` flows spread across three tenants
with skewed weights (gold 4x, silver 2x, bronze 1x) submit through a
:class:`~repro.transport.fabric.FabricScheduler` mounted on one striped
sender pipeline — FQ across flows above, SRR across channels below.  The
run measures what the ROADMAP's "millions of users on one bundle" goal
actually needs:

* **aggregate goodput** — the flow layer must not tax the striper;
* **Jain's fairness across equal-weight flows** (per tenant, sampled
  mid-run while every flow is still backlogged — the only regime where
  fairness is defined) — acceptance: >= 0.95 for every tenant;
* **weighted tenant shares** — per-unit-weight service within 10% of
  equal (the weighted-DRR guarantee surfaced end to end);
* **p99 delivery latency** over the whole run.

Each flow's packet count is proportional to its weight, so all flows
drain together and stay backlogged through the mid-run fairness sample
(a flow that finishes early would rightly stop taking service and
depress any naive fairness number).

Results are emitted as :class:`FabricResult`; the benchmark wrapper
(``benchmarks/test_bench_fabric.py``) asserts the acceptance bars and
writes ``BENCH_fabric.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.fairness import jain_fairness_index, normalized_shares
from repro.core.packet import Packet
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fabric import FabricScheduler, FlowTable
from repro.transport.fast_path import FastChannelPort

#: tenant -> DRR weight (skewed on purpose; gold pays for 4x bronze)
TENANT_WEIGHTS: Dict[str, float] = {"gold": 4.0, "silver": 2.0, "bronze": 1.0}
_TENANTS = tuple(TENANT_WEIGHTS)


@dataclass
class FabricResult:
    n_flows: int
    n_channels: int
    total_packets: int
    delivered_packets: int
    duration_s: float
    aggregate_goodput_mbps: float
    #: Jain's index across the equal-weight flows of each tenant,
    #: sampled mid-run (all flows backlogged)
    jain_per_tenant: Dict[str, float] = field(default_factory=dict)
    #: per-unit-weight tenant service normalized to mean 1.0 (ideal: 1.0)
    tenant_shares: Dict[str, float] = field(default_factory=dict)
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0

    @property
    def jain_min(self) -> float:
        return min(self.jain_per_tenant.values(), default=0.0)

    @property
    def max_share_error(self) -> float:
        """Worst relative deviation of a tenant's per-weight share from 1."""
        return max(
            (abs(s - 1.0) for s in self.tenant_shares.values()), default=1.0
        )

    def render(self) -> str:
        shares = " ".join(
            f"{t}={self.tenant_shares.get(t, 0.0):.3f}" for t in _TENANTS
        )
        jain = " ".join(
            f"{t}={self.jain_per_tenant.get(t, 0.0):.3f}" for t in _TENANTS
        )
        return "\n".join(
            [
                f"{self.n_flows} flows / {len(_TENANTS)} tenants over "
                f"{self.n_channels} channels (FQ x SRR):",
                f"  delivered: {self.delivered_packets}/"
                f"{self.total_packets} packets in {self.duration_s:.3f}s "
                f"({self.aggregate_goodput_mbps:.1f} Mbps aggregate)",
                f"  Jain per tenant (mid-run): {jain} "
                f"(min {self.jain_min:.3f})",
                f"  per-weight tenant shares: {shares} "
                f"(max error {self.max_share_error * 100:.1f}%)",
                f"  delivery latency: p50 {self.p50_latency_s * 1e3:.1f} ms, "
                f"p99 {self.p99_latency_s * 1e3:.1f} ms",
            ]
        )


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_fabric(
    n_flows: int = 10_000,
    n_channels: int = 4,
    packet_bytes: int = 400,
    packets_per_unit_weight: int = 8,
    bandwidth_bps: float = 250e6,
    prop_delay: float = 0.2e-3,
    queue_limit: int = 64,
) -> FabricResult:
    """Push ``n_flows`` weighted flows through one striped bundle.

    Flow ``i`` belongs to tenant ``_TENANTS[i % 3]`` and submits
    ``packets_per_unit_weight * weight`` packets of ``packet_bytes`` at
    t=0 — an all-backlogged open-loop burst, the worst case for the flow
    scheduler.  The fabric's quantum equals the packet size, so weighted
    DRR degenerates to weighted round robin and any mid-run unfairness
    beyond one scheduler visit is a real scheduling bug, not quantum
    granularity.
    """
    sim = Simulator()
    channels = [
        Channel(
            sim,
            bandwidth_bps=bandwidth_bps,
            prop_delay=prop_delay,
            queue_limit=queue_limit,
            name=f"ch{i}",
        )
        for i in range(n_channels)
    ]
    ports = [FastChannelPort(ch) for ch in channels]
    quanta = [float(packet_bytes) * 3] * n_channels

    table = FlowTable(
        tenant_weights=TENANT_WEIGHTS, quantum_bytes=float(packet_bytes)
    )
    fabric = FabricScheduler(table, flow_buffer_packets=None)

    delivered: List[float] = []  # per-packet delivery latency
    delivered_bytes = 0
    total_packets = sum(
        packets_per_unit_weight * int(TENANT_WEIGHTS[_TENANTS[i % 3]])
        for i in range(n_flows)
    )
    #: per-flow serviced_bytes snapshot taken when half the run delivered
    midrun: Dict[str, List[int]] = {}
    midrun_tenant_totals: Dict[str, int] = {}

    def on_message(packet: Packet) -> None:
        nonlocal delivered_bytes
        delivered.append(sim.now - packet.payload)
        delivered_bytes += packet.size
        if len(delivered) == total_packets // 2 and not midrun:
            for flow in table:
                midrun.setdefault(flow.tenant, []).append(flow.serviced_bytes)
                midrun_tenant_totals[flow.tenant] = (
                    midrun_tenant_totals.get(flow.tenant, 0)
                    + flow.serviced_bytes
                )

    sender = StripeSenderPipeline(
        ports,
        SRR(quanta),
        marker_policy=MarkerPolicy(interval_rounds=8),
        sim=sim,
        fabric=fabric,
    )
    receiver = StripeReceiverPipeline(
        n_channels,
        SRR(quanta),
        mode="marker",
        on_message=on_message,
        sim=sim,
    )
    for index, channel in enumerate(channels):
        channel.on_deliver = receiver.channel_handler(index)
        channel.on_space = sender._pump

    # The all-backlogged burst: every flow submits its full demand at t=0.
    # Registration order fixes the DRR ring order; packets are stamped
    # with their submit time for the latency percentiles.
    for i in range(n_flows):
        table.register(f"f{i}", tenant=_TENANTS[i % 3])
    seq = 0
    for i in range(n_flows):
        flow_id = f"f{i}"
        count = packets_per_unit_weight * int(TENANT_WEIGHTS[_TENANTS[i % 3]])
        for _ in range(count):
            sender.submit(
                flow_id, Packet(size=packet_bytes, seq=seq, payload=sim.now)
            )
            seq += 1

    sim.run()
    duration = sim.now

    jain_per_tenant = {
        tenant: jain_fairness_index(bytes_list)
        for tenant, bytes_list in midrun.items()
    }
    tenants = [t for t in _TENANTS if t in midrun_tenant_totals]
    shares = normalized_shares(
        [float(midrun_tenant_totals[t]) for t in tenants],
        [
            TENANT_WEIGHTS[t] * len(midrun.get(t, ())) for t in tenants
        ],  # tenant weight x population = aggregate entitlement
    )
    latencies = sorted(delivered)
    return FabricResult(
        n_flows=n_flows,
        n_channels=n_channels,
        total_packets=total_packets,
        delivered_packets=len(delivered),
        duration_s=duration,
        aggregate_goodput_mbps=(
            delivered_bytes * 8 / duration / 1e6 if duration > 0 else 0.0
        ),
        jain_per_tenant=jain_per_tenant,
        tenant_shares=dict(zip(tenants, shares)),
        p50_latency_s=_percentile(latencies, 0.50),
        p99_latency_s=_percentile(latencies, 0.99),
    )


__all__ = ["FabricResult", "TENANT_WEIGHTS", "run_fabric"]
