"""Scheduler-kernel stepping throughput: frozen states vs mutable kernel.

The paper's Conclusion claims SRR "requires only a few extra instructions"
per packet; this experiment measures what our three stepping paths make of
that budget:

* ``frozen`` — the immutable ``(s0, f, g)`` path: ``select`` + ``update``
  allocating a frozen :class:`~repro.core.srr.SRRState` per packet (the
  reference semantics, still used by property tests and any non-native
  algorithm through :class:`~repro.core.kernel.CFQKernelAdapter`),
* ``kernel`` — per-packet :meth:`~repro.core.kernel.SchedulerKernel.step`
  on the mutable native kernel,
* ``batched`` — one :meth:`~repro.core.kernel.SchedulerKernel.assign_many`
  call over the whole burst,
* ``numpy`` (optional) — :class:`~repro.core.kernel.NumpySRRKernel`'s
  closed-form vectorized ``assign_many``.  Exact only for uniform-cost
  bursts (it silently falls back to the scalar batch otherwise), so it is
  benchmarked on the uniform workload where it actually vectorizes.

All paths produce byte-identical channel assignments (asserted here and in
``tests/properties/test_kernel_equivalence.py``); only the stepping
machinery differs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class KernelBenchResult:
    """Packets/second for each stepping path over the same workload."""

    n_packets: int
    n_channels: int
    quanta: List[float]
    packets_per_sec: Dict[str, float] = field(default_factory=dict)
    speedup_vs_frozen: Dict[str, float] = field(default_factory=dict)
    assignments_identical: bool = True

    def render(self) -> str:
        lines = [
            f"workload: {self.n_packets} packets over {self.n_channels} "
            f"channels, quanta {self.quanta}",
            f"{'path':>10}  {'pkts/sec':>12}  {'vs frozen':>9}",
        ]
        for name, rate in self.packets_per_sec.items():
            speedup = self.speedup_vs_frozen[name]
            lines.append(f"{name:>10}  {rate:>12,.0f}  {speedup:>8.2f}x")
        lines.append(
            "assignments identical across paths: "
            f"{self.assignments_identical}"
        )
        return "\n".join(lines)


def run_kernel_bench(
    n_packets: int = 200_000,
    quanta: Sequence[float] = (1500.0, 2070.0, 900.0),
    seed: int = 1,
    repeats: int = 3,
    uniform_size: Optional[int] = None,
    numpy: bool = False,
) -> KernelBenchResult:
    """Time the stepping paths over one workload.

    Each path runs ``repeats`` times and the best run is reported (standard
    micro-benchmark practice: the minimum is the least-noise estimate).

    ``uniform_size`` switches the workload from the random 40–1500 B mix to
    a constant size (every packet ``uniform_size`` bytes) — the shape the
    closed-form numpy kernel can vectorize.  ``numpy=True`` adds the
    ``numpy`` path when the library is importable (silently omitted
    otherwise, so callers need no gating of their own).
    """
    from repro.core.kernel import NumpySRRKernel, SRRKernel, numpy_available
    from repro.core.srr import SRR

    rng = random.Random(seed)
    if uniform_size is not None:
        sizes = [int(uniform_size)] * n_packets
    else:
        sizes = [rng.randint(40, 1500) for _ in range(n_packets)]
    algorithm = SRR(list(quanta))

    def run_frozen() -> List[int]:
        state = algorithm.initial_state()
        select = algorithm.select
        update = algorithm.update
        out: List[int] = []
        append = out.append
        for size in sizes:
            append(select(state))
            state = update(state, size)
        return out

    def run_kernel() -> List[int]:
        kernel = SRRKernel(algorithm)
        step = kernel.step
        return [step(size) for size in sizes]

    def run_batched() -> List[int]:
        return SRRKernel(algorithm).assign_many(sizes)

    paths = {"frozen": run_frozen, "kernel": run_kernel, "batched": run_batched}
    if numpy and numpy_available():

        def run_numpy() -> List[int]:
            return NumpySRRKernel(algorithm).assign_many(sizes)

        paths["numpy"] = run_numpy
    rates: Dict[str, float] = {}
    outputs: Dict[str, List[int]] = {}
    for name, fn in paths.items():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            outputs[name] = fn()
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
        rates[name] = n_packets / best

    reference = outputs["frozen"]
    identical = all(out == reference for out in outputs.values())
    frozen_rate = rates["frozen"]
    return KernelBenchResult(
        n_packets=n_packets,
        n_channels=len(quanta),
        quanta=[float(q) for q in quanta],
        packets_per_sec=rates,
        speedup_vs_frozen={k: v / frozen_rate for k, v in rates.items()},
        assignments_identical=identical,
    )
