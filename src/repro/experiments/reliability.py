"""Reliability experiment: best-effort vs selective-repeat ARQ under loss.

Runs the session testbed at a sweep of persistent per-channel loss rates
in both delivery modes and reports, per cell:

* goodput and the fraction of submitted messages delivered — best-effort
  loses exactly the dropped packets, reliable must deliver 100%;
* in-order / exactly-once verdicts (the reliable-mode contract);
* the ARQ cost that bought completeness — retransmissions (split into
  timeout- and SACK-driven), ack traffic, the smoothed RTT the adaptive
  RTO converged to, and backpressure stalls at the bounded window.

The striper underneath is identical in both modes, so the delta is the
reliability layer alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.fault_tolerance import build_session_testbed
from repro.sim.engine import Simulator

N_CHANNELS = 3
MESSAGE_BYTES = 1000
LINK_MBPS = 10.0


@dataclass
class ReliabilityRun:
    mode: str
    loss_rate: float
    submitted: int
    delivered: int
    duplicates: int
    in_order: bool
    goodput_mbps: float
    retransmissions: int
    fast_retransmissions: int
    timeouts: int
    acks_sent: int
    srtt_ms: Optional[float]
    backpressure_stalls: int
    drained: bool

    @property
    def completeness(self) -> float:
        return self.delivered / self.submitted if self.submitted else 0.0

    def render_row(self) -> str:
        flags = []
        if self.mode == "reliable":
            flags.append("drained" if self.drained else "NOT DRAINED")
            srtt = f"{self.srtt_ms:.1f}" if self.srtt_ms is not None else "-"
            arq = (
                f"rtx={self.retransmissions} "
                f"(fast {self.fast_retransmissions}, to {self.timeouts}), "
                f"acks={self.acks_sent}, srtt={srtt} ms, "
                f"stalls={self.backpressure_stalls}"
            )
        else:
            arq = "-"
        flags.append("in-order" if self.in_order else "REORDERED")
        if self.duplicates:
            flags.append(f"dups={self.duplicates}")
        return (
            f"  {self.mode:11s} p={self.loss_rate:4.0%}: "
            f"{self.delivered:5d}/{self.submitted:5d} "
            f"({self.completeness:6.1%}) {self.goodput_mbps:5.2f} Mbps "
            f"[{', '.join(flags)}] {arq}"
        )


@dataclass
class ReliabilityExperiment:
    rows: List[ReliabilityRun]
    total_s: float

    def render(self) -> str:
        lines = [
            f"reliability: session stack, {N_CHANNELS} channels at "
            f"{LINK_MBPS:.0f} Mbps, persistent per-channel loss, "
            f"{self.total_s} s runs (ARQ drains after):"
        ]
        lines += [row.render_row() for row in self.rows]
        reliable = [r for r in self.rows if r.mode == "reliable"]
        complete = all(
            r.completeness == 1.0 and r.in_order and r.duplicates == 0
            for r in reliable
        )
        cost = sum(r.retransmissions for r in reliable)
        lines.append(
            f"  summary: reliable mode exactly-once in-order at every "
            f"loss rate: {complete}; total retransmissions {cost}"
        )
        return "\n".join(lines)


def run_reliability_run(
    mode: str, loss_rate: float, total_s: float, seed: int
) -> ReliabilityRun:
    sim = Simulator()
    testbed = build_session_testbed(
        sim, n_channels=N_CHANNELS, link_mbps=(LINK_MBPS,),
        loss_rates=(loss_rate,), message_bytes=MESSAGE_BYTES,
        seed=seed, reliability=mode,
    )
    sim.run(until=total_s)
    testbed.source.stop()
    # Give retransmissions time to finish once the source stops.
    sim.run(until=total_s + (2.0 if mode == "reliable" else 0.2))

    seqs = [seq for _, seq in testbed.deliveries]
    arq = testbed.sender.reliable
    arq_rx = testbed.receiver.reliable
    srtt = arq.rto.srtt if arq is not None else None
    return ReliabilityRun(
        mode=mode,
        loss_rate=loss_rate,
        submitted=testbed.source.generated,
        delivered=len(set(seqs)),
        duplicates=len(seqs) - len(set(seqs)),
        in_order=seqs == sorted(seqs),
        goodput_mbps=len(seqs) * MESSAGE_BYTES * 8 / total_s / 1e6,
        retransmissions=arq.stats.retransmissions if arq else 0,
        fast_retransmissions=arq.stats.fast_retransmissions if arq else 0,
        timeouts=arq.stats.timeouts if arq else 0,
        acks_sent=arq_rx.stats.acks_sent if arq_rx else 0,
        srtt_ms=srtt * 1e3 if srtt is not None else None,
        backpressure_stalls=arq.stats.backpressure_stalls if arq else 0,
        drained=(not arq.unacked and not arq.backlog) if arq else True,
    )


def run_reliability(
    quick: bool = False,
    loss_rates: Optional[Sequence[float]] = None,
    total_s: Optional[float] = None,
    seed: int = 7,
) -> ReliabilityExperiment:
    """Best-effort vs reliable mode across persistent loss rates."""
    if loss_rates is None:
        loss_rates = (0.05, 0.15) if quick else (0.0, 0.02, 0.05, 0.10, 0.20)
    if total_s is None:
        total_s = 0.6 if quick else 1.5
    rows = [
        run_reliability_run(mode, p, total_s, seed)
        for p in loss_rates
        for mode in ("best_effort", "reliable")
    ]
    return ReliabilityExperiment(rows=rows, total_s=total_s)
