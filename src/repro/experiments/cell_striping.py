"""Cell-level vs packet-level striping over ATM VCs (paper's conclusion).

"When striping end-to-end across ATM circuits, it seems advisable to
stripe at the packet layer.  Striping cells across channels would mean
that AAL boundaries are unavailable within the ATM networks; however,
these boundaries are needed in order to implement early discard policies
[RF94]."

The mechanism (Romanov & Floyd): when a congested queue drops *random
cells*, the losses scatter across many packets and every hit packet is
garbage — goodput collapses.  With AAL packet boundaries visible, the
queue can do **early packet discard**: refuse a whole packet up front,
concentrating the same byte loss on few packets and keeping the rest
intact.

We overload two ATM VCs (finite cell queues) and stripe the same packet
stream two ways:

* **packet striping + EPD** — SRR assigns whole packets to VCs; a VC
  admits a packet only if its queue can hold *all* its cells (AAL
  boundaries available ⇒ early discard possible);
* **cell striping** — cells are dealt round-robin across both VCs with
  per-cell tail drop (boundaries invisible mid-network, as when cells of
  one AAL frame are spread over two circuits).

Reported: goodput (complete packets only), cell loss, and the fraction of
*damaged* packets (some but not all cells arrived — pure waste).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.packet import Packet
from repro.core.srr import SRR
from repro.core.transform import TransformedLoadSharer
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.workloads.generators import PacedSource, ConstantSizes, cbr_intervals

CELL_BYTES = 53
CELL_PAYLOAD = 48


@dataclass
class _Cell:
    packet_uid: int
    index: int
    count: int
    size: int = CELL_BYTES


@dataclass
class CellStripingRow:
    mode: str
    offered_packets: int
    complete_packets: int
    damaged_packets: int
    cells_dropped: int
    goodput_mbps: float

    @property
    def damaged_fraction(self) -> float:
        delivered_any = self.complete_packets + self.damaged_packets
        if delivered_any == 0:
            return 0.0
        return self.damaged_packets / delivered_any

    def render(self) -> str:
        return (
            f"{self.mode:>24} {self.offered_packets:>8} "
            f"{self.complete_packets:>9} {self.damaged_packets:>8} "
            f"{self.cells_dropped:>8} {self.goodput_mbps:>8.2f}"
        )


@dataclass
class CellStripingResult:
    rows: List[CellStripingRow]

    def row(self, mode: str) -> CellStripingRow:
        return next(r for r in self.rows if r.mode == mode)

    def render(self) -> str:
        header = (
            f"{'mode':>24} {'offered':>8} {'complete':>9} {'damaged':>8} "
            f"{'cellloss':>8} {'Mbps':>8}"
        )
        return "\n".join(
            [header, "-" * len(header)] + [row.render() for row in self.rows]
        )


def _run_mode(
    mode: str,
    duration_s: float,
    vc_mbps: float,
    queue_cells: int,
    cells_per_packet: int,
    overload: float,
    seed: int,
) -> CellStripingRow:
    sim = Simulator()
    channels = [
        Channel(sim, bandwidth_bps=vc_mbps * 1e6, prop_delay=1e-3,
                queue_limit=queue_cells, name=f"vc{i}")
        for i in range(2)
    ]
    received: Dict[int, int] = {}
    for channel in channels:
        channel.on_deliver = lambda cell: received.__setitem__(
            cell.packet_uid, received.get(cell.packet_uid, 0) + 1
        )

    cells_dropped = [0]
    offered = [0]
    packet_bytes = cells_per_packet * CELL_PAYLOAD

    sharer = TransformedLoadSharer(
        SRR([float(packet_bytes)] * 2)
    )
    rr_next = [0]

    def submit(packet: Packet) -> None:
        offered[0] += 1
        cells = [
            _Cell(packet.uid, i, cells_per_packet)
            for i in range(cells_per_packet)
        ]
        if mode == "packet striping + EPD":
            vc = sharer.choose(packet)
            sharer.notify_sent(vc, packet)
            channel = channels[vc]
            # Early packet discard: all cells or none.
            if channel.queue_length + cells_per_packet > queue_cells:
                cells_dropped[0] += cells_per_packet
                return
            for cell in cells:
                channel.send(cell)
        else:  # cell striping: RR per cell, blind tail drop
            for cell in cells:
                channel = channels[rr_next[0]]
                rr_next[0] = (rr_next[0] + 1) % 2
                if not channel.send(cell):
                    cells_dropped[0] += 1

    packet_rate = overload * (2 * vc_mbps * 1e6) / (8 * CELL_BYTES) / (
        cells_per_packet
    )
    source = PacedSource(
        sim, submit, ConstantSizes(packet_bytes),
        cbr_intervals(packet_rate),
    )
    source.start()
    sim.run(until=duration_s)

    complete = sum(1 for n in received.values() if n == cells_per_packet)
    damaged = sum(1 for n in received.values() if 0 < n < cells_per_packet)
    goodput = complete * packet_bytes * 8 / duration_s / 1e6
    return CellStripingRow(
        mode=mode,
        offered_packets=offered[0],
        complete_packets=complete,
        damaged_packets=damaged,
        cells_dropped=cells_dropped[0],
        goodput_mbps=goodput,
    )


def run_cell_striping(
    duration_s: float = 2.0,
    vc_mbps: float = 10.0,
    queue_cells: int = 64,
    cells_per_packet: int = 20,
    overload: float = 1.3,
    seed: int = 0,
) -> CellStripingResult:
    """Overload two VCs by ``overload``×; compare the two striping layers."""
    rows = [
        _run_mode("packet striping + EPD", duration_s, vc_mbps, queue_cells,
                  cells_per_packet, overload, seed),
        _run_mode("cell striping", duration_s, vc_mbps, queue_cells,
                  cells_per_packet, overload, seed),
    ]
    return CellStripingResult(rows)
