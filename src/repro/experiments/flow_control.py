"""§6.3 finding 4: credit-based flow control eliminates congestion loss.

"For channels not providing flow control, e.g., UDP channels, a simple
credit based flow control scheme proposed by Kung et. al. proved very
effective in eliminating packet loss due to channel congestion."

The congestion scenario: two striped UDP channels with *mismatched* rates
while SRR is configured with equal quanta (as it would be if the channel
rates were unknown or changed after setup).  The fast channel runs ahead;
its packets pile up in the receiver's per-channel buffer while logical
reception waits on the slow channel, and the bounded buffer overflows —
packet loss due to congestion, which then desynchronizes the stream.

With FCVC credits (receiver advertises ``consumed + buffer``), the sender
stalls the fast channel instead of overflowing it: zero loss, and the
delivered stream stays exactly FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator


@dataclass
class FlowControlRow:
    label: str
    use_credit: bool
    sent: int
    delivered: int
    buffer_drops: int
    out_of_order: int
    goodput_mbps: float
    credit_stalls: int


@dataclass
class FlowControlResult:
    rows: List[FlowControlRow]

    def row(self, use_credit: bool) -> FlowControlRow:
        return next(r for r in self.rows if r.use_credit == use_credit)

    def render(self) -> str:
        header = (
            f"{'config':>12} {'sent':>7} {'dlvr':>7} {'buf drops':>9} "
            f"{'OOO':>6} {'Mbps':>7} {'stalls':>7}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.label:>12} {row.sent:>7} {row.delivered:>7} "
                f"{row.buffer_drops:>9} {row.out_of_order:>6} "
                f"{row.goodput_mbps:>7.2f} {row.credit_stalls:>7}"
            )
        return "\n".join(lines)


def run_flow_control(
    fast_mbps: float = 10.0,
    slow_mbps: float = 2.0,
    buffer_packets: int = 12,
    duration_s: float = 2.0,
    message_bytes: int = 1000,
    seed: int = 0,
) -> FlowControlResult:
    """Run the congestion scenario with and without FCVC credits."""
    rows: List[FlowControlRow] = []
    for use_credit in (False, True):
        sim = Simulator()
        config = SocketTestbedConfig(
            n_channels=2,
            link_mbps=(fast_mbps, slow_mbps),
            prop_delay_s=(0.5e-3, 0.5e-3),
            loss_rates=(0.0, 0.0),
            message_bytes=message_bytes,
            buffer_packets=buffer_packets,
            use_credit=use_credit,
            seed=seed,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=duration_s)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        goodput = (
            sum(d.size for d in testbed.deliveries) * 8.0 / duration_s / 1e6
        )
        stalls = testbed.sender.credit.stalls if testbed.sender.credit else 0
        rows.append(
            FlowControlRow(
                label="FCVC credits" if use_credit else "no credits",
                use_credit=use_credit,
                sent=testbed.messages_sent,
                delivered=report.delivered,
                buffer_drops=testbed.receiver.buffer_drops,
                out_of_order=report.out_of_order,
                goodput_mbps=goodput,
                credit_stalls=stalls,
            )
        )
    return FlowControlResult(rows)
