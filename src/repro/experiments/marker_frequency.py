"""§6.3 finding 2: more frequent markers ⇒ fewer out-of-order deliveries.

"For a given loss rate, increasing the frequency of marker packets
decreased the occurrence of out of order delivery of packets."

Mechanism: between a desynchronizing loss and the next marker, the receiver
delivers out of order; a shorter marker period shrinks that window.  We
sweep the marker interval (in rounds) at a fixed loss rate and report the
out-of-order fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator

DEFAULT_INTERVALS = (1, 2, 5, 10, 20, 50)


@dataclass
class MarkerFrequencyRow:
    interval_rounds: int
    delivered: int
    out_of_order: int
    markers_received: int

    @property
    def ooo_fraction(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self.out_of_order / self.delivered


@dataclass
class MarkerFrequencyResult:
    loss_rate: float
    rows: List[MarkerFrequencyRow]

    def render(self) -> str:
        header = (
            f"loss={self.loss_rate:.0%}  "
            f"{'interval':>8} {'delivered':>9} {'OOO':>7} {'OOO frac':>9} {'markers':>8}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{'':<11}{row.interval_rounds:>8} {row.delivered:>9} "
                f"{row.out_of_order:>7} {row.ooo_fraction:>9.4f} "
                f"{row.markers_received:>8}"
            )
        return "\n".join(lines)

    def is_monotone_enough(self, slack: float = 1.3) -> bool:
        """The paper's trend: OOO grows with the interval.

        Checks that the sparsest-marker run has markedly more OOO than the
        densest, and that the sequence is roughly non-decreasing (each step
        may regress by at most ``slack``×).
        """
        fractions = [row.ooo_fraction for row in self.rows]
        if fractions[-1] <= fractions[0]:
            return False
        running_max = 0.0
        for value in fractions:
            if running_max > 0 and value < running_max / slack:
                return False
            running_max = max(running_max, value)
        return True


def run_marker_frequency(
    intervals: Sequence[int] = DEFAULT_INTERVALS,
    loss_rate: float = 0.1,
    duration_s: float = 2.0,
    seed: int = 0,
) -> MarkerFrequencyResult:
    """Sweep the marker interval at a fixed loss rate."""
    rows: List[MarkerFrequencyRow] = []
    for interval in intervals:
        sim = Simulator()
        config = SocketTestbedConfig(
            loss_rates=(loss_rate,),
            marker_interval_rounds=interval,
            seed=seed,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=duration_s)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        stats = testbed.receiver.resequencer.stats
        rows.append(
            MarkerFrequencyRow(
                interval_rounds=interval,
                delivered=report.delivered,
                out_of_order=report.out_of_order,
                markers_received=stats.markers_received,
            )
        )
    return MarkerFrequencyResult(loss_rate=loss_rate, rows=rows)
