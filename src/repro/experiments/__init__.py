"""One module per paper table/figure, plus shared testbeds and a runner.

See DESIGN.md section 4 for the experiment index.  Run from the command
line with ``python -m repro.experiments --list``.
"""

from repro.experiments.runner import EXPERIMENTS, Experiment, run_experiment

__all__ = ["EXPERIMENTS", "Experiment", "run_experiment"]
