"""§6.3 finding 3: marker position within the round matters.

"For a given loss rate, the position of the marker packet within a round
had an effect on the number of out of order deliveries, with the minimum
number of out of order deliveries occurring when the marker was sent either
at the beginning or end of the round."

With N channels, position *k* means the marker batch is emitted when the
round-robin pointer advances into channel *k*; position 0 is the round
boundary (begin = end of the previous round).  We sweep k at a fixed loss
rate with several channels so mid-round positions exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator


@dataclass
class MarkerPositionRow:
    position: int
    delivered: int
    out_of_order: int

    @property
    def ooo_fraction(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self.out_of_order / self.delivered


@dataclass
class MarkerPositionResult:
    loss_rate: float
    n_channels: int
    rows: List[MarkerPositionRow]

    def best_position(self) -> int:
        return min(self.rows, key=lambda r: r.ooo_fraction).position

    def boundary_is_near_optimal(self, slack: float = 1.15) -> bool:
        """Position 0 (round boundary) is within ``slack``× of the best."""
        best = min(row.ooo_fraction for row in self.rows)
        boundary = next(r for r in self.rows if r.position == 0).ooo_fraction
        if best == 0:
            return boundary == 0
        return boundary <= best * slack + 1e-9

    def render(self) -> str:
        header = (
            f"loss={self.loss_rate:.0%}, {self.n_channels} channels  "
            f"{'position':>8} {'delivered':>9} {'OOO':>7} {'OOO frac':>9}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            tag = " (round boundary)" if row.position == 0 else ""
            lines.append(
                f"{'':<26}{row.position:>8} {row.delivered:>9} "
                f"{row.out_of_order:>7} {row.ooo_fraction:>9.4f}{tag}"
            )
        return "\n".join(lines)


def run_marker_position(
    n_channels: int = 4,
    positions: Optional[Sequence[int]] = None,
    loss_rate: float = 0.1,
    interval_rounds: int = 4,
    duration_s: float = 2.0,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> MarkerPositionResult:
    """Sweep the marker position; averages OOO over several seeds."""
    if positions is None:
        positions = tuple(range(n_channels))
    rows: List[MarkerPositionRow] = []
    for position in positions:
        delivered = 0
        out_of_order = 0
        for seed in seeds:
            sim = Simulator()
            config = SocketTestbedConfig(
                n_channels=n_channels,
                link_mbps=(10.0,),
                prop_delay_s=tuple(
                    0.5e-3 + 0.4e-3 * i for i in range(n_channels)
                ),
                loss_rates=(loss_rate,),
                marker_interval_rounds=interval_rounds,
                marker_position=position,
                # identical data-loss pattern for every position, so the
                # comparison isolates the marker placement
                data_only_loss=True,
                seed=seed,
            )
            testbed = build_socket_testbed(sim, config)
            sim.run(until=duration_s)
            report = analyze_order(
                testbed.delivered_seqs(), testbed.messages_sent
            )
            delivered += report.delivered
            out_of_order += report.out_of_order
        rows.append(
            MarkerPositionRow(
                position=position,
                delivered=delivered,
                out_of_order=out_of_order,
            )
        )
    return MarkerPositionResult(
        loss_rate=loss_rate, n_channels=n_channels, rows=rows
    )
