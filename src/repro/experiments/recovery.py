"""Crash-tolerant endpoints: recovery latency vs checkpoint interval.

The paper's crash prescription is one line — "We deal with sender or
receiver node crashes by doing a reset" — and :mod:`repro.transport.
recovery` upgrades it to warm recovery from durable state.  This
experiment quantifies the knob that upgrade introduces: how often the
endpoints checkpoint.  A long interval means a cheap steady state but a
long replay after a crash (everything since the checkpoint rides the WAL
and the reconciliation replay); a short interval bounds replay at the
cost of checkpoint traffic.

The rig kills the sender and the receiver mid-run (10% persistent loss
throughout, so ARQ is load-bearing at the same time), restarts each from
its last checkpoint, and measures **recovery latency**: the time from an
endpoint's restart until every message submitted before its crash has
been delivered.  A cold leg (receiver loses its checkpoint entirely and
rejoins via the sender's announce + marker resync, Theorem 5.1) is
reported alongside for contrast.

``RecoveryRig`` is deliberately importable — the kill/restart property
suites (``tests/properties/test_recovery_properties.py``) drive the same
rig under randomized crash schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.core.packet import Packet
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultSchedule,
    endpoint_crash_schedule,
    persistent_loss_schedule,
)
from repro.sim.host import EndpointCrashController
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fabric import FabricScheduler, FlowTable
from repro.transport.fast_path import FastChannelPort
from repro.transport.recovery import (
    CheckpointStore,
    ReceiverRecovery,
    SenderRecovery,
)

N_CHANNELS = 3
MESSAGE_BYTES = 500
BANDWIDTH_BPS = 8e6
PROP_DELAY = 0.5e-3
QUEUE_LIMIT = 64
KEEPALIVE_S = 0.02


class RecoveryRig:
    """Crashable striped endpoints over persistent channels.

    The channels, the checkpoint stores, the delivery log, and the
    application sequence counter all live in the rig — they survive any
    number of endpoint incarnations.  Each channel's ``on_deliver`` gets
    a *stable dispatcher* installed at construction, **before** any fault
    schedule is installed, so fault injectors wrap the dispatcher and a
    rebuilt receiver swaps in behind them (never over them).  A dead
    endpoint is represented by ``None``: arrivals while the receiver is
    down are dropped on the floor (counted), transmissions cannot happen
    because the source and pump check liveness — but packets already
    handed to a channel stay in flight; they are in the network, not in
    the host.

    Args:
        sim: the event engine.
        reliability: pipeline service level (``reliable``/``hybrid``/
            ``quasi_fifo``/...).
        checkpoint_interval_s: sender checkpoint cadence (None: only the
            post-restore collapse checkpoints happen).
        receiver_checkpoint_interval_s: receiver cadence (defaults to the
            sender's).
        with_fabric: mount a :class:`FabricScheduler` and submit via
            flow-addressed ``submit(flow_id, packet)`` round-robin over
            :attr:`flows`.
        cold_receiver: receiver restarts lose their checkpoint data
            (epoch survives — the NVRAM incarnation counter), exercising
            the cold-resync path instead of the warm one.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        reliability: str = "reliable",
        checkpoint_interval_s: Optional[float] = 0.05,
        receiver_checkpoint_interval_s: Optional[float] = None,
        n_channels: int = N_CHANNELS,
        with_fabric: bool = False,
        cold_receiver: bool = False,
    ) -> None:
        self.sim = sim
        self.reliability = reliability
        self.checkpoint_interval_s = checkpoint_interval_s
        self.receiver_checkpoint_interval_s = (
            receiver_checkpoint_interval_s
            if receiver_checkpoint_interval_s is not None
            else checkpoint_interval_s
        )
        self.n_channels = n_channels
        self.with_fabric = with_fabric
        self.cold_receiver = cold_receiver
        self.flows: Tuple[str, ...] = ("f0", "f1", "f2", "f3")

        self.channels = [
            Channel(
                sim,
                bandwidth_bps=BANDWIDTH_BPS,
                prop_delay=PROP_DELAY,
                queue_limit=QUEUE_LIMIT,
                name=f"ch{i}",
            )
            for i in range(n_channels)
        ]
        self.sender_store = CheckpointStore()
        self.receiver_store = CheckpointStore()

        #: (time, seq) for every in-order application delivery, across
        #: every receiver incarnation.
        self.deliveries: List[Tuple[float, int]] = []
        #: submission time of message ``seq`` (index == seq).
        self.submit_times: List[float] = []
        self.next_seq = 0
        self.dead_receiver_drops = 0
        self._replayed_accum = 0
        self._retransmissions_accum = 0

        self.sender: Optional[StripeSenderPipeline] = None
        self.sender_recovery: Optional[SenderRecovery] = None
        self.receiver: Optional[StripeReceiverPipeline] = None
        self.receiver_recovery: Optional[ReceiverRecovery] = None
        self._rx_handlers: Optional[List[Callable[[Any], None]]] = None

        self._build_sender()
        self._build_receiver()

        # Stable per-channel plumbing — installed once, before any fault
        # schedule wraps on_deliver.  Endpoint rebuilds swap state *behind*
        # these closures.
        for index, channel in enumerate(self.channels):
            channel.on_deliver = self._make_dispatcher(index)
            channel.on_space = self._on_space

        self.controller = EndpointCrashController(
            sim,
            kill_sender=self._kill_sender,
            build_sender=self._build_sender,
            kill_receiver=self._kill_receiver,
            build_receiver=self._restart_receiver,
        )

    # -- stable plumbing ------------------------------------------------ #

    def _make_dispatcher(self, index: int) -> Callable[[Any], None]:
        def dispatch(packet: Any) -> None:
            handlers = self._rx_handlers
            if handlers is None:
                self.dead_receiver_drops += 1
                return
            handlers[index](packet)

        return dispatch

    def _on_space(self) -> None:
        if self.sender is not None:
            self.sender._pump()

    def _control_to_receiver(self, packet: Any) -> None:
        self.sim.schedule(PROP_DELAY, self._deliver_control_rx, packet)

    def _deliver_control_rx(self, packet: Any) -> None:
        if self.receiver_recovery is not None:
            self.receiver_recovery.on_control(packet)

    def _control_to_sender(self, packet: Any) -> None:
        self.sim.schedule(PROP_DELAY, self._deliver_control_tx, packet)

    def _deliver_control_tx(self, packet: Any) -> None:
        if self.sender_recovery is not None:
            self.sender_recovery.on_control(packet)

    def _ack_path(self, ack: Any) -> None:
        self.sim.schedule(PROP_DELAY, self._deliver_ack, ack)

    def _deliver_ack(self, ack: Any) -> None:
        if self.sender_recovery is not None:
            self.sender_recovery.on_ack(ack)
        elif self.sender is not None:
            self.sender.on_ack(ack)

    def _on_message(self, packet: Any) -> None:
        self.deliveries.append((self.sim.now, packet.seq))

    # -- endpoint lifecycles -------------------------------------------- #

    def _build_sender(self) -> None:
        quanta = [float(MESSAGE_BYTES)] * self.n_channels
        ports = [FastChannelPort(ch) for ch in self.channels]
        pipeline = StripeSenderPipeline(
            ports,
            SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=self.sim,
            marker_keepalive_s=KEEPALIVE_S,
            reliability=self.reliability,
        )
        if self.with_fabric:
            pipeline.attach_fabric(FabricScheduler(FlowTable()))
        recovery = SenderRecovery(
            pipeline,
            self.sender_store,
            sim=self.sim,
            checkpoint_interval_s=self.checkpoint_interval_s,
            send_control=self._control_to_receiver,
        )
        self.sender = pipeline
        self.sender_recovery = recovery
        recovery.install()
        pipeline.pump()

    def _kill_sender(self) -> None:
        pipeline, recovery = self.sender, self.sender_recovery
        if pipeline is None:
            return
        # A crashed host takes no further actions: cancel its timers, but
        # do NOT close() — close flushes the FEC residue, and a dying
        # host gets no dying gasp.
        recovery.stop()
        self._replayed_accum += recovery.replayed_packets
        pipeline.sync.stop()
        reliable = pipeline.reliable
        if reliable is not None:
            self._retransmissions_accum += reliable.stats.retransmissions
            if reliable._timer is not None:
                reliable._timer.cancel()
                reliable._timer = None
        fec = pipeline.fec
        if fec is not None and fec._seal_timer is not None:
            fec._seal_timer.cancel()
            fec._seal_timer = None
        self.sender = None
        self.sender_recovery = None

    def _build_receiver(self) -> None:
        quanta = [float(MESSAGE_BYTES)] * self.n_channels
        pipeline = StripeReceiverPipeline(
            self.n_channels,
            SRR(quanta),
            mode="marker",
            on_message=self._on_message,
            sim=self.sim,
            reliability=self.reliability,
            send_ack=self._ack_path,
        )
        recovery = ReceiverRecovery(
            pipeline,
            self.receiver_store,
            sim=self.sim,
            checkpoint_interval_s=self.receiver_checkpoint_interval_s,
            send_control=self._control_to_sender,
        )
        self.receiver = pipeline
        self.receiver_recovery = recovery
        recovery.install()
        self._rx_handlers = [
            pipeline.channel_handler(i) for i in range(self.n_channels)
        ]

    def _restart_receiver(self) -> None:
        if self.cold_receiver:
            self.receiver_store.lose_data()
        self._build_receiver()

    def _kill_receiver(self) -> None:
        pipeline, recovery = self.receiver, self.receiver_recovery
        if pipeline is None:
            return
        recovery.stop()
        reliable = pipeline.reliable
        if reliable is not None and reliable._ack_timer is not None:
            reliable._ack_timer.cancel()
            reliable._ack_timer = None
        fec = pipeline.fec
        if fec is not None:
            if fec._skip_timer is not None:
                fec._skip_timer.cancel()
                fec._skip_timer = None
            for group in fec._groups.values():
                timer = getattr(group, "timer", None)
                if timer is not None:
                    timer.cancel()
                    group.timer = None
        self.receiver = None
        self.receiver_recovery = None
        self._rx_handlers = None

    # -- workload -------------------------------------------------------- #

    def start_source(self, interval: float, stop_at: float) -> None:
        """A paced application source; skips ticks while the sender is down.

        The rig (not the pipeline) owns sequence numbers, so numbering
        survives sender rebuilds — every accepted message gets a unique,
        monotone ``seq`` and a recorded submission time.
        """
        sim = self.sim

        def tick() -> None:
            if sim.now >= stop_at:
                return
            sender = self.sender
            if sender is not None:
                if self.with_fabric:
                    flow = self.flows[self.next_seq % len(self.flows)]
                    if sender.can_submit(flow):
                        packet = Packet(
                            size=MESSAGE_BYTES, seq=self.next_seq, flow=flow
                        )
                        if sender.submit(flow, packet):
                            self.next_seq += 1
                            self.submit_times.append(sim.now)
                elif sender.can_submit():
                    packet = Packet(size=MESSAGE_BYTES, seq=self.next_seq)
                    sender.submit_packet(packet)
                    self.next_seq += 1
                    self.submit_times.append(sim.now)
            sim.schedule(interval, tick)

        sim.schedule_at(0.0, tick)

    # -- metrics --------------------------------------------------------- #

    def delivered_seqs(self) -> List[int]:
        return [seq for _, seq in self.deliveries]

    @property
    def replayed_packets(self) -> int:
        total = self._replayed_accum
        if self.sender_recovery is not None:
            total += self.sender_recovery.replayed_packets
        return total

    @property
    def retransmissions(self) -> int:
        total = self._retransmissions_accum
        sender = self.sender
        if sender is not None and sender.reliable is not None:
            total += sender.reliable.stats.retransmissions
        return total

    def recovery_latencies(self) -> List[Optional[float]]:
        """Per completed outage: caught-up time minus restart time.

        Caught up = every message submitted before the crash has been
        delivered.  ``None`` marks an outage the run never caught up
        from (the run ended too early, or recovery genuinely failed).
        """
        ordered = sorted(self.deliveries)
        out: List[Optional[float]] = []
        for outage in self.controller.outages:
            if outage.open:
                continue
            remaining = {
                seq
                for seq, t in enumerate(self.submit_times)
                if t < outage.down_at
            }
            if not remaining:
                out.append(0.0)
                continue
            caught: Optional[float] = None
            for t, seq in ordered:
                remaining.discard(seq)
                if not remaining:
                    caught = t
                    break
            out.append(
                None if caught is None else max(0.0, caught - outage.up_at)
            )
        return out


# --------------------------------------------------------------------- #
# the experiment


@dataclass
class RecoveryPoint:
    """One checkpoint-interval sweep point (or the cold-restart leg)."""

    label: str
    checkpoint_interval_s: Optional[float]
    crashes: int
    mean_recovery_s: Optional[float]
    max_recovery_s: Optional[float]
    replayed_packets: int
    retransmissions: int
    checkpoint_bytes: int
    wal_records: int
    delivered: int
    submitted: int
    complete: bool
    in_order: bool


@dataclass
class RecoveryResult:
    points: List[RecoveryPoint] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'leg':<14} {'ckpt(s)':>8} {'crashes':>7} "
            f"{'mean rec(ms)':>12} {'max rec(ms)':>11} {'replayed':>8} "
            f"{'rtx':>6} {'ckpt(B)':>8} {'wal':>6} {'delivered':>9} "
            f"{'complete':>8} {'fifo':>5}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            interval = (
                f"{p.checkpoint_interval_s:.3f}"
                if p.checkpoint_interval_s is not None
                else "-"
            )
            mean_ms = (
                f"{p.mean_recovery_s * 1e3:.1f}"
                if p.mean_recovery_s is not None
                else "n/a"
            )
            max_ms = (
                f"{p.max_recovery_s * 1e3:.1f}"
                if p.max_recovery_s is not None
                else "n/a"
            )
            lines.append(
                f"{p.label:<14} {interval:>8} {p.crashes:>7} "
                f"{mean_ms:>12} {max_ms:>11} {p.replayed_packets:>8} "
                f"{p.retransmissions:>6} {p.checkpoint_bytes:>8} "
                f"{p.wal_records:>6} {p.delivered:>9} "
                f"{str(p.complete):>8} {str(p.in_order):>5}"
            )
        lines.append(
            "\nRecovery latency = time from an endpoint's restart until "
            "every message submitted\nbefore its crash has been delivered.  "
            "Short checkpoint intervals bound the WAL/replay\nwork; the "
            "cold leg rejoins from nothing via the resume announce + "
            "marker resync."
        )
        return "\n".join(lines)


def _run_leg(
    *,
    label: str,
    checkpoint_interval_s: Optional[float],
    cold_receiver: bool = False,
    loss_p: float = 0.10,
    source_stop: float = 0.8,
    run_until: float = 2.5,
    seed: int = 7,
) -> RecoveryPoint:
    sim = Simulator()
    rig = RecoveryRig(
        sim,
        reliability="reliable",
        checkpoint_interval_s=checkpoint_interval_s,
        cold_receiver=cold_receiver,
    )
    loss = persistent_loss_schedule(
        rig.n_channels, loss_p, start=0.0, until=source_stop
    )
    crashes = endpoint_crash_schedule(
        [(0.20, "sender"), (0.45, "receiver")], outage=0.05
    )
    schedule = FaultSchedule(tuple(loss.events) + tuple(crashes.events))
    rig.start_source(interval=0.4e-3, stop_at=source_stop)
    schedule.install(sim, rig.channels, seed=seed, endpoints=rig.controller)
    sim.run(until=run_until)

    delivered = rig.delivered_seqs()
    latencies = [lat for lat in rig.recovery_latencies() if lat is not None]
    submitted = rig.next_seq
    if cold_receiver:
        # Cold restarts lose delivery history by definition; completeness
        # and ordering are judged from the adopted base onward.
        post = [
            seq for t, seq in sorted(rig.deliveries) if t > 0.45 + 0.05
        ]
        complete = len(post) > 0
        in_order = post == sorted(post)
    else:
        complete = set(delivered) == set(range(submitted))
        in_order = delivered == sorted(set(delivered))
    return RecoveryPoint(
        label=label,
        checkpoint_interval_s=checkpoint_interval_s,
        crashes=rig.controller.total_crashes,
        mean_recovery_s=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        max_recovery_s=max(latencies) if latencies else None,
        replayed_packets=rig.replayed_packets,
        retransmissions=rig.retransmissions,
        checkpoint_bytes=rig.sender_store.checkpoint_bytes
        + rig.receiver_store.checkpoint_bytes,
        wal_records=rig.sender_store.wal_records
        + rig.receiver_store.wal_records,
        delivered=len(delivered),
        submitted=submitted,
        complete=complete,
        in_order=in_order,
    )


def run_recovery(
    quick: bool = False,
    intervals: Optional[Tuple[float, ...]] = None,
) -> RecoveryResult:
    """Sweep the checkpoint interval; append the cold-restart leg."""
    if intervals is None:
        intervals = (0.02, 0.1) if quick else (0.01, 0.025, 0.05, 0.1, 0.2)
    result = RecoveryResult()
    for interval in intervals:
        result.points.append(
            _run_leg(
                label=f"warm/{interval:g}",
                checkpoint_interval_s=interval,
            )
        )
    result.points.append(
        _run_leg(
            label="cold-receiver",
            checkpoint_interval_s=0.05,
            cold_receiver=True,
        )
    )
    return result
