"""Striping over TCP connections (§2's transport-channel suggestion).

Measures the configuration the paper proposes for hosts with "intelligent"
adaptors: the application stream striped across N TCP connections, one per
physical link.  Because each channel is reliable and FIFO, plain logical
reception yields **guaranteed** FIFO delivery — the quasi-FIFO caveat and
the whole marker apparatus vanish (compare Table 1's with-header rows).

Reported per channel count: aggregate goodput, FIFO check, and the per-
channel TCP retransmission totals when the links are lossy (losses are
repaired inside the channels, invisible to the striping layer).

A caveat this experiment surfaces (and that the paper's clean-LAN setting
sidesteps): on *lossy* links, any one channel's TCP recovery stalls the
whole striped stream — logical reception must wait for that channel's
in-order bytes — so scaling turns sub-linear (reliable channels trade the
quasi-FIFO caveat for cross-channel head-of-line blocking during
recovery).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.srr import SRR
from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.sim.engine import Simulator
from repro.sim.loss import BernoulliLoss
from repro.transport.tcp import TcpLayer
from repro.transport.tcp_striping import StripedTcpReceiver, StripedTcpSender
from repro.workloads.generators import ClosedLoopSource, RandomMixSizes


def build_tcp_striped(
    sim: Simulator,
    n_channels: int = 2,
    link_mbps: float = 10.0,
    loss: float = 0.0,
    message_sizes: Sequence[int] = (200, 1000, 1460),
    seed: int = 0,
    failure_detector=None,
    closed_loop: bool = True,
    discipline: str | None = None,
    discipline_options: dict | None = None,
) -> Tuple[StripedTcpSender, StripedTcpReceiver, list]:
    """Two hosts, one link per TCP channel, closed-loop striped stream.

    With ``closed_loop=False`` no source is created; the caller paces
    submissions (e.g. through an attached fabric).  ``discipline`` swaps
    the default SRR for any registry discipline on both ends (both halves
    resolve the same name, so the receiver mode follows automatically).
    """
    s = Stack(sim, "S")
    r = Stack(sim, "R")
    dst_ips = []
    links = []
    for index in range(n_channels):
        ia = EthernetInterface(sim, f"t{index}s", f"10.{70 + index}.0.1")
        ib = EthernetInterface(sim, f"t{index}r", f"10.{70 + index}.0.2")
        s.add_interface(ia)
        r.add_interface(ib)
        loss_model = (
            BernoulliLoss(loss, rng=random.Random(seed * 31 + index))
            if loss else None
        )
        links.append(Link(
            sim, ia, ib, bandwidth_bps=link_mbps * 1e6, prop_delay=0.5e-3,
            queue_limit=40, loss_ab=loss_model, name=f"tcpch{index}",
        ))
        s.routing.add(f"10.{70 + index}.0.2", 24, ia)
        r.routing.add(f"10.{70 + index}.0.1", 24, ib)
        ia.arp_cache.install(ib.ip_address, ib.mac)
        ib.arp_cache.install(ia.ip_address, ia.mac)
        dst_ips.append(f"10.{70 + index}.0.2")
    ts = TcpLayer(s, sim)
    tr = TcpLayer(r, sim)
    def spec():
        if discipline is not None:
            return discipline
        return SRR([1000.0] * n_channels)

    receiver = StripedTcpReceiver(
        tr, n_channels, spec(),
        failure_detector=failure_detector,
        discipline_options=discipline_options,
    )
    sender = StripedTcpSender(
        ts, dst_ips[0], n_channels, spec(),
        dst_ips=dst_ips,
        discipline_options=discipline_options,
    )
    sender.start()
    if closed_loop:
        sizes = RandomMixSizes(message_sizes, rng=random.Random(seed))
        source = ClosedLoopSource(
            sim, sender.submit_packet, lambda: sender.backlog, sizes,
            target=12,
        )
        source.start()
    return sender, receiver, links


@dataclass
class TcpChannelsRow:
    n_channels: int
    loss_rate: float
    goodput_mbps: float
    delivered: int
    fifo: bool
    channel_retransmits: int

    def render(self) -> str:
        return (
            f"{self.n_channels:>4} {self.loss_rate:>6.2f} "
            f"{self.goodput_mbps:>8.2f} {self.delivered:>9} "
            f"{'yes' if self.fifo else 'NO':>5} "
            f"{self.channel_retransmits:>8}"
        )


@dataclass
class TcpChannelsResult:
    rows: List[TcpChannelsRow]

    def render(self) -> str:
        header = (
            f"{'N':>4} {'loss':>6} {'Mbps':>8} {'delivered':>9} "
            f"{'FIFO':>5} {'rexmits':>8}"
        )
        return "\n".join(
            [header, "-" * len(header)] + [row.render() for row in self.rows]
        )


def run_tcp_channels(
    channel_counts: Sequence[int] = (1, 2, 4),
    loss_rates: Sequence[float] = (0.0, 0.03),
    duration_s: float = 2.0,
    link_mbps: float = 10.0,
) -> TcpChannelsResult:
    """Sweep channel count × loss rate for TCP-channel striping."""
    rows: List[TcpChannelsRow] = []
    for loss in loss_rates:
        for n in channel_counts:
            sim = Simulator()
            sender, receiver, _ = build_tcp_striped(
                sim, n_channels=n, link_mbps=link_mbps, loss=loss,
            )
            sim.run(until=duration_s)
            seqs = [p.seq for p in receiver.delivered]
            goodput = (
                sum(p.size for p in receiver.delivered)
                * 8 / duration_s / 1e6
            )
            rows.append(
                TcpChannelsRow(
                    n_channels=n,
                    loss_rate=loss,
                    goodput_mbps=goodput,
                    delivered=len(seqs),
                    fifo=seqs == sorted(seqs),
                    channel_retransmits=sum(
                        c.retransmits for c in sender.connections
                    ),
                )
            )
    return TcpChannelsResult(rows)
