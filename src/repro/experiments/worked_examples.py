"""Exact reproductions of the paper's worked examples.

* Figures 2 & 3 — the fair-queuing / load-sharing duality on the
  six-packet example (a..f).
* Figures 5 & 6 — the SRR deficit-counter trace on the same example with
  quantum 500.
* Figures 7–13 — the marker synchronization-recovery walkthrough: two
  equal channels, unit packets, packet 7 lost, a marker with G=7
  resynchronizing the receiver.

These run the *real* implementation (striper, resequencer, marker
machinery) on the paper's inputs and compare against the packet-for-packet
sequences printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.cfq import fq_service_order
from repro.core.kernel import SRRKernel
from repro.core.markers import SRRReceiver
from repro.core.packet import Packet, is_marker
from repro.core.srr import SRR
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer, stripe_sequence


def paper_example_queues() -> Tuple[List[Packet], List[Packet]]:
    """Figure 2's input queues: a(550) b(150) c(300) and d(200) e(400) f(400)."""
    queue1 = [
        Packet(550, label="a"),
        Packet(150, label="b"),
        Packet(300, label="c"),
    ]
    queue2 = [
        Packet(200, label="d"),
        Packet(400, label="e"),
        Packet(400, label="f"),
    ]
    return queue1, queue2


#: The service order the paper's Figure 5 DC trace produces.
PAPER_FQ_ORDER = ["a", "d", "e", "b", "c", "f"]


@dataclass
class Fig2_3Result:
    fq_order: List[str]
    ls_channel_contents: List[List[str]]
    duality_holds: bool

    def render(self) -> str:
        return "\n".join(
            [
                f"FQ service order (Figure 2):   {' '.join(self.fq_order)}",
                f"LS channel 1 (Figure 3):       {' '.join(self.ls_channel_contents[0])}",
                f"LS channel 2 (Figure 3):       {' '.join(self.ls_channel_contents[1])}",
                f"time-reversal duality holds:   {self.duality_holds}",
            ]
        )


def run_fig2_3() -> Fig2_3Result:
    """Check the FQ↔LS duality: striping the FQ output recreates the queues."""
    queue1, queue2 = paper_example_queues()
    algorithm = SRR([500.0, 500.0])
    fq_order = fq_service_order(algorithm, [queue1, queue2])

    # Load sharing on the FQ output (Figure 3's input queue)...
    sharer = TransformedLoadSharer(SRR([500.0, 500.0]))
    channels = stripe_sequence(sharer, fq_order)
    # ...must land each packet back on its original queue, in order.
    duality = [p.label for p in channels[0]] == [p.label for p in queue1] and [
        p.label for p in channels[1]
    ] == [p.label for p in queue2]
    return Fig2_3Result(
        fq_order=[p.label or "?" for p in fq_order],
        ls_channel_contents=[[p.label or "?" for p in c] for c in channels],
        duality_holds=duality,
    )


@dataclass
class Fig5_6Result:
    order: List[str]
    dc_trace: List[Tuple[str, int, float]]  # (label, channel, DC after send)
    matches_paper: bool

    def render(self) -> str:
        lines = [f"service order: {' '.join(self.order)} "
                 f"(paper: {' '.join(PAPER_FQ_ORDER)})"]
        for label, channel, dc in self.dc_trace:
            lines.append(f"  send {label}: channel {channel + 1}, DC -> {dc:g}")
        lines.append(f"matches paper: {self.matches_paper}")
        return "\n".join(lines)


def run_fig5_6() -> Fig5_6Result:
    """Trace the SRR deficit counters through the worked example."""
    queue1, queue2 = paper_example_queues()
    algorithm = SRR([500.0, 500.0])
    order = fq_service_order(algorithm, [queue1, queue2])

    trace: List[Tuple[str, int, float]] = []
    kernel = SRRKernel(algorithm)
    for packet in order:
        channel = kernel.step(packet.size)
        trace.append((packet.label or "?", channel, kernel.dc[channel]))

    # Paper DC values after each send: a: -50, d: 300, e: -100, b: 300,
    # c: 0, f: 0 (Figure 5).
    expected = [
        ("a", 0, -50.0),
        ("d", 1, 300.0),
        ("e", 1, -100.0),
        ("b", 0, 300.0),
        ("c", 0, 0.0),
        ("f", 1, 0.0),
    ]
    matches = (
        [p.label for p in order] == PAPER_FQ_ORDER
        and [(l, c, d) for l, c, d in trace] == expected
    )
    return Fig5_6Result(
        order=[p.label or "?" for p in order],
        dc_trace=trace,
        matches_paper=matches,
    )


#: Delivery order the paper's Figures 9-13 show: FIFO through packet 6,
#: misordered 9 8 11 10 during desynchronization, 12 while the marker's
#: skip is pending on the other channel, then FIFO from 13 after recovery.
PAPER_FIG8_13_DELIVERY = [1, 2, 3, 4, 5, 6, 9, 8, 11, 10, 12, 13, 14, 15, 16, 17, 18]


@dataclass
class Fig8_13Result:
    channel_streams: List[List[str]]
    delivered: List[int]
    matches_paper: bool
    skips: int

    def render(self) -> str:
        lines = [
            f"channel 1 stream: {' '.join(self.channel_streams[0])}",
            f"channel 2 stream: {' '.join(self.channel_streams[1])}",
            f"delivered: {' '.join(str(s) for s in self.delivered)}",
            f"paper:     {' '.join(str(s) for s in PAPER_FIG8_13_DELIVERY)}",
            f"channel skips: {self.skips}",
            f"matches paper: {self.matches_paper}",
        ]
        return "\n".join(lines)


def run_fig8_13() -> Fig8_13Result:
    """The marker-recovery walkthrough with packet 7 lost.

    Unit packets on two equal channels (SRR reduces to RR), markers every
    6 rounds at the round boundary — so exactly one marker batch is
    emitted before round 7, carrying G=7, as in Figure 12.
    """
    size = 100
    algorithm = SRR([float(size), float(size)])
    sharer = TransformedLoadSharer(algorithm)
    ports = [ListPort(), ListPort()]
    striper = Striper(
        sharer,
        ports,
        MarkerPolicy(interval_rounds=6, position=0, initial_markers=False),
    )
    packets = [Packet(size, seq=n, label=str(n)) for n in range(1, 19)]
    for packet in packets:
        striper.submit(packet)

    # Channel 1 loses packet 7 (Figure 10).
    def lose_7(stream):
        return [
            p for p in stream if is_marker(p) or p.seq != 7
        ]

    streams = [lose_7(ports[0].sent), list(ports[1].sent)]

    receiver = SRRReceiver(algorithm)
    delivered: List[int] = []
    receiver.on_deliver = lambda p: delivered.append(p.seq)
    # Arrival interleaving is irrelevant to logical order; alternate.
    longest = max(len(s) for s in streams)
    for i in range(longest):
        for channel, stream in enumerate(streams):
            if i < len(stream):
                receiver.push(channel, stream[i])

    labels = [
        ["M" if is_marker(p) else str(p.seq) for p in s] for s in streams
    ]
    return Fig8_13Result(
        channel_streams=labels,
        delivered=delivered,
        matches_paper=delivered == PAPER_FIG8_13_DELIVERY,
        skips=receiver.stats.channel_skips,
    )
