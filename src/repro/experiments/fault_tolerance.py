"""Fault-tolerance experiments (extensions the paper sketches in §5).

The paper: "It is also possible to make the marker algorithm
self-stabilizing ... by periodically running a snapshot and then doing a
reset.  We deal with sender or receiver node crashes by doing a reset."
Section 1 also lists resilience to "link crashes" as a design goal.  These
experiments exercise the session-control implementation of those ideas:

* ``link_failure`` — one of three channels dies mid-run.  Without fault
  handling, logical reception head-of-line blocks on the dead channel and
  delivery stops; with the failure detector + reconfiguration reset, the
  stream continues on the survivors at ~2/3 rate.
* ``state_corruption`` — the receiver's global round is corrupted mid-run
  while channel loss is ongoing.  Markers alone cannot restore condition
  C1 (the receiver never skips when its round runs ahead), so reordering
  persists; the local checker detects the divergence and a reset corrects
  it.
* ``capacity_adaptation`` — one channel's rate drops 4×.  Static quanta
  bottleneck the whole bundle on the slow channel; the quanta adapter
  re-estimates weights from queue pressure and reconfigures via reset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis.reorder import analyze_order
from repro.core.session import LocalChecker, StripeConfig
from repro.core.striper import MarkerPolicy
from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.sim.engine import Simulator
from repro.sim.loss import BernoulliLoss
from repro.transport.session_striping import (
    ChannelFailureDetector,
    SessionSocketReceiver,
    SessionSocketSender,
)
from repro.workloads.generators import ClosedLoopSource, ConstantSizes

BASE_PORT = 6100
CONTROL_PORT = 6900


@dataclass
class SessionTestbed:
    sim: Simulator
    sender: SessionSocketSender
    receiver: SessionSocketReceiver
    source: Optional[ClosedLoopSource]
    links: List[Link]
    loss_models: List[BernoulliLoss]
    deliveries: List[Tuple[float, int]] = field(default_factory=list)

    def delivered_between(self, start: float, end: float) -> List[int]:
        return [seq for t, seq in self.deliveries if start <= t < end]

    def goodput_mbps(self, start: float, end: float, message_bytes: int) -> float:
        count = len(self.delivered_between(start, end))
        return count * message_bytes * 8 / (end - start) / 1e6


def build_session_testbed(
    sim: Simulator,
    n_channels: int = 2,
    link_mbps: Sequence[float] = (10.0, 10.0),
    loss_rates: Sequence[float] = (0.0, 0.0),
    message_bytes: int = 1000,
    quanta: Optional[Sequence[float]] = None,
    checker: Optional[LocalChecker] = None,
    failure_detector: Optional[ChannelFailureDetector] = None,
    queue_frames: int = 40,
    seed: int = 0,
    health_monitor: Optional[Any] = None,
    enable_prober: bool = False,
    prober_options: Optional[dict] = None,
    reliability: str = "quasi_fifo",
    reliability_options: Optional[dict] = None,
    closed_loop: bool = True,
    discipline: Optional[str] = None,
    discipline_options: Optional[dict] = None,
) -> SessionTestbed:
    """Two hosts, N links, session-managed striped UDP, closed-loop source.

    With ``closed_loop=False`` no source is created; the caller paces
    submissions (e.g. through an attached fabric).  ``discipline`` swaps
    the paper's SRR for any registry discipline on both ends (marker-free
    ones run without markers and without a resequencer).
    """
    link_mbps = list(link_mbps)
    loss_rates = list(loss_rates)
    if len(link_mbps) == 1:
        link_mbps *= n_channels
    if len(loss_rates) == 1:
        loss_rates *= n_channels
    sender_stack = Stack(sim, "S")
    receiver_stack = Stack(sim, "R")
    links: List[Link] = []
    loss_models: List[BernoulliLoss] = []
    destinations = []
    rng = random.Random(seed)
    for index in range(n_channels):
        s_ip = f"10.{30 + index}.0.1"
        r_ip = f"10.{30 + index}.0.2"
        s_if = EthernetInterface(sim, f"ch{index}s", s_ip)
        r_if = EthernetInterface(sim, f"ch{index}r", r_ip)
        sender_stack.add_interface(s_if)
        receiver_stack.add_interface(r_if)
        loss = BernoulliLoss(
            loss_rates[index], rng=random.Random(rng.randrange(1 << 30))
        )
        loss_models.append(loss)
        links.append(
            Link(
                sim, s_if, r_if,
                bandwidth_bps=link_mbps[index] * 1e6,
                prop_delay=0.5e-3,
                queue_limit=queue_frames,
                loss_ab=loss,
                name=f"channel{index}",
            )
        )
        sender_stack.routing.add(r_ip, 24, s_if)
        receiver_stack.routing.add(s_ip, 24, r_if)
        s_if.arp_cache.install(r_if.ip_address, r_if.mac)
        r_if.arp_cache.install(s_if.ip_address, s_if.mac)
        destinations.append((r_ip, BASE_PORT + index))

    config = StripeConfig(
        quanta=tuple(quanta) if quanta else tuple([float(message_bytes)] * n_channels)
    )
    arq_options = reliability_options or {}
    sender = SessionSocketSender(
        sim, sender_stack, destinations, config,
        marker_policy=MarkerPolicy(interval_rounds=1),
        control_port=CONTROL_PORT,
        health_monitor=health_monitor,
        enable_prober=enable_prober,
        prober_options=prober_options,
        reliability=reliability,
        reliability_options=arq_options.get("sender"),
        discipline=discipline,
        discipline_options=discipline_options,
    )
    deliveries: List[Tuple[float, int]] = []
    receiver = SessionSocketReceiver(
        sim, receiver_stack, n_channels, config,
        base_port=BASE_PORT,
        control_to="10.30.0.1",
        control_port=CONTROL_PORT,
        on_message=lambda p: deliveries.append((sim.now, p.seq)),
        checker=checker,
        failure_detector=failure_detector,
        reliability=reliability,
        reliability_options=arq_options.get("receiver"),
        discipline=discipline,
        discipline_options=discipline_options,
    )

    def submit_backlog() -> int:
        # A full ARQ window reads as "backlogged" so the closed-loop
        # source honors the retransmission buffer's backpressure.
        if not sender.can_submit():
            return 1 << 30
        return sender.backlog

    source: Optional[ClosedLoopSource] = None
    if closed_loop:
        source = ClosedLoopSource(
            sim,
            submit=sender.submit_packet,
            backlog_fn=submit_backlog,
            size_fn=ConstantSizes(message_bytes),
            target=16,
        )
        source.start()

    def wake() -> None:
        sender.pump()
        if source is not None:
            source.poke()

    for link in links:
        link.ab.on_space = wake
    if sender.reliable is not None and sender.reliable.on_window_open is None:
        sender.reliable.on_window_open = wake

    return SessionTestbed(
        sim=sim, sender=sender, receiver=receiver, source=source,
        links=links, loss_models=loss_models, deliveries=deliveries,
    )


# ---------------------------------------------------------------------- #
# link failure


@dataclass
class LinkFailureResult:
    with_detector: bool
    goodput_before: float
    goodput_after: float
    resets: int
    surviving_channels: int

    def render_row(self) -> str:
        mode = "detector+reset" if self.with_detector else "no fault handling"
        return (
            f"  {mode:>18}: before {self.goodput_before:5.2f} Mbps, "
            f"after {self.goodput_after:5.2f} Mbps "
            f"(resets={self.resets}, channels={self.surviving_channels})"
        )


@dataclass
class LinkFailureExperiment:
    rows: List[LinkFailureResult]

    def render(self) -> str:
        lines = ["link failure at t=0.8s (channel 1 of 3 goes dark):"]
        lines += [row.render_row() for row in self.rows]
        return "\n".join(lines)


def run_link_failure(
    fail_at: float = 0.8,
    total_s: float = 2.5,
    message_bytes: int = 1000,
) -> LinkFailureExperiment:
    """Kill one of three channels; compare with and without fault handling."""
    rows: List[LinkFailureResult] = []
    for with_detector in (False, True):
        sim = Simulator()
        detector = (
            ChannelFailureDetector(sim, silence_threshold=0.2)
            if with_detector else None
        )
        testbed = build_session_testbed(
            sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.0,),
            message_bytes=message_bytes, failure_detector=detector,
        )
        # The channel dies: everything sent on it vanishes.
        sim.schedule_at(
            fail_at, lambda tb=testbed: setattr(tb.loss_models[1], "p", 1.0)
        )
        sim.run(until=total_s)
        rows.append(
            LinkFailureResult(
                with_detector=with_detector,
                goodput_before=testbed.goodput_mbps(
                    0.2, fail_at, message_bytes
                ),
                goodput_after=testbed.goodput_mbps(
                    fail_at + 0.5, total_s, message_bytes
                ),
                resets=testbed.receiver.session.resets_seen,
                surviving_channels=len(
                    testbed.receiver.session.config.active_channels
                ),
            )
        )
    return LinkFailureExperiment(rows)


# ---------------------------------------------------------------------- #
# state corruption / self-stabilization


@dataclass
class CorruptionResult:
    with_checker: bool
    ooo_before: int
    ooo_after_window: int
    violations: int
    resets: int

    def render_row(self) -> str:
        mode = "local checking" if self.with_checker else "markers only"
        return (
            f"  {mode:>15}: OOO before corruption {self.ooo_before}, "
            f"OOO in final window {self.ooo_after_window} "
            f"(violations={self.violations}, resets={self.resets})"
        )


@dataclass
class CorruptionExperiment:
    rows: List[CorruptionResult]

    def render(self) -> str:
        lines = [
            "receiver global-round corruption at t=0.8s, 10% ongoing loss:",
        ]
        lines += [row.render_row() for row in self.rows]
        return "\n".join(lines)


def run_state_corruption(
    corrupt_at: float = 0.8,
    total_s: float = 3.0,
    loss_rate: float = 0.1,
    message_bytes: int = 1000,
) -> CorruptionExperiment:
    """Corrupt the receiver's round counter under ongoing loss."""
    rows: List[CorruptionResult] = []
    for with_checker in (False, True):
        sim = Simulator()
        checker = LocalChecker(window_rounds=60) if with_checker else None
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0,),
            loss_rates=(loss_rate,),
            message_bytes=message_bytes, checker=checker,
        )

        def corrupt(tb=testbed):
            tb.receiver.session.receiver.round_number += 10_000

        sim.schedule_at(corrupt_at, corrupt)
        sim.run(until=total_s)

        before = analyze_order(testbed.delivered_between(0.0, corrupt_at))
        final = analyze_order(
            testbed.delivered_between(total_s - 1.0, total_s)
        )
        rows.append(
            CorruptionResult(
                with_checker=with_checker,
                ooo_before=before.out_of_order,
                ooo_after_window=final.out_of_order,
                violations=checker.violations if checker else 0,
                resets=testbed.receiver.session.resets_seen,
            )
        )
    return CorruptionExperiment(rows)


# ---------------------------------------------------------------------- #
# capacity adaptation


class QuantaAdapter:
    """Sender-side weight adapter driven by queue pressure.

    Every ``interval`` seconds it inspects the active ports' transmit
    queues; if one is saturated while another is near-empty, the quanta are
    re-estimated from the byte drain per channel since the last check and
    installed via a reconfiguration reset.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: SessionSocketSender,
        links: Sequence[Link],
        interval: float = 0.2,
        min_quantum: float = 1000.0,
        cooldown: float = 0.4,
    ) -> None:
        self.sim = sim
        self.sender = sender
        self.links = list(links)
        self.interval = interval
        self.min_quantum = min_quantum
        self.cooldown = cooldown
        self.adaptations = 0
        self._last_bytes = [0] * len(self.links)
        self._last_busy = [0.0] * len(self.links)
        self._last_adapt = -1e9
        sim.schedule(interval, self._tick)

    def _estimate_rates(self, active) -> Optional[List[float]]:
        """Per-channel line rate from the sender's own egress statistics:
        bytes delivered per second of transmitter busy time — independent
        of how much the striper offered each channel."""
        rates: List[float] = []
        for index in active:
            stats = self.links[index].ab.stats
            delta_bytes = stats.delivered_bytes - self._last_bytes[index]
            delta_busy = stats.busy_time - self._last_busy[index]
            self._last_bytes[index] = stats.delivered_bytes
            self._last_busy[index] = stats.busy_time
            if delta_busy <= 1e-6 or delta_bytes <= 0:
                return None  # not enough signal this interval
            rates.append(delta_bytes / delta_busy)
        return rates

    def _tick(self) -> None:
        session = self.sender.session
        if session.state == session.RUNNING:
            active = session.config.active_channels
            rates = self._estimate_rates(active)
            queues = [self.sender.ports[i].queue_length for i in active]
            imbalanced = max(queues) >= 30 and min(queues) <= 2
            if (
                rates is not None
                and imbalanced
                and self.sim.now - self._last_adapt > self.cooldown
            ):
                slowest = min(rates)
                quanta = tuple(
                    max(self.min_quantum, round(self.min_quantum * r / slowest))
                    for r in rates
                )
                current = session.config.quanta
                changed = any(
                    abs(a - b) / b > 0.25 for a, b in zip(quanta, current)
                )
                if changed:
                    self._last_adapt = self.sim.now
                    self.adaptations += 1
                    session.initiate_reset(
                        StripeConfig(quanta=quanta, active_channels=active)
                    )
        self.sim.schedule(self.interval, self._tick)


@dataclass
class AdaptationResult:
    adaptive: bool
    goodput_before: float
    goodput_after: float
    adaptations: int
    final_quanta: Tuple[float, ...]

    def render_row(self) -> str:
        mode = "adaptive quanta" if self.adaptive else "static quanta"
        quanta = "/".join(f"{q:.0f}" for q in self.final_quanta)
        return (
            f"  {mode:>15}: before {self.goodput_before:5.2f} Mbps, "
            f"after {self.goodput_after:5.2f} Mbps "
            f"(adaptations={self.adaptations}, quanta={quanta})"
        )


@dataclass
class AdaptationExperiment:
    rows: List[AdaptationResult]

    def render(self) -> str:
        lines = ["channel 1 rate drops 10 -> 2.5 Mbps at t=1.0s:"]
        lines += [row.render_row() for row in self.rows]
        return "\n".join(lines)


def run_capacity_adaptation(
    change_at: float = 1.0,
    total_s: float = 4.0,
    message_bytes: int = 1000,
) -> AdaptationExperiment:
    """Halve-and-halve-again one channel's rate; adapt quanta via resets."""
    rows: List[AdaptationResult] = []
    for adaptive in (False, True):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0, 10.0), loss_rates=(0.0,),
            message_bytes=message_bytes,
        )
        adapter = (
            QuantaAdapter(sim, testbed.sender, testbed.links)
            if adaptive else None
        )
        sim.schedule_at(
            change_at,
            lambda tb=testbed: tb.links[1].set_rate(2.5e6),
        )
        sim.run(until=total_s)
        rows.append(
            AdaptationResult(
                adaptive=adaptive,
                goodput_before=testbed.goodput_mbps(
                    0.3, change_at, message_bytes
                ),
                goodput_after=testbed.goodput_mbps(
                    total_s - 1.5, total_s, message_bytes
                ),
                adaptations=adapter.adaptations if adapter else 0,
                final_quanta=testbed.sender.session.config.quanta,
            )
        )
    return AdaptationExperiment(rows)


@dataclass
class FaultToleranceReport:
    link_failure: LinkFailureExperiment
    corruption: CorruptionExperiment
    adaptation: AdaptationExperiment

    def render(self) -> str:
        return "\n\n".join(
            [
                self.link_failure.render(),
                self.corruption.render(),
                self.adaptation.render(),
            ]
        )


def run_fault_tolerance(quick: bool = False) -> FaultToleranceReport:
    """All three fault-tolerance scenarios."""
    if quick:
        return FaultToleranceReport(
            link_failure=run_link_failure(total_s=1.8),
            corruption=run_state_corruption(total_s=2.0),
            adaptation=run_capacity_adaptation(total_s=3.0),
        )
    return FaultToleranceReport(
        link_failure=run_link_failure(),
        corruption=run_state_corruption(),
        adaptation=run_capacity_adaptation(),
    )
