"""Figure 15: application-level throughput vs ATM PVC capacity.

For each PVC rate the paper plots seven quantities; we regenerate all of
them:

1. **Sum of Ethernet and ATM throughputs** — each interface measured alone
   (only one interface active at a time), then summed: the upper bound.
2. **SRR, logical reception** — the strIPe protocol.
3. **SRR, no logical reception** — resequencing disabled.
4. **GRR, logical reception**.
5. **GRR, no logical reception**.
6. **RR, logical reception**.
7. **RR, no logical reception**.

Expected shape (paper, section 6.2): the upper bound rises with the PVC
rate then stops rising (receiver CPU saturates); strIPe tracks the upper
bound until ≈14 Mbps then flattens (striping doubles the interrupt rate);
each no-resequencing variant sits below its logical-reception counterpart
(TCP misinterprets reordering); RR is capped by the slower Ethernet link
and goes flat once the PVC outruns it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.topology import (
    R_ATM_IP,
    R_ETH_IP,
    SCHEME_GRR,
    SCHEME_RR,
    SCHEME_SRR,
    TestbedConfig,
    measure_tcp_goodput,
)
from repro.net.stripe import RESEQ_MARKER, RESEQ_NONE

#: PVC rates swept in the figure (Mbps); the paper's x-axis runs 3.8-23.8.
DEFAULT_ATM_RATES = (3.8, 7.6, 13.8, 17.8, 23.8)

VARIANTS = (
    ("srr_lr", SCHEME_SRR, RESEQ_MARKER),
    ("srr_nolr", SCHEME_SRR, RESEQ_NONE),
    ("grr_lr", SCHEME_GRR, RESEQ_MARKER),
    ("grr_nolr", SCHEME_GRR, RESEQ_NONE),
    ("rr_lr", SCHEME_RR, RESEQ_MARKER),
    ("rr_nolr", SCHEME_RR, RESEQ_NONE),
)


@dataclass
class Figure15Row:
    """One x-axis point of Figure 15."""

    atm_mbps: float
    upper_bound: float
    eth_alone: float
    atm_alone: float
    variants: Dict[str, float] = field(default_factory=dict)

    def as_table_row(self) -> List[float]:
        return [
            self.atm_mbps,
            self.upper_bound,
            self.variants.get("srr_lr", 0.0),
            self.variants.get("srr_nolr", 0.0),
            self.variants.get("grr_lr", 0.0),
            self.variants.get("grr_nolr", 0.0),
            self.variants.get("rr_lr", 0.0),
            self.variants.get("rr_nolr", 0.0),
        ]


@dataclass
class Figure15Result:
    rows: List[Figure15Row]

    def series(self, name: str) -> List[float]:
        if name == "upper_bound":
            return [row.upper_bound for row in self.rows]
        return [row.variants[name] for row in self.rows]

    def render(self, chart: bool = True) -> str:
        header = (
            f"{'ATM Mbps':>9} {'upper':>7} {'SRR+LR':>7} {'SRR-LR':>7} "
            f"{'GRR+LR':>7} {'GRR-LR':>7} {'RR+LR':>7} {'RR-LR':>7}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            values = row.as_table_row()
            lines.append(
                f"{values[0]:>9.1f} " + " ".join(f"{v:>7.2f}" for v in values[1:])
            )
        text = "\n".join(lines)
        if chart and len(self.rows) >= 2:
            from repro.analysis.ascii_chart import Series, render_chart

            x = [row.atm_mbps for row in self.rows]
            text += "\n\n" + render_chart(
                x,
                [
                    # draw order = overdraw priority: SRR+LR last so the
                    # headline curve stays visible where GRR coincides
                    Series("upper bound", "*", self.series("upper_bound")),
                    Series("SRR-noLR", "s", self.series("srr_nolr")),
                    Series("RR+LR", "R", self.series("rr_lr")),
                    Series("GRR+LR", "G", self.series("grr_lr")),
                    Series("SRR+LR", "S", self.series("srr_lr")),
                ],
                y_label="Mbps",
                x_label="ATM PVC capacity (Mbps)",
            )
        return text


def run_figure15(
    atm_rates_mbps: Sequence[float] = DEFAULT_ATM_RATES,
    duration_s: float = 4.0,
    warmup_s: float = 1.0,
    base_config: Optional[TestbedConfig] = None,
) -> Figure15Result:
    """Regenerate Figure 15.

    ``duration_s``/``warmup_s`` trade fidelity for run time; the defaults
    are laptop-scale (tens of seconds of wall clock).
    """
    base = base_config if base_config is not None else TestbedConfig()
    rows: List[Figure15Row] = []
    for atm_mbps in atm_rates_mbps:
        # --- upper bound: each interface alone ---------------------------
        eth_alone = measure_tcp_goodput(
            replace(base, atm_mbps=atm_mbps, stripe_scheme=None),
            R_ETH_IP, duration_s, warmup_s,
        )["goodput_mbps"]
        atm_alone = measure_tcp_goodput(
            replace(base, atm_mbps=atm_mbps, stripe_scheme=None),
            R_ATM_IP, duration_s, warmup_s,
        )["goodput_mbps"]
        row = Figure15Row(
            atm_mbps=atm_mbps,
            upper_bound=eth_alone + atm_alone,
            eth_alone=eth_alone,
            atm_alone=atm_alone,
        )
        # --- the six striping variants -----------------------------------
        for name, scheme, reseq in VARIANTS:
            config = replace(
                base,
                atm_mbps=atm_mbps,
                stripe_scheme=scheme,
                resequencing=reseq,
            )
            result = measure_tcp_goodput(config, R_ETH_IP, duration_s, warmup_s)
            row.variants[name] = result["goodput_mbps"]
        rows.append(row)
    return Figure15Result(rows)


def check_figure15_shape(result: Figure15Result) -> List[str]:
    """Assertable shape properties from the paper; returns violations.

    * strIPe (SRR+LR) beats every other striping variant on average.
    * Each no-LR variant is below its LR counterpart on average.
    * RR stops scaling: its goodput at the highest PVC rate is not much
      better than at the point where the PVC matches Ethernet.
    * SRR+LR tracks the upper bound at low PVC rates (within 25%).
    """
    problems: List[str] = []
    rows = result.rows

    def mean(name: str) -> float:
        return sum(row.variants[name] for row in rows) / len(rows)

    srr_lr = mean("srr_lr")
    for name, _, _ in VARIANTS:
        if name == "srr_lr":
            continue
        # GRR+LR may tie SRR+LR on random workloads (the paper: "the
        # difference is not marked"); its guaranteed gap is adversarial
        # (see the grr_worst experiment).  Allow noise-level excess.
        tolerance = 0.75 if name == "grr_lr" else 0.3
        if mean(name) > srr_lr + tolerance:
            problems.append(
                f"{name} mean {mean(name):.2f} exceeds SRR+LR {srr_lr:.2f}"
            )
    for scheme in ("srr", "grr", "rr"):
        if mean(f"{scheme}_nolr") > mean(f"{scheme}_lr") + 0.3:
            problems.append(
                f"{scheme}: no-LR {mean(scheme + '_nolr'):.2f} beats "
                f"LR {mean(scheme + '_lr'):.2f}"
            )
    # RR flatness: compare the highest two PVC rates.
    if len(rows) >= 2:
        rr_top = rows[-1].variants["rr_lr"]
        rr_prev = rows[-2].variants["rr_lr"]
        if rr_top > rr_prev * 1.25 + 0.5:
            problems.append(
                f"RR kept scaling at high PVC rates ({rr_prev:.2f} -> {rr_top:.2f})"
            )
    # strIPe ≈ upper bound at the lowest PVC rate.
    low = rows[0]
    if low.variants["srr_lr"] < 0.75 * low.upper_bound:
        problems.append(
            f"SRR+LR {low.variants['srr_lr']:.2f} far below upper bound "
            f"{low.upper_bound:.2f} at {low.atm_mbps} Mbps"
        )
    return problems
