"""Chaos experiment: randomized fault schedules vs the full lifecycle stack.

Each run installs a seeded :class:`~repro.sim.faults.FaultPlan` schedule on
the session testbed's channels with the complete fault-tolerance machinery
armed — receiver-side :class:`ChannelLifecycleManager` (silence watchdog +
probe gating + flap damping), sender-side :class:`SenderHealthMonitor`
(queue-stall exclusion), and the :class:`ChannelProber` (backed-off probes
and rejoin RESETs).  Reported per seed, then aggregated:

* throughput in the pre-fault, fault, and recovered windows (the chaos
  window degrades the bundle; afterwards it must come back);
* recovery latency — how long after the last fault ceases the delivery
  stream stays out of order (Theorem 5.1 bounds this by one one-way
  delay once the markers resynchronize);
* the lifecycle event counts (failures, revivals, probes, rejoins,
  resets) and the injected-fault totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.fault_tolerance import build_session_testbed
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan
from repro.transport.endpoint import ChannelLifecycleManager, SenderHealthMonitor

N_CHANNELS = 3
MESSAGE_BYTES = 1000
FAULTS_START = 0.3
FAULTS_CEASE = 1.1
SETTLE_S = 0.3


@dataclass
class ChaosRun:
    seed: int
    kinds: Tuple[str, ...]
    goodput_before: float
    goodput_during: float
    goodput_after: float
    recovery_latency: float
    delivered: int
    duplicates: int
    failures: int
    revivals: int
    probes_sent: int
    rejoins: int
    resets: int
    faults_injected: int

    def render_row(self) -> str:
        kinds = ",".join(self.kinds) or "-"
        return (
            f"  seed {self.seed:2d}: {self.goodput_before:5.2f} / "
            f"{self.goodput_during:5.2f} / {self.goodput_after:5.2f} Mbps "
            f"(before/during/after), reorder settled "
            f"{self.recovery_latency * 1e3:6.1f} ms after cease, "
            f"fail/revive/rejoin={self.failures}/{self.revivals}/"
            f"{self.rejoins}, resets={self.resets}, dups={self.duplicates} "
            f"[{kinds}]"
        )


@dataclass
class ChaosExperiment:
    rows: List[ChaosRun]
    total_s: float

    def render(self) -> str:
        lines = [
            f"chaos: seeded fault schedules on {N_CHANNELS} channels, "
            f"faults in [{FAULTS_START}, {FAULTS_CEASE}] s, "
            f"run {self.total_s} s, full lifecycle armed:"
        ]
        lines += [row.render_row() for row in self.rows]
        degraded = [r for r in self.rows if r.goodput_during < r.goodput_before]
        recovered = [
            r for r in self.rows
            if r.goodput_after > 0.8 * r.goodput_before
        ]
        worst = max(r.recovery_latency for r in self.rows)
        # duplicate-injection runs add copies by definition; the
        # exactly-once claim applies to every other schedule.
        clean = [r for r in self.rows if "duplicate" not in r.kinds]
        lines.append(
            f"  summary: {len(degraded)}/{len(self.rows)} runs degraded "
            f"during faults, {len(recovered)}/{len(self.rows)} recovered to "
            f">80% of baseline, worst reorder-settle "
            f"{worst * 1e3:.1f} ms, exactly-once outside duplicate "
            f"injection: {all(r.duplicates == 0 for r in clean)}"
        )
        return "\n".join(lines)


def _recovery_latency(
    deliveries: List[Tuple[float, int]], cease: float
) -> float:
    """Seconds past ``cease`` until deliveries are in order for good."""
    last_ooo = cease
    high = -1
    for t, seq in deliveries:
        if seq < high and t > cease:
            last_ooo = t
        high = max(high, seq)
    return last_ooo - cease


def run_chaos_run(seed: int, total_s: float) -> ChaosRun:
    sim = Simulator()
    detector = ChannelLifecycleManager(
        sim, silence_threshold=0.15, check_interval=0.05,
        revival_arrivals=2, min_down_time=0.1,
    )
    monitor = SenderHealthMonitor(sim, stall_timeout=0.25, check_interval=0.05)
    testbed = build_session_testbed(
        sim, n_channels=N_CHANNELS, link_mbps=(10.0,), loss_rates=(0.0,),
        message_bytes=MESSAGE_BYTES, failure_detector=detector,
        health_monitor=monitor, enable_prober=True,
        prober_options=dict(initial_interval=0.05, max_interval=0.2),
    )
    plan = FaultPlan(
        n_channels=N_CHANNELS,
        cease_by=FAULTS_CEASE,
        start_after=FAULTS_START,
        max_events=5,
    )
    schedule = plan.schedule(seed)
    installed = schedule.install(
        sim, [link.ab for link in testbed.links], seed=seed
    )
    sim.run(until=total_s)

    cease = schedule.last_fault_end
    seqs = [seq for _, seq in testbed.deliveries]
    return ChaosRun(
        seed=seed,
        kinds=schedule.kinds_used(),
        goodput_before=testbed.goodput_mbps(0.1, FAULTS_START, MESSAGE_BYTES),
        goodput_during=testbed.goodput_mbps(FAULTS_START, cease, MESSAGE_BYTES),
        goodput_after=testbed.goodput_mbps(
            cease + SETTLE_S, total_s, MESSAGE_BYTES
        ),
        recovery_latency=_recovery_latency(testbed.deliveries, cease),
        delivered=len(seqs),
        duplicates=len(seqs) - len(set(seqs)),
        failures=len(detector.failures_reported),
        revivals=len(detector.revivals_reported),
        probes_sent=(
            testbed.sender.prober.probes_sent if testbed.sender.prober else 0
        ),
        rejoins=testbed.sender.prober.rejoins if testbed.sender.prober else 0,
        resets=testbed.receiver.session.resets_seen,
        faults_injected=installed.total_faulted,
    )


def run_chaos(
    quick: bool = False,
    seeds: Optional[int] = None,
    total_s: Optional[float] = None,
) -> ChaosExperiment:
    """Randomized chaos schedules against the full lifecycle stack."""
    if seeds is None:
        seeds = 3 if quick else 8
    if total_s is None:
        total_s = 1.8 if quick else 2.5
    rows = [run_chaos_run(seed, total_s) for seed in range(seeds)]
    return ChaosExperiment(rows=rows, total_s=total_s)
