"""§6.2 in-text experiment: the GRR worst case.

"The rate of the PVC was set to 7.6 Mbps, so that the ATM interface gave
the same throughput as the Ethernet (6 Mbps).  Note that in this case GRR
reduces to RR.  Then packets were sent in deterministic fashion, with the
bigger (1000 bytes) packets alternating with the smaller (200 bytes) ones.
With SRR, the packet arrival sequence did not have any effect on
throughput, yielding a striped throughput of 11.2 Mbps.  With GRR, the
bigger packets are all sent on one interface, and the smaller packets on
the other, so the throughput drops dramatically to 6.8 Mbps."

We also run SRR and GRR under a *random* mix of the same sizes as the
control: there the two schemes tie, demonstrating that GRR's weakness is
adversarial, exactly as the paper argues.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.experiments.topology import (
    R_ETH_IP,
    SCHEME_GRR,
    SCHEME_SRR,
    TestbedConfig,
    measure_tcp_goodput,
)
from repro.workloads.generators import AlternatingSizes


@dataclass
class GrrWorstCaseResult:
    srr_alternating_mbps: float
    grr_alternating_mbps: float
    srr_random_mbps: float
    grr_random_mbps: float

    @property
    def adversarial_drop(self) -> float:
        """GRR's throughput as a fraction of SRR's on the adversary."""
        if self.srr_alternating_mbps == 0:
            return 0.0
        return self.grr_alternating_mbps / self.srr_alternating_mbps

    def render(self) -> str:
        return "\n".join(
            [
                f"{'workload':>22} {'SRR Mbps':>9} {'GRR Mbps':>9}",
                "-" * 42,
                f"{'alternating 1000/200':>22} "
                f"{self.srr_alternating_mbps:>9.2f} "
                f"{self.grr_alternating_mbps:>9.2f}",
                f"{'random 1000/200 mix':>22} "
                f"{self.srr_random_mbps:>9.2f} {self.grr_random_mbps:>9.2f}",
                f"(paper: SRR 11.2 Mbps vs GRR 6.8 Mbps on the alternating "
                f"adversary; ratio {6.8 / 11.2:.2f} — measured ratio "
                f"{self.adversarial_drop:.2f})",
            ]
        )


#: PVC rate at which our simulated ATM interface delivers the same TCP
#: goodput as the Ethernet on the 1000/200 mix (~8 Mbps each).  The paper
#: did the same calibration on its hardware and landed at 7.6 Mbps (6 Mbps
#: each); the absolute point differs because our AAL5/CPU overheads differ,
#: the *equal-throughput* condition — which makes GRR reduce to RR — is
#: what matters.
EQUAL_GOODPUT_PVC_MBPS = 11.3


def run_grr_worst_case(
    duration_s: float = 3.0,
    warmup_s: float = 1.0,
    atm_mbps: float = EQUAL_GOODPUT_PVC_MBPS,
    base_config: Optional[TestbedConfig] = None,
) -> GrrWorstCaseResult:
    """Reproduce the adversarial alternating-size experiment.

    The receiver CPU model is disabled: this experiment isolates *link*
    fairness (the paper's SRR ran at the sum of both links here), and the
    small alternating packets would otherwise saturate the Figure 15 CPU
    model first.
    """
    base = base_config if base_config is not None else TestbedConfig()
    base = replace(base, atm_mbps=atm_mbps, grr_weights=(1, 1), cpu=None)

    def run(scheme: str, alternating: bool) -> float:
        config = replace(base, stripe_scheme=scheme)
        if alternating:
            sizes_fn = AlternatingSizes(1000, 200)
            result = _measure(config, sizes_fn, duration_s, warmup_s)
        else:
            rng = random.Random(11)
            result = _measure(
                config, lambda: rng.choice([1000, 200]), duration_s, warmup_s
            )
        return result

    return GrrWorstCaseResult(
        srr_alternating_mbps=run(SCHEME_SRR, True),
        grr_alternating_mbps=run(SCHEME_GRR, True),
        srr_random_mbps=run(SCHEME_SRR, False),
        grr_random_mbps=run(SCHEME_GRR, False),
    )


def _measure(config: TestbedConfig, size_fn, duration_s, warmup_s) -> float:
    from repro.experiments.topology import build_testbed
    from repro.sim.engine import Simulator

    sim = Simulator()
    testbed = build_testbed(sim, config)
    tx, rx = testbed.bulk_pair(R_ETH_IP, segment_size_fn=size_fn)
    tx.start()
    sim.run(until=warmup_s)
    start_bytes = rx.bytes_delivered
    sim.run(until=warmup_s + duration_s)
    return (rx.bytes_delivered - start_bytes) * 8.0 / duration_s / 1e6
