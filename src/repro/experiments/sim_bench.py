"""End-to-end simulator benchmark: reference path vs fast path.

Runs the scalability experiment's clean testbed (N equal links, SRR with
per-round markers, closed-loop source) twice per channel count — once on
the reference UDP/IP path with per-packet channel events, once on the
burst-batched fast path — and reports wall-clock events/sec and delivered
packets/sec for both, plus the packets/sec speedup.

Every measurement pair is also an equivalence check: the two runs must
produce the identical ``(time, seq)`` delivery record list, so a perf
regression can never silently trade correctness for speed.

``benchmarks/test_bench_sim.py`` wraps this as the checked-in regression
gate (writing ``BENCH_sim.json``); the experiment runner exposes it as
``sim_bench``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator

DEFAULT_CHANNEL_COUNTS = (2, 4, 8, 16)
RELIABILITY_MODES = ("best_effort", "quasi_fifo", "reliable")

#: ARQ options the reliable-mode bench row runs with (both paths get the
#: same values, so the equivalence check still binds).  The defaults
#: (64-packet window, ack-every-2) are tuned for WAN politeness, not for
#: a 4x10 Mb/s bundle with 40-frame queues: the window is far below the
#: bundle's bandwidth-delay product, so the sender degenerates to 1-2
#: packet ack-clocked bursts and the batched pump never engages.  A
#: BDP-sized window plus a coarser ack cadence is the configuration a
#: throughput deployment would run.
RELIABLE_BENCH_OPTIONS = {
    "sender": {"window_packets": 512},
    "receiver": {"ack_every": 16},
}


@dataclass
class SimBenchRow:
    """One channel count's measurement pair."""

    n_channels: int
    packets: int
    reference_pps: float
    fast_pps: float
    reference_eps: float
    fast_eps: float
    deliveries_equal: bool

    @property
    def speedup(self) -> float:
        if self.reference_pps == 0:
            return 0.0
        return self.fast_pps / self.reference_pps

    def render(self) -> str:
        return (
            f"{self.n_channels:>4} {self.packets:>8} "
            f"{self.reference_pps:>12.0f} {self.fast_pps:>12.0f} "
            f"{self.speedup:>7.2f}x "
            f"{self.reference_eps:>12.0f} {self.fast_eps:>12.0f} "
            f"{'ok' if self.deliveries_equal else 'MISMATCH':>9}"
        )


@dataclass
class SimBenchResult:
    rows: List[SimBenchRow]
    duration_s: float

    def render(self) -> str:
        header = (
            f"{'N':>4} {'pkts':>8} {'ref pkt/s':>12} {'fast pkt/s':>12} "
            f"{'speedup':>8} {'ref ev/s':>12} {'fast ev/s':>12} {'equal':>9}"
        )
        return "\n".join(
            [header, "-" * len(header)] + [row.render() for row in self.rows]
        )

    def min_speedup(self) -> float:
        return min(row.speedup for row in self.rows)

    def all_equal(self) -> bool:
        return all(row.deliveries_equal for row in self.rows)


def _measure(
    n: int,
    duration_s: float,
    fast: bool,
    link_mbps: float,
    message_bytes: int,
    seed: int,
    batch: bool,
    reliability: str = "quasi_fifo",
    loss: float = 0.0,
    packet_pool: bool = False,
    reliability_options: Optional[dict] = None,
) -> Tuple[float, int, int, List[Tuple[float, int]]]:
    """One run; returns (wall_seconds, packets, events, delivery records)."""
    sim = Simulator()
    config = SocketTestbedConfig(
        n_channels=n,
        link_mbps=(link_mbps,),
        prop_delay_s=tuple(0.5e-3 + 0.1e-3 * i for i in range(n)),
        loss_rates=(loss,),
        message_bytes=message_bytes,
        marker_interval_rounds=1,
        source_backlog=4 * n,
        seed=seed,
        fast=fast,
        reliability=reliability,
        reliability_options=reliability_options,
        packet_pool=packet_pool,
    )
    testbed = build_socket_testbed(sim, config)
    start = time.perf_counter()
    sim.run(until=duration_s, batch=batch)
    wall = time.perf_counter() - start
    records = [(d.time, d.seq) for d in testbed.deliveries]
    return wall, len(records), sim.events_processed, records


@dataclass
class ModeBenchRow:
    """One reliability mode's clean speedup + lossy equivalence check."""

    mode: str
    n_channels: int
    packets: int
    reference_pps: float
    fast_pps: float
    #: clean *and* lossy runs produced identical (time, seq) records
    deliveries_identical: bool
    #: packets delivered in the lossy equivalence run
    lossy_packets: int
    loss: float

    @property
    def speedup(self) -> float:
        if self.reference_pps == 0:
            return 0.0
        return self.fast_pps / self.reference_pps

    def render(self) -> str:
        return (
            f"{self.mode:>12} {self.packets:>8} "
            f"{self.reference_pps:>12.0f} {self.fast_pps:>12.0f} "
            f"{self.speedup:>7.2f}x "
            f"{self.lossy_packets:>9} "
            f"{'ok' if self.deliveries_identical else 'MISMATCH':>9}"
        )


@dataclass
class ModeBenchResult:
    rows: List[ModeBenchRow]
    duration_s: float

    def render(self) -> str:
        header = (
            f"{'mode':>12} {'pkts':>8} {'ref pkt/s':>12} {'fast pkt/s':>12} "
            f"{'speedup':>8} {'lossy pkts':>9} {'equal':>9}"
        )
        return "\n".join(
            [header, "-" * len(header)] + [row.render() for row in self.rows]
        )

    def min_speedup(self) -> float:
        return min(row.speedup for row in self.rows)

    def all_identical(self) -> bool:
        return all(row.deliveries_identical for row in self.rows)


def run_reliability_mode_bench(
    modes: Sequence[str] = RELIABILITY_MODES,
    n_channels: int = 4,
    duration_s: float = 1.0,
    link_mbps: float = 10.0,
    message_bytes: int = 1000,
    loss: float = 0.1,
    repeats: int = 3,
    seed: int = 0,
    packet_pool: bool = True,
) -> ModeBenchResult:
    """Per-reliability-mode fast-path benchmark + lossy equivalence.

    For each mode, the clean testbed pair is timed (best of ``repeats``,
    packet pool enabled on both sides — it is loss-free) and a second,
    untimed pair runs with ``loss`` Bernoulli loss on every forward
    channel; the row's ``deliveries_identical`` holds only if *both*
    pairs produced bit-identical ``(time, seq)`` delivery records.

    The reliable row runs with :data:`RELIABLE_BENCH_OPTIONS` on both
    paths (BDP-sized window, coarse ack cadence — see the comment
    there); the other modes have no ARQ and take the defaults.
    """
    rows: List[ModeBenchRow] = []
    for mode in modes:
        arq = RELIABLE_BENCH_OPTIONS if mode == "reliable" else None
        # The reliable row has the tightest margin (ARQ bookkeeping rides
        # both paths), so give its best-of filter more draws against
        # shared-machine noise.
        mode_repeats = max(repeats, 5) if mode == "reliable" else repeats
        ref_wall = fast_wall = float("inf")
        ref_records = fast_records = None
        packets = 0
        for _ in range(max(1, mode_repeats)):
            wall, count, _, records = _measure(
                n_channels, duration_s, False, link_mbps, message_bytes,
                seed, batch=False, reliability=mode, packet_pool=packet_pool,
                reliability_options=arq,
            )
            ref_wall = min(ref_wall, wall)
            ref_records, packets = records, count
            wall, _, _, records = _measure(
                n_channels, duration_s, True, link_mbps, message_bytes,
                seed, batch=True, reliability=mode, packet_pool=packet_pool,
                reliability_options=arq,
            )
            fast_wall = min(fast_wall, wall)
            fast_records = records
        clean_equal = ref_records == fast_records
        # Lossy equivalence pair (untimed; the pool stays out of reliable
        # lossy runs — a recycled packet could alias an in-flight
        # retransmit copy).
        lossy_pool = packet_pool and mode != "reliable"
        _, lossy_count, _, lossy_ref = _measure(
            n_channels, duration_s, False, link_mbps, message_bytes,
            seed, batch=False, reliability=mode, loss=loss,
            packet_pool=lossy_pool, reliability_options=arq,
        )
        _, _, _, lossy_fast = _measure(
            n_channels, duration_s, True, link_mbps, message_bytes,
            seed, batch=True, reliability=mode, loss=loss,
            packet_pool=lossy_pool, reliability_options=arq,
        )
        rows.append(
            ModeBenchRow(
                mode=mode,
                n_channels=n_channels,
                packets=packets,
                reference_pps=packets / ref_wall if ref_wall else 0.0,
                fast_pps=packets / fast_wall if fast_wall else 0.0,
                deliveries_identical=clean_equal and lossy_ref == lossy_fast,
                lossy_packets=lossy_count,
                loss=loss,
            )
        )
    return ModeBenchResult(rows=rows, duration_s=duration_s)


def run_sim_bench(
    channel_counts: Sequence[int] = DEFAULT_CHANNEL_COUNTS,
    duration_s: float = 1.0,
    link_mbps: float = 10.0,
    message_bytes: int = 1000,
    repeats: int = 3,
    seed: int = 0,
) -> SimBenchResult:
    """Benchmark reference vs fast path over the scalability testbed.

    ``duration_s`` is *simulated* seconds per run; wall-clock rates take
    the best of ``repeats`` runs per mode (delivery counts and records are
    identical across repeats — the simulator is deterministic).
    """
    rows: List[SimBenchRow] = []
    for n in channel_counts:
        ref_wall = fast_wall = float("inf")
        ref_records = fast_records = None
        ref_events = fast_events = packets = 0
        for _ in range(max(1, repeats)):
            wall, count, events, records = _measure(
                n, duration_s, False, link_mbps, message_bytes, seed,
                batch=False,
            )
            ref_wall = min(ref_wall, wall)
            ref_records, ref_events, packets = records, events, count
            wall, count, events, records = _measure(
                n, duration_s, True, link_mbps, message_bytes, seed,
                batch=True,
            )
            fast_wall = min(fast_wall, wall)
            fast_records, fast_events = records, events
        rows.append(
            SimBenchRow(
                n_channels=n,
                packets=packets,
                reference_pps=packets / ref_wall if ref_wall else 0.0,
                fast_pps=packets / fast_wall if fast_wall else 0.0,
                reference_eps=ref_events / ref_wall if ref_wall else 0.0,
                fast_eps=fast_events / fast_wall if fast_wall else 0.0,
                deliveries_equal=ref_records == fast_records,
            )
        )
    return SimBenchResult(rows=rows, duration_s=duration_s)
