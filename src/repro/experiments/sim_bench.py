"""End-to-end simulator benchmark: reference path vs fast path.

Runs the scalability experiment's clean testbed (N equal links, SRR with
per-round markers, closed-loop source) twice per channel count — once on
the reference UDP/IP path with per-packet channel events, once on the
burst-batched fast path — and reports wall-clock events/sec and delivered
packets/sec for both, plus the packets/sec speedup.

Every measurement pair is also an equivalence check: the two runs must
produce the identical ``(time, seq)`` delivery record list, so a perf
regression can never silently trade correctness for speed.

``benchmarks/test_bench_sim.py`` wraps this as the checked-in regression
gate (writing ``BENCH_sim.json``); the experiment runner exposes it as
``sim_bench``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator

DEFAULT_CHANNEL_COUNTS = (2, 4, 8, 16)


@dataclass
class SimBenchRow:
    """One channel count's measurement pair."""

    n_channels: int
    packets: int
    reference_pps: float
    fast_pps: float
    reference_eps: float
    fast_eps: float
    deliveries_equal: bool

    @property
    def speedup(self) -> float:
        if self.reference_pps == 0:
            return 0.0
        return self.fast_pps / self.reference_pps

    def render(self) -> str:
        return (
            f"{self.n_channels:>4} {self.packets:>8} "
            f"{self.reference_pps:>12.0f} {self.fast_pps:>12.0f} "
            f"{self.speedup:>7.2f}x "
            f"{self.reference_eps:>12.0f} {self.fast_eps:>12.0f} "
            f"{'ok' if self.deliveries_equal else 'MISMATCH':>9}"
        )


@dataclass
class SimBenchResult:
    rows: List[SimBenchRow]
    duration_s: float

    def render(self) -> str:
        header = (
            f"{'N':>4} {'pkts':>8} {'ref pkt/s':>12} {'fast pkt/s':>12} "
            f"{'speedup':>8} {'ref ev/s':>12} {'fast ev/s':>12} {'equal':>9}"
        )
        return "\n".join(
            [header, "-" * len(header)] + [row.render() for row in self.rows]
        )

    def min_speedup(self) -> float:
        return min(row.speedup for row in self.rows)

    def all_equal(self) -> bool:
        return all(row.deliveries_equal for row in self.rows)


def _measure(
    n: int,
    duration_s: float,
    fast: bool,
    link_mbps: float,
    message_bytes: int,
    seed: int,
    batch: bool,
) -> Tuple[float, int, int, List[Tuple[float, int]]]:
    """One run; returns (wall_seconds, packets, events, delivery records)."""
    sim = Simulator()
    config = SocketTestbedConfig(
        n_channels=n,
        link_mbps=(link_mbps,),
        prop_delay_s=tuple(0.5e-3 + 0.1e-3 * i for i in range(n)),
        loss_rates=(0.0,),
        message_bytes=message_bytes,
        marker_interval_rounds=1,
        source_backlog=4 * n,
        seed=seed,
        fast=fast,
    )
    testbed = build_socket_testbed(sim, config)
    start = time.perf_counter()
    sim.run(until=duration_s, batch=batch)
    wall = time.perf_counter() - start
    records = [(d.time, d.seq) for d in testbed.deliveries]
    return wall, len(records), sim.events_processed, records


def run_sim_bench(
    channel_counts: Sequence[int] = DEFAULT_CHANNEL_COUNTS,
    duration_s: float = 1.0,
    link_mbps: float = 10.0,
    message_bytes: int = 1000,
    repeats: int = 3,
    seed: int = 0,
) -> SimBenchResult:
    """Benchmark reference vs fast path over the scalability testbed.

    ``duration_s`` is *simulated* seconds per run; wall-clock rates take
    the best of ``repeats`` runs per mode (delivery counts and records are
    identical across repeats — the simulator is deterministic).
    """
    rows: List[SimBenchRow] = []
    for n in channel_counts:
        ref_wall = fast_wall = float("inf")
        ref_records = fast_records = None
        ref_events = fast_events = packets = 0
        for _ in range(max(1, repeats)):
            wall, count, events, records = _measure(
                n, duration_s, False, link_mbps, message_bytes, seed,
                batch=False,
            )
            ref_wall = min(ref_wall, wall)
            ref_records, ref_events, packets = records, events, count
            wall, count, events, records = _measure(
                n, duration_s, True, link_mbps, message_bytes, seed,
                batch=True,
            )
            fast_wall = min(fast_wall, wall)
            fast_records, fast_events = records, events
        rows.append(
            SimBenchRow(
                n_channels=n,
                packets=packets,
                reference_pps=packets / ref_wall if ref_wall else 0.0,
                fast_pps=packets / fast_wall if fast_wall else 0.0,
                reference_eps=ref_events / ref_wall if ref_wall else 0.0,
                fast_eps=fast_events / fast_wall if fast_wall else 0.0,
                deliveries_equal=ref_records == fast_records,
            )
        )
    return SimBenchResult(rows=rows, duration_s=duration_s)
