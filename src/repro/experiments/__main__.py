"""Entry point: ``python -m repro.experiments``."""

from repro.experiments.runner import main

raise SystemExit(main())
