"""§6.3 finding 1: marker resynchronization restores FIFO after loss stops.

"For arbitrary levels of packet loss (measured up to 80%), the marker based
resynchronization scheme was able to restore FIFO delivery once packet
losses stopped."

We run the striped-UDP testbed with Bernoulli loss on every channel for a
loss phase, then switch the loss off and keep sending.  For each loss rate
we report out-of-order deliveries during the lossy phase (quasi-FIFO at
work) and after a recovery allowance (must be zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator

DEFAULT_LOSS_RATES = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)


@dataclass
class LossRecoveryRow:
    loss_rate: float
    sent: int
    delivered: int
    lost: int
    ooo_total: int
    ooo_after_recovery: int
    markers_received: int
    channel_skips: int

    @property
    def recovered(self) -> bool:
        return self.ooo_after_recovery == 0


@dataclass
class LossRecoveryResult:
    rows: List[LossRecoveryRow]

    @property
    def all_recovered(self) -> bool:
        return all(row.recovered for row in self.rows)

    def render(self) -> str:
        header = (
            f"{'loss':>5} {'sent':>7} {'dlvr':>7} {'lost':>6} "
            f"{'OOO(lossy)':>10} {'OOO(after)':>10} {'markers':>8} {'skips':>6} {'FIFO?':>6}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.loss_rate:>5.2f} {row.sent:>7} {row.delivered:>7} "
                f"{row.lost:>6} {row.ooo_total - row.ooo_after_recovery:>10} "
                f"{row.ooo_after_recovery:>10} {row.markers_received:>8} "
                f"{row.channel_skips:>6} {'yes' if row.recovered else 'NO':>6}"
            )
        return "\n".join(lines)


def run_loss_recovery(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    loss_phase_s: float = 1.0,
    total_s: float = 2.5,
    recovery_allowance_s: float = 0.2,
    marker_interval_rounds: int = 1,
    seed: int = 0,
) -> LossRecoveryResult:
    """Sweep loss rates; verify FIFO restoration after losses stop."""
    rows: List[LossRecoveryRow] = []
    for loss in loss_rates:
        sim = Simulator()
        config = SocketTestbedConfig(
            loss_rates=(loss,),
            marker_interval_rounds=marker_interval_rounds,
            seed=seed,
        )
        testbed = build_socket_testbed(sim, config)
        testbed.stop_losses_at(loss_phase_s)
        sim.run(until=total_s)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        after = [
            d.seq
            for d in testbed.deliveries_after(loss_phase_s + recovery_allowance_s)
        ]
        after_report = analyze_order(after)
        stats = testbed.receiver.resequencer.stats
        rows.append(
            LossRecoveryRow(
                loss_rate=loss,
                sent=testbed.messages_sent,
                delivered=report.delivered,
                lost=report.missing,
                ooo_total=report.out_of_order,
                ooo_after_recovery=after_report.out_of_order,
                markers_received=stats.markers_received,
                channel_skips=stats.channel_skips,
            )
        )
    return LossRecoveryResult(rows)
