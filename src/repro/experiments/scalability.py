"""Scalability in the channel count — the claim in the paper's title.

The paper argues its protocol is "scalable enough to impose little
overhead": SRR costs O(1) per packet regardless of N, markers cost one tiny
packet per channel per interval, and recovery is per-channel (no global
sequence space).  This experiment measures, for N = 2..16 equal links:

* aggregate goodput (should grow ≈ linearly with N),
* delivery remains exactly FIFO,
* marker bandwidth overhead (stays a small, roughly constant fraction),
* resynchronization time after a loss burst (stays within a few marker
  periods — it does not grow with N, because every channel resynchronizes
  independently; condition C1 is the only global coupling),
* Jain's fairness index across per-channel data carried (SRR's equal-share
  guarantee surfaced end to end: should sit at ~1.0 for every N),
* the receiver's high-water-mark memory (max resequencer packets buffered
  — the bounded-memory claim, which must not grow with N on clean links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.reorder import analyze_order
from repro.core.fairness import jain_fairness_index
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator

DEFAULT_CHANNEL_COUNTS = (2, 4, 8, 16)


@dataclass
class ScalabilityRow:
    n_channels: int
    goodput_mbps: float
    per_channel_mbps: float
    out_of_order: int
    marker_overhead_fraction: float
    recovery_time_s: Optional[float]
    #: Jain's fairness index across per-channel data carried: 1.0 means
    #: the striper spread the stream perfectly evenly over the N links.
    jain_channels: float = 1.0
    #: receiver high-water-mark memory (max packets ever buffered in the
    #: resequencer) — the paper's bounded-memory claim, per channel count.
    receiver_hwm_packets: int = 0

    def render(self) -> str:
        recovery = (
            f"{self.recovery_time_s * 1e3:7.1f} ms"
            if self.recovery_time_s is not None else "      n/a"
        )
        return (
            f"{self.n_channels:>4} {self.goodput_mbps:>8.2f} "
            f"{self.per_channel_mbps:>8.2f} {self.out_of_order:>6} "
            f"{self.marker_overhead_fraction:>9.4%} {recovery} "
            f"{self.jain_channels:>6.4f} {self.receiver_hwm_packets:>5}"
        )


@dataclass
class ScalabilityResult:
    rows: List[ScalabilityRow]

    def render(self) -> str:
        header = (
            f"{'N':>4} {'Mbps':>8} {'per-ch':>8} {'OOO':>6} "
            f"{'markers':>9} {'recovery':>10} {'jain':>6} {'hwm':>5}"
        )
        return "\n".join(
            [header, "-" * len(header)]
            + [row.render() for row in self.rows]
        )

    def scaling_efficiency(self) -> float:
        """Per-channel goodput at max N relative to min N (1.0 = linear)."""
        first, last = self.rows[0], self.rows[-1]
        if first.per_channel_mbps == 0:
            return 0.0
        return last.per_channel_mbps / first.per_channel_mbps


def run_scalability(
    channel_counts: Sequence[int] = DEFAULT_CHANNEL_COUNTS,
    link_mbps: float = 10.0,
    duration_s: float = 1.5,
    message_bytes: int = 1000,
    with_recovery_probe: bool = True,
    seed: int = 0,
    fast: bool = False,
) -> ScalabilityResult:
    """Measure throughput / ordering / overhead / recovery vs channel count.

    ``fast=True`` runs every testbed on the burst-batched fast path
    (:mod:`repro.transport.fast_path`); results are identical (the fast
    path is property-tested equivalent), only wall-clock time changes.
    """
    rows: List[ScalabilityRow] = []
    for n in channel_counts:
        # --- clean throughput run ----------------------------------------
        sim = Simulator()
        config = SocketTestbedConfig(
            n_channels=n,
            link_mbps=(link_mbps,),
            prop_delay_s=tuple(0.5e-3 + 0.1e-3 * i for i in range(n)),
            loss_rates=(0.0,),
            message_bytes=message_bytes,
            marker_interval_rounds=1,
            source_backlog=4 * n,
            seed=seed,
            fast=fast,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=duration_s)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        goodput = (
            sum(d.size for d in testbed.deliveries) * 8 / duration_s / 1e6
        )
        marker_bytes = 0
        data_bytes = 0
        per_channel_data: List[float] = []
        for port in testbed.sender.ports:
            marker_bytes += port.sent_markers * 32
            data_bytes += port.sent_data * message_bytes
            per_channel_data.append(float(port.sent_data))
        overhead = marker_bytes / data_bytes if data_bytes else 0.0
        jain = jain_fairness_index(per_channel_data)
        hwm = int(testbed.receiver.receiver_state().get("max_buffered", 0))

        # --- recovery probe: a loss burst, then measure resync time ------
        recovery_time: Optional[float] = None
        if with_recovery_probe:
            sim2 = Simulator()
            probe = build_socket_testbed(
                sim2,
                SocketTestbedConfig(
                    n_channels=n,
                    link_mbps=(link_mbps,),
                    prop_delay_s=tuple(
                        0.5e-3 + 0.1e-3 * i for i in range(n)
                    ),
                    loss_rates=(0.3,),
                    message_bytes=message_bytes,
                    marker_interval_rounds=1,
                    source_backlog=4 * n,
                    seed=seed,
                    fast=fast,
                ),
            )
            loss_stop = 0.5
            probe.stop_losses_at(loss_stop)
            sim2.run(until=loss_stop + 1.0)
            # recovery time = last out-of-order delivery after loss_stop
            max_seen = -1
            last_violation_t: Optional[float] = None
            for delivery in probe.deliveries:
                if delivery.seq < max_seen and delivery.time > loss_stop:
                    last_violation_t = delivery.time
                max_seen = max(max_seen, delivery.seq)
            recovery_time = (
                (last_violation_t - loss_stop) if last_violation_t else 0.0
            )

        rows.append(
            ScalabilityRow(
                n_channels=n,
                goodput_mbps=goodput,
                per_channel_mbps=goodput / n,
                out_of_order=report.out_of_order,
                marker_overhead_fraction=overhead,
                recovery_time_s=recovery_time,
                jain_channels=jain,
                receiver_hwm_packets=hwm,
            )
        )
    return ScalabilityResult(rows)
