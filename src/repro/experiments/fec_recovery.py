"""FEC recovery experiment: proactive parity vs reactive ARQ vs hybrid.

Sweeps loss rate x loss shape (i.i.d. random vs Gilbert-Elliott bursts)
x recovery mode ({reliable, fec, hybrid}) over the striped endpoint
pipelines and reports, per cell:

* completeness and goodput — pure fec trades a bounded completeness gap
  for zero retransmissions; reliable and hybrid must deliver 100%;
* mean delivery latency — parity repairs locally (no round trip), so fec
  and hybrid recover holes faster than timeout/SACK-driven ARQ;
* the recovery budget spent: retransmissions (reactive), reconstructions
  (proactive), positions abandoned (pure fec only), and the redundancy
  overhead the parity stream adds (~m/k of the data volume).

The striper underneath is identical in every mode, so the deltas are the
recovery strategies alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultSchedule,
    burst_loss_schedule,
    persistent_loss_schedule,
)
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fast_path import FastChannelPort

N_CHANNELS = 3
MESSAGE_BYTES = 500
BANDWIDTH_BPS = 8e6
PROP_DELAY = 0.5e-3
QUEUE_LIMIT = 64
FEC_K = 6
FEC_M = 2


@dataclass
class FecRecoveryRun:
    mode: str
    loss_kind: str
    loss_rate: float
    submitted: int
    delivered: int
    in_order: bool
    goodput_mbps: float
    mean_latency_ms: float
    retransmissions: int
    reconstructed: int
    skipped: int
    redundancy_overhead: float

    @property
    def completeness(self) -> float:
        return self.delivered / self.submitted if self.submitted else 0.0

    def render_row(self) -> str:
        recovery = (
            f"rtx={self.retransmissions:4d} rebuilt={self.reconstructed:4d} "
            f"skipped={self.skipped:3d}"
        )
        return (
            f"  {self.mode:8s} {self.loss_kind:6s} p={self.loss_rate:4.0%}: "
            f"{self.delivered:5d}/{self.submitted:5d} "
            f"({self.completeness:6.1%}) {self.goodput_mbps:5.2f} Mbps "
            f"lat={self.mean_latency_ms:5.2f} ms "
            f"overhead={self.redundancy_overhead:5.1%} "
            f"[{'in-order' if self.in_order else 'REORDERED'}] {recovery}"
        )


@dataclass
class FecRecoveryExperiment:
    rows: List[FecRecoveryRun]
    total_s: float

    def render(self) -> str:
        lines = [
            f"fec_recovery: striped pipelines, {N_CHANNELS} channels at "
            f"{BANDWIDTH_BPS / 1e6:.0f} Mbps, k={FEC_K} m={FEC_M}, "
            f"{self.total_s} s runs (recovery drains after):"
        ]
        lines += [row.render_row() for row in self.rows]
        guaranteed = [r for r in self.rows if r.mode in ("reliable", "hybrid")]
        complete = all(
            r.completeness == 1.0 and r.in_order for r in guaranteed
        )
        pairs = _paired_retransmissions(self.rows)
        saved = sum(arq - hyb for arq, hyb in pairs)
        lines.append(
            f"  summary: reliable+hybrid complete in-order everywhere: "
            f"{complete}; hybrid saved {saved} retransmissions vs pure ARQ "
            f"across {len(pairs)} matched cells"
        )
        return "\n".join(lines)


def _paired_retransmissions(
    rows: Sequence[FecRecoveryRun],
) -> List[Tuple[int, int]]:
    arq = {
        (r.loss_kind, r.loss_rate): r.retransmissions
        for r in rows if r.mode == "reliable"
    }
    return [
        (arq[(r.loss_kind, r.loss_rate)], r.retransmissions)
        for r in rows
        if r.mode == "hybrid" and (r.loss_kind, r.loss_rate) in arq
    ]


class _Rig:
    """Striped endpoint pipelines over raw channels, one recovery mode."""

    def __init__(self, sim: Simulator, mode: str) -> None:
        self.sim = sim
        self.mode = mode
        self.channels = [
            Channel(
                sim,
                bandwidth_bps=BANDWIDTH_BPS,
                prop_delay=PROP_DELAY,
                queue_limit=QUEUE_LIMIT,
                name=f"ch{i}",
            )
            for i in range(N_CHANNELS)
        ]
        self.ports = [FastChannelPort(ch) for ch in self.channels]
        quanta = [float(MESSAGE_BYTES)] * N_CHANNELS
        sender_options: Dict[str, object] = {"fec": {"k": FEC_K, "m": FEC_M}}
        if mode in ("reliable", "hybrid"):
            sender_options["window_packets"] = 256
        self.sender = StripeSenderPipeline(
            self.ports,
            SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim,
            marker_keepalive_s=0.02,
            reliability=mode,
            reliability_options=sender_options,
        )
        self.deliveries: List[Tuple[float, int]] = []
        self.submit_times: Dict[int, float] = {}
        self.receiver = StripeReceiverPipeline(
            N_CHANNELS,
            SRR(quanta),
            mode="marker",
            on_message=lambda p: self.deliveries.append((sim.now, p.seq)),
            sim=sim,
            reliability=mode,
            send_ack=lambda sack: sim.schedule(
                PROP_DELAY, self.sender.on_ack, sack
            ),
            reliability_options={"fec": {"k": FEC_K, "m": FEC_M}},
        )
        for index, channel in enumerate(self.channels):
            channel.on_deliver = self.receiver.channel_handler(index)
            channel.on_space = self.sender._pump

    def start_source(self, interval: float, stop_at: float) -> None:
        sim = self.sim

        def tick() -> None:
            if sim.now >= stop_at:
                self.sender.flush()
                return
            if self.sender.can_submit():
                self.submit_times[self.sender.messages_submitted] = sim.now
                self.sender.send_message(MESSAGE_BYTES)
            sim.schedule(interval, tick)

        sim.schedule_at(0.0, tick)


def run_fec_recovery_run(
    mode: str,
    loss_kind: str,
    loss_rate: float,
    total_s: float,
    seed: int,
) -> FecRecoveryRun:
    sim = Simulator()
    rig = _Rig(sim, mode)
    rig.start_source(interval=0.4e-3, stop_at=total_s)
    if loss_rate <= 0.0:
        schedule = FaultSchedule([])
    elif loss_kind == "burst":
        schedule = burst_loss_schedule(N_CHANNELS, loss_rate, until=total_s)
    else:
        schedule = persistent_loss_schedule(
            N_CHANNELS, loss_rate, until=total_s
        )
    schedule.install(sim, rig.channels, seed=seed)
    # Give retransmissions / group timeouts time to finish afterwards.
    sim.run(until=total_s + (2.5 if mode != "fec" else 1.0))

    seqs = [seq for _, seq in rig.deliveries]
    latencies = [
        now - rig.submit_times[seq]
        for now, seq in rig.deliveries
        if seq in rig.submit_times
    ]
    submitted = rig.sender.messages_submitted
    arq = rig.sender.reliable
    fec_rx = rig.receiver.fec
    fec_tx = rig.sender.fec
    parity_bytes = fec_tx.stats.parity_bytes if fec_tx else 0
    data_bytes = submitted * MESSAGE_BYTES
    return FecRecoveryRun(
        mode=mode,
        loss_kind=loss_kind,
        loss_rate=loss_rate,
        submitted=submitted,
        delivered=len(set(seqs)),
        in_order=seqs == sorted(set(seqs)),
        goodput_mbps=len(seqs) * MESSAGE_BYTES * 8 / total_s / 1e6,
        mean_latency_ms=(
            sum(latencies) / len(latencies) * 1e3 if latencies else 0.0
        ),
        retransmissions=arq.stats.retransmissions if arq else 0,
        reconstructed=fec_rx.stats.reconstructed if fec_rx else 0,
        skipped=fec_rx.stats.skipped if fec_rx else 0,
        redundancy_overhead=parity_bytes / data_bytes if data_bytes else 0.0,
    )


def run_fec_recovery(
    quick: bool = False,
    loss_rates: Optional[Sequence[float]] = None,
    loss_kinds: Sequence[str] = ("random", "burst"),
    total_s: Optional[float] = None,
    seed: int = 7,
) -> FecRecoveryExperiment:
    """Recovery-mode shootout across loss rates and loss shapes."""
    if loss_rates is None:
        loss_rates = (0.03, 0.10) if quick else (0.01, 0.03, 0.05, 0.10)
    if total_s is None:
        total_s = 0.4 if quick else 0.8
    rows = [
        run_fec_recovery_run(mode, kind, p, total_s, seed)
        for kind in loss_kinds
        for p in loss_rates
        for mode in ("reliable", "fec", "hybrid")
    ]
    return FecRecoveryExperiment(rows=rows, total_s=total_s)
