"""Experiment registry and command-line runner.

Every paper table/figure has an entry here; ``python -m repro.experiments``
lists them and runs any subset::

    python -m repro.experiments table1 fig5_6
    python -m repro.experiments --all
    python -m repro.experiments --all --quick   # shorter simulations

Each entry returns a result object with a ``render()`` method (or a plain
string); the runner prints it under a banner.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List


def to_jsonable(result: Any) -> Any:
    """Best-effort conversion of an experiment result to JSON data."""
    if isinstance(result, str):
        return {"text": result}
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return json.loads(
            json.dumps(dataclasses.asdict(result), default=str)
        )
    return {"repr": repr(result)}


@dataclass(frozen=True)
class Experiment:
    """One runnable paper artifact."""

    name: str
    paper_ref: str
    description: str
    run: Callable[..., Any]  # accepts quick: bool (and fast: bool if supported)
    quick_supported: bool = True
    #: True if the experiment can run on the burst-batched simulation fast
    #: path (``--fast``); results are identical, only wall clock changes.
    fast_supported: bool = False


def _run_table1(quick: bool = False) -> str:
    from repro.analysis.tables import extended_rows, render_table

    return render_table(extended_rows())


def _run_fig2_3(quick: bool = False):
    from repro.experiments.worked_examples import run_fig2_3

    return run_fig2_3()


def _run_fig5_6(quick: bool = False):
    from repro.experiments.worked_examples import run_fig5_6

    return run_fig5_6()


def _run_fig8_13(quick: bool = False):
    from repro.experiments.worked_examples import run_fig8_13

    return run_fig8_13()


def _run_fig15(quick: bool = False):
    from repro.experiments.figure15 import run_figure15

    if quick:
        return run_figure15(
            atm_rates_mbps=(3.8, 13.8, 23.8), duration_s=1.5, warmup_s=0.5
        )
    return run_figure15()


def _run_grr_worst(quick: bool = False):
    from repro.experiments.grr_worst_case import run_grr_worst_case

    if quick:
        return run_grr_worst_case(duration_s=1.5, warmup_s=0.5)
    return run_grr_worst_case()


def _run_sync_loss(quick: bool = False):
    from repro.experiments.loss_recovery import run_loss_recovery

    if quick:
        return run_loss_recovery(
            loss_rates=(0.1, 0.4, 0.8), loss_phase_s=0.8, total_s=2.0
        )
    return run_loss_recovery()


def _run_marker_freq(quick: bool = False):
    from repro.experiments.marker_frequency import run_marker_frequency

    if quick:
        return run_marker_frequency(intervals=(1, 5, 20), duration_s=1.5)
    return run_marker_frequency()


def _run_marker_pos(quick: bool = False):
    from repro.experiments.marker_position import run_marker_position

    if quick:
        return run_marker_position(duration_s=1.0, seeds=(0,))
    return run_marker_position()


def _run_credit_fc(quick: bool = False):
    from repro.experiments.flow_control import run_flow_control

    if quick:
        return run_flow_control(duration_s=1.5)
    return run_flow_control()


def _run_video(quick: bool = False):
    from repro.experiments.video_quality import run_video_quality

    if quick:
        return run_video_quality(
            loss_rates=(0.0, 0.2, 0.4, 0.6), duration_s=4.0
        )
    return run_video_quality()


def _run_fault_tolerance(quick: bool = False):
    from repro.experiments.fault_tolerance import run_fault_tolerance

    return run_fault_tolerance(quick=quick)


def _run_chaos(quick: bool = False):
    from repro.experiments.chaos import run_chaos

    return run_chaos(quick=quick)


def _run_reliability(quick: bool = False):
    from repro.experiments.reliability import run_reliability

    return run_reliability(quick=quick)


def _run_recovery(quick: bool = False):
    from repro.experiments.recovery import run_recovery

    return run_recovery(quick=quick)


def _run_fec(quick: bool = False):
    from repro.experiments.fec_recovery import run_fec_recovery

    return run_fec_recovery(quick=quick)


def _run_mtu(quick: bool = False):
    from repro.experiments.mtu_fragmentation import run_mtu_fragmentation

    if quick:
        return run_mtu_fragmentation(duration_s=1.5, warmup_s=0.5)
    return run_mtu_fragmentation()


def _run_multiflow(quick: bool = False):
    from repro.experiments.multiflow import run_multiflow

    if quick:
        return run_multiflow(duration_s=2.0, warmup_s=1.0)
    return run_multiflow()


def _run_fabric(quick: bool = False):
    from repro.experiments.fabric import run_fabric

    if quick:
        return run_fabric(n_flows=512)
    return run_fabric()


def _run_scalability(quick: bool = False, fast: bool = False):
    from repro.experiments.scalability import run_scalability

    if quick:
        return run_scalability(
            channel_counts=(2, 8), duration_s=1.0, fast=fast
        )
    return run_scalability(fast=fast)


def _run_sprinklers(quick: bool = False):
    from repro.experiments.sprinklers import run_sprinklers

    return run_sprinklers(quick=quick)


def _run_tcp_channels(quick: bool = False):
    from repro.experiments.tcp_channels import run_tcp_channels

    if quick:
        return run_tcp_channels(channel_counts=(1, 2), duration_s=1.0)
    return run_tcp_channels()


def _run_cell_striping(quick: bool = False):
    from repro.experiments.cell_striping import run_cell_striping

    if quick:
        return run_cell_striping(duration_s=1.0)
    return run_cell_striping()


def _run_kernel_bench(quick: bool = False):
    from repro.experiments.kernel_bench import run_kernel_bench

    if quick:
        return run_kernel_bench(n_packets=50_000, repeats=1)
    return run_kernel_bench()


def _run_sim_bench(quick: bool = False):
    from repro.experiments.sim_bench import run_sim_bench

    if quick:
        return run_sim_bench(
            channel_counts=(2, 8), duration_s=0.3, repeats=1
        )
    return run_sim_bench()


EXPERIMENTS: Dict[str, Experiment] = {
    e.name: e
    for e in [
        Experiment(
            "table1", "Table 1",
            "Feature matrix of striping schemes", _run_table1,
        ),
        Experiment(
            "fig2_3", "Figures 2-3",
            "Fair queuing / load sharing duality on the worked example",
            _run_fig2_3,
        ),
        Experiment(
            "fig5_6", "Figures 5-6",
            "SRR deficit counter trace on the worked example", _run_fig5_6,
        ),
        Experiment(
            "fig8_13", "Figures 8-13",
            "Marker synchronization recovery walkthrough", _run_fig8_13,
        ),
        Experiment(
            "fig15", "Figure 15",
            "TCP throughput vs ATM PVC rate, 7 curves", _run_fig15,
        ),
        Experiment(
            "grr_worst", "Section 6.2 (in text)",
            "Adversarial alternating sizes: SRR vs GRR", _run_grr_worst,
        ),
        Experiment(
            "sync_loss", "Section 6.3, finding 1",
            "FIFO restored after loss stops (up to 80% loss)", _run_sync_loss,
        ),
        Experiment(
            "marker_freq", "Section 6.3, finding 2",
            "Marker frequency vs out-of-order deliveries", _run_marker_freq,
        ),
        Experiment(
            "marker_pos", "Section 6.3, finding 3",
            "Marker position within the round vs out-of-order deliveries",
            _run_marker_pos,
        ),
        Experiment(
            "credit_fc", "Section 6.3, finding 4",
            "Credit flow control eliminates congestion loss", _run_credit_fc,
        ),
        Experiment(
            "video", "Section 6.3, finding 5",
            "Video playback: quasi-FIFO reordering vs pure loss", _run_video,
        ),
        Experiment(
            "fault_tolerance", "Section 5 (extension)",
            "Reset / reconfiguration / self-stabilization scenarios",
            _run_fault_tolerance,
        ),
        Experiment(
            "chaos", "Section 5 / Theorem 5.1 (extension)",
            "Randomized fault schedules vs the channel lifecycle stack: "
            "degraded-mode throughput and recovery latency",
            _run_chaos,
        ),
        Experiment(
            "reliability", "Section 7 (extension)",
            "Best-effort vs selective-repeat ARQ under persistent loss: "
            "completeness, ordering, and retransmission cost",
            _run_reliability,
        ),
        Experiment(
            "recovery", "Section 5 (extension)",
            "Crash-tolerant endpoints: recovery latency vs checkpoint "
            "interval, with warm (checkpointed) and cold-resync restarts",
            _run_recovery,
        ),
        Experiment(
            "fec", "Section 7 (extension)",
            "Erasure-coded striping: proactive FEC vs ARQ vs hybrid "
            "under random and bursty loss",
            _run_fec,
        ),
        Experiment(
            "mtu", "Section 6.2 (extension)",
            "Min-MTU restriction vs internal fragmentation", _run_mtu,
        ),
        Experiment(
            "multiflow", "Adoption (extension)",
            "Multiple TCP flows sharing one strIPe bundle", _run_multiflow,
        ),
        Experiment(
            "fabric", "Multi-tenant fabric (extension)",
            "10k weighted flows through one bundle (FQ x SRR)", _run_fabric,
        ),
        Experiment(
            "scalability", "Title claim (extension)",
            "Throughput / ordering / recovery vs channel count",
            _run_scalability, fast_supported=True,
        ),
        Experiment(
            "sprinklers", "Synchronization models (extension)",
            "Sprinklers vs SRR+markers: reorder, memory, chaos, scale "
            "on all five transports",
            _run_sprinklers,
        ),
        Experiment(
            "tcp_channels", "Section 2 (extension)",
            "Striping over TCP connections: guaranteed FIFO, no markers",
            _run_tcp_channels,
        ),
        Experiment(
            "cell_striping", "Conclusion (extension)",
            "Cell vs packet striping over ATM: the early-discard argument",
            _run_cell_striping,
        ),
        Experiment(
            "kernel_bench", "Conclusion (perf)",
            "Scheduler-kernel stepping: frozen vs mutable vs batched",
            _run_kernel_bench,
        ),
        Experiment(
            "sim_bench", "Section 6 (perf)",
            "End-to-end simulator: reference path vs batched fast path",
            _run_sim_bench,
        ),
    ]
}


def run_experiment(name: str, quick: bool = False, fast: bool = False) -> Any:
    """Run one experiment by registry name; returns its result object."""
    experiment = EXPERIMENTS.get(name)
    if experiment is None:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        )
    if fast and experiment.fast_supported:
        return experiment.run(quick=quick, fast=True)
    return experiment.run(quick=quick)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", help="experiment names to run")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--quick", action="store_true", help="shorter simulations"
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="run on the burst-batched simulation fast path where "
             "supported (identical results, lower wall clock)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write all results as JSON to PATH",
    )
    args = parser.parse_args(argv)

    if args.list or (not args.names and not args.all):
        for experiment in EXPERIMENTS.values():
            print(f"{experiment.name:>12}  {experiment.paper_ref:<22} "
                  f"{experiment.description}")
        return 0

    names = list(EXPERIMENTS) if args.all else args.names
    collected: Dict[str, Any] = {}
    for name in names:
        experiment = EXPERIMENTS.get(name)
        if experiment is None:
            print(f"unknown experiment: {name}", file=sys.stderr)
            return 2
        banner = f"=== {experiment.paper_ref}: {experiment.description} ==="
        print(banner)
        start = time.time()
        if args.fast and experiment.fast_supported:
            result = experiment.run(quick=args.quick, fast=True)
        else:
            result = experiment.run(quick=args.quick)
        text = result if isinstance(result, str) else result.render()
        print(text)
        print(f"--- {name} done in {time.time() - start:.1f}s ---\n")
        if args.json:
            collected[name] = to_jsonable(result)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(collected, handle, indent=2)
        print(f"results written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
