"""The MTU-mismatch trade-off (§6.2 discussion, implemented and measured).

Paper: "we obtain throughputs in excess of 70 Mbps over an ATM interface
using 8 KB sized packets.  However, our striping algorithm restricts the
MTU size used for a collection of links to be the smallest MTU size ...
we recommend that striping be done on links with similar MTU sizes."

This experiment quantifies all three options on an Ethernet (MTU 1500) +
ATM (MTU 9180) bundle with a CPU-bound receiver:

1. **plain strIPe** — bundle MTU clamped to 1500 (the paper's design);
2. **fragmenting strIPe** — bundle MTU 9180 via internal fragmentation
   (per-fragment headers, i.e. the modification the paper's goals forbid);
3. **ATM alone at 9180** — the paper's "70 Mbps with 8 KB packets"
   reference point: no striping, no MTU clamp.

Expected shape: with the per-packet CPU bottleneck, big-MTU options push
far more bytes per CPU-second, so (3) beats (1) despite using one link —
the reason the paper recommends similar-MTU bundles — while (2) recovers
the large-MTU efficiency *and* the second link.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.experiments.topology import (
    R_ATM_IP,
    R_ETH_IP,
    SCHEME_SRR,
    TestbedConfig,
    measure_tcp_goodput,
)

ATM_BIG_MTU = 9180


@dataclass
class MtuRow:
    label: str
    mtu: int
    goodput_mbps: float
    cpu_utilization: float


@dataclass
class MtuFragmentationResult:
    rows: List[MtuRow]

    def row(self, label: str) -> MtuRow:
        return next(r for r in self.rows if r.label == label)

    def render(self) -> str:
        header = f"{'configuration':>28} {'MTU':>6} {'Mbps':>7} {'CPU':>6}"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.label:>28} {row.mtu:>6} {row.goodput_mbps:>7.2f} "
                f"{row.cpu_utilization:>6.2f}"
            )
        return "\n".join(lines)


def run_mtu_fragmentation(
    atm_mbps: float = 45.0,
    duration_s: float = 3.0,
    warmup_s: float = 1.0,
) -> MtuFragmentationResult:
    """Measure the three MTU strategies on a 10 + 45 Mbps bundle."""
    base = TestbedConfig(atm_mbps=atm_mbps, atm_mtu=ATM_BIG_MTU)
    rows: List[MtuRow] = []

    plain = measure_tcp_goodput(
        replace(base, stripe_scheme=SCHEME_SRR, stripe_fragmentation=False),
        R_ETH_IP, duration_s, warmup_s,
        sizes=(1460,), mss=1460,
    )
    rows.append(MtuRow("plain strIPe (min MTU)", 1500,
                       plain["goodput_mbps"], plain["cpu_utilization"]))

    frag = measure_tcp_goodput(
        replace(base, stripe_scheme=SCHEME_SRR, stripe_fragmentation=True),
        R_ETH_IP, duration_s, warmup_s,
        sizes=(ATM_BIG_MTU - 40,), mss=ATM_BIG_MTU - 40,
    )
    rows.append(MtuRow("fragmenting strIPe (max MTU)", ATM_BIG_MTU,
                       frag["goodput_mbps"], frag["cpu_utilization"]))

    atm_alone = measure_tcp_goodput(
        replace(base, stripe_scheme=None),
        R_ATM_IP, duration_s, warmup_s,
        sizes=(ATM_BIG_MTU - 40,), mss=ATM_BIG_MTU - 40,
    )
    rows.append(MtuRow("ATM alone, 9180 MTU", ATM_BIG_MTU,
                       atm_alone["goodput_mbps"],
                       atm_alone["cpu_utilization"]))
    return MtuFragmentationResult(rows)
