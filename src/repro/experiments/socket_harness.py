"""Shared harness for the transport-level (section 6.3) experiments.

Builds N parallel links between two hosts, a striped-socket sender
(SRR + markers over UDP) and receiver, a closed-loop message source, and
per-delivery records for reordering analysis.  Loss models are installed on
the forward channels and can be switched off mid-run (the "after packet
losses stopped" part of the paper's findings).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.packet import PacketPool
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.sim.engine import Simulator
from repro.sim.loss import BernoulliLoss, SizeGatedLoss
from repro.transport.credit import CreditSender
from repro.transport.endpoint import make_discipline, receiver_mode_for
from repro.transport.reliability import arq_enabled
from repro.transport.fast_path import (
    FastStripedReceiver,
    FastStripedSender,
    wire_fast_ack_path,
    wire_size,
)
from repro.transport.socket_striping import (
    StripedSocketReceiver,
    StripedSocketSender,
)
from repro.workloads.generators import ClosedLoopSource, ConstantSizes

BASE_PORT = 6000
CREDIT_PORT = 6999
ACK_PORT = 6998


@dataclass
class SocketTestbedConfig:
    """Configuration of the N-channel UDP striping testbed."""

    n_channels: int = 2
    link_mbps: Sequence[float] = (10.0, 10.0)
    prop_delay_s: Sequence[float] = (0.5e-3, 1.5e-3)
    link_queue_frames: int = 40
    loss_rates: Sequence[float] = (0.0, 0.0)
    message_bytes: int = 1000
    marker_interval_rounds: int = 1
    marker_position: int = 0
    mode: str = "marker"  # marker | plain | none
    #: named endpoint discipline (see repro.transport.make_discipline);
    #: None keeps the paper's SRR.  When set, ``mode`` is derived from the
    #: discipline (its own receiver half for mppp/bonding, plain logical
    #: reception for causal policies, arrival order for non-causal ones).
    discipline: Optional[str] = None
    #: extra keyword options forwarded to ``make_discipline`` (e.g.
    #: ``{"initial_share": 1.0}`` so Sprinklers provisions its full stripe
    #: for the harness's single flowless closed-loop aggregate instead of
    #: growing — and reordering — through mid-stream resizes).
    discipline_options: Optional[dict] = None
    buffer_packets: Optional[int] = None
    use_credit: bool = False
    source_backlog: int = 16
    #: if False, no closed-loop source is created; the caller paces
    #: submissions itself (e.g. the video workload).
    closed_loop: bool = True
    #: if True, loss hits only data-sized frames (markers/credits immune),
    #: giving an identical data-loss pattern across control-plane variants
    #: (used by the marker-position study).
    data_only_loss: bool = False
    #: if True, build the direct-to-channel fast path (burst-batched
    #: channels + batched striper pump) instead of the full UDP/IP stack.
    #: Delivery behaviour is identical (property-tested) in every
    #: reliability mode; credit flow control is not supported on the
    #: fast path.
    fast: bool = False
    #: optional receiver-side dead-channel watchdog
    #: (:class:`repro.transport.endpoint.ChannelFailureDetector`);
    #: reference path only.
    failure_detector: Optional[object] = None
    #: service level (``best_effort | quasi_fifo | reliable | fec |
    #: hybrid``); reliable/hybrid arm selective-repeat ARQ end to end,
    #: with acks on a dedicated reverse flow (UDP ``ACK_PORT`` on the
    #: reference path, the first link's reverse channel on the fast
    #: path); fec/hybrid add erasure-coded stripe groups.
    reliability: str = "quasi_fifo"
    #: ``{"sender": {...}, "receiver": {...}}`` forwarded to the ARQ halves
    reliability_options: Optional[dict] = None
    #: recycle source packets through a
    #: :class:`~repro.core.packet.PacketPool` (a pure memory optimization;
    #: reliable mode pools only when the run is loss-free, since a lossy
    #: ARQ window can resurrect a retired packet's stale copy).
    packet_pool: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("link_mbps", "prop_delay_s", "loss_rates"):
            values = list(getattr(self, name))
            if len(values) == 1:
                values = values * self.n_channels
            if len(values) != self.n_channels:
                raise ValueError(f"{name} must have {self.n_channels} entries")
            setattr(self, name, tuple(values))
        if self.fast and self.use_credit:
            raise ValueError("credit flow control requires the reference path")
        if self.reliability not in (
            "best_effort", "quasi_fifo",
        ) and self.discipline not in (None, "srr"):
            raise ValueError(
                f"{self.reliability} mode requires the SRR discipline"
            )
        if self.packet_pool:
            if not self.closed_loop:
                raise ValueError("packet_pool requires the closed-loop source")
            if arq_enabled(self.reliability) and any(
                p > 0 for p in self.loss_rates
            ):
                raise ValueError(
                    "packet_pool + reliable requires loss-free channels "
                    "(an in-flight retransmit copy could alias a recycled "
                    "packet)"
                )


@dataclass
class Delivery:
    time: float
    seq: int
    size: int


@dataclass
class SocketTestbed:
    """A built §6.3 testbed."""

    sim: Simulator
    config: SocketTestbedConfig
    sender_stack: Stack
    receiver_stack: Stack
    links: List[Link]
    loss_models: List[BernoulliLoss]
    sender: StripedSocketSender | FastStripedSender
    receiver: StripedSocketReceiver | FastStripedReceiver
    source: Optional[ClosedLoopSource]
    pool: Optional[PacketPool] = None
    deliveries: List[Delivery] = field(default_factory=list)

    def stop_losses_at(self, time: float) -> None:
        """Schedule all channel loss to cease at ``time``."""

        def stop() -> None:
            for model in self.loss_models:
                model.p = 0.0

        self.sim.schedule_at(time, stop)

    def delivered_seqs(self) -> List[int]:
        return [d.seq for d in self.deliveries]

    def deliveries_after(self, time: float) -> List[Delivery]:
        return [d for d in self.deliveries if d.time >= time]

    @property
    def messages_sent(self) -> int:
        if self.source is not None:
            return self.source.generated
        return self.sender.messages_submitted


def build_socket_testbed(
    sim: Simulator, config: SocketTestbedConfig
) -> SocketTestbed:
    """Assemble hosts, N links, striped sockets, and the message source."""
    sender_stack = Stack(sim, "S")
    receiver_stack = Stack(sim, "R")
    links: List[Link] = []
    loss_models: List[BernoulliLoss] = []
    destinations: List[Tuple[str, int]] = []
    rng = random.Random(config.seed)

    for index in range(config.n_channels):
        s_ip = f"10.{10 + index}.0.1"
        r_ip = f"10.{10 + index}.0.2"
        s_if = EthernetInterface(sim, f"ch{index}s", s_ip)
        r_if = EthernetInterface(sim, f"ch{index}r", r_ip)
        sender_stack.add_interface(s_if)
        receiver_stack.add_interface(r_if)
        loss = BernoulliLoss(
            config.loss_rates[index],
            rng=random.Random(rng.randrange(1 << 30)),
        )
        loss_models.append(loss)
        installed_loss = (
            SizeGatedLoss(loss, min_size=500)
            if config.data_only_loss
            else loss
        )
        links.append(
            Link(
                sim, s_if, r_if,
                bandwidth_bps=config.link_mbps[index] * 1e6,
                prop_delay=config.prop_delay_s[index],
                queue_limit=config.link_queue_frames,
                loss_ab=installed_loss,
                name=f"channel{index}",
            )
        )
        sender_stack.routing.add(r_ip, 24, s_if)
        receiver_stack.routing.add(s_ip, 24, r_if)
        # Pre-populate ARP: the paper's channels are long-lived, and an
        # ARP exchange lost to injected channel loss would otherwise
        # dominate the measurement.
        s_if.arp_cache.install(r_if.ip_address, r_if.mac)
        r_if.arp_cache.install(s_if.ip_address, s_if.mac)
        destinations.append((r_ip, BASE_PORT + index))

    if config.discipline is not None:
        # Any (s0, f, g) scheme through the same testbed: the sender gets
        # the named discipline, the receiver its matching reception mode.
        options = dict(
            quantum=float(config.message_bytes), seed=config.seed
        )
        options.update(config.discipline_options or {})
        algorithm_s = make_discipline(
            config.discipline, config.n_channels, **options
        )
        config.mode = receiver_mode_for(algorithm_s)
        algorithm_r = None
        if config.mode == "plain":
            algorithm_r = make_discipline(
                config.discipline, config.n_channels, **options
            ).algorithm
    else:
        algorithm_s = SRR([float(config.message_bytes)] * config.n_channels)
        algorithm_r = SRR([float(config.message_bytes)] * config.n_channels)
    marker_policy = None
    if config.mode == "marker" and config.marker_interval_rounds > 0:
        marker_policy = MarkerPolicy(
            interval_rounds=config.marker_interval_rounds,
            position=config.marker_position,
        )

    credit_sender: Optional[CreditSender] = None
    if config.use_credit:
        if config.buffer_packets is None:
            raise ValueError("use_credit requires buffer_packets")
        credit_sender = CreditSender(
            config.n_channels, initial_credit=config.buffer_packets
        )

    reliable = arq_enabled(config.reliability)
    arq_options = config.reliability_options or {}
    sender: StripedSocketSender | FastStripedSender
    if config.fast:
        sender = FastStripedSender(
            sim, [link.ab for link in links], algorithm_s,
            marker_policy=marker_policy,
            reliability=config.reliability,
            reliability_options=arq_options.get("sender"),
        )
    else:
        sender = StripedSocketSender(
            sim, sender_stack, destinations, algorithm_s,
            marker_policy=marker_policy,
            credit=credit_sender,
            credit_port=CREDIT_PORT if config.use_credit else None,
            reliability=config.reliability,
            ack_port=ACK_PORT if reliable else None,
            reliability_options=arq_options.get("sender"),
        )

    testbed_ref: List[SocketTestbed] = []

    pool: Optional[PacketPool] = None
    release_on_delivery = False
    if config.packet_pool:
        pool = PacketPool()
        # In reliable mode a delivered packet is still referenced by the
        # sender's retransmission window; recycling waits for the ack
        # (wired below via on_retire).  Otherwise delivery is the end of
        # the packet's life.
        release_on_delivery = not reliable

    def on_message(packet) -> None:
        # BONDING delivers frames (sequence), everything else packets (seq).
        seq = getattr(packet, "seq", None)
        if seq is None:
            seq = getattr(packet, "sequence", -1)
        testbed_ref[0].deliveries.append(
            Delivery(time=sim.now, seq=seq, size=packet.size)
        )
        if release_on_delivery:
            pool.release(packet)

    receiver: StripedSocketReceiver | FastStripedReceiver
    if config.fast:
        send_ack = None
        if reliable:
            # Reverse ack flow, fast counterpart: acks ride the first
            # link's reverse channel directly (the reference path routes
            # them over the same link as a dedicated UDP flow).
            ack_port = wire_fast_ack_path(links[0].ba, sender)
            send_ack = ack_port.send_sack
        receiver = FastStripedReceiver(
            sim, config.n_channels, algorithm_r,
            mode=config.mode,
            on_message=on_message,
            buffer_packets=config.buffer_packets,
            reliability=config.reliability,
            send_ack=send_ack,
            reliability_options=arq_options.get("receiver"),
        )
        # Bypass the UDP/IP/Ethernet plumbing: transport payloads ride the
        # forward channels directly, with the stack's framing bytes folded
        # into size_of so wire timing is unchanged, and arrivals feed the
        # receiver without the interface demux chain.
        for index, link in enumerate(links):
            channel = link.ab
            channel.fast = True
            channel.size_of = wire_size
            channel.on_deliver = receiver.channel_handler(index)
    else:
        receiver = StripedSocketReceiver(
            sim, receiver_stack, config.n_channels, algorithm_r,
            base_port=BASE_PORT,
            mode=config.mode,
            on_message=on_message,
            buffer_packets=config.buffer_packets,
            credit_to="10.10.0.1" if config.use_credit else None,
            credit_port=CREDIT_PORT if config.use_credit else None,
            failure_detector=config.failure_detector,
            reliability=config.reliability,
            ack_to="10.10.0.1" if reliable else None,
            ack_port=ACK_PORT if reliable else None,
            reliability_options=(config.reliability_options or {}).get(
                "receiver"
            ),
        )

    def submit_backlog() -> int:
        # A full ARQ window must read as "backlogged" to the closed-loop
        # source: the retransmission buffer exerts backpressure instead
        # of absorbing unbounded overflow.
        if not sender.can_submit():
            return 1 << 30
        return sender.backlog

    if pool is not None:
        receiver.retain_delivered = False
        if reliable:
            sender.reliable.on_retire = pool.release
        else:
            # Transmit-side drops (loss, corruption, full queue) end a
            # packet's life in best-effort/quasi-FIFO mode.
            def release_drop(packet, reason) -> None:
                pool.release(packet)

            for link in links:
                if link.ab.on_drop is None:
                    link.ab.on_drop = release_drop

    source: Optional[ClosedLoopSource] = None
    if config.closed_loop:
        source = ClosedLoopSource(
            sim,
            submit=sender.submit_packet,
            backlog_fn=submit_backlog,
            size_fn=ConstantSizes(config.message_bytes),
            target=config.source_backlog,
            submit_many=sender.submit_packets,
            pool=pool,
        )
        source.start()

    # Wake the striper (and refill the source) whenever a channel's
    # transmit queue drains — the backpressure feedback path.
    def wake() -> None:
        sender.pump()
        if source is not None:
            source.poke()

    for link in links:
        link.ab.on_space = wake
    reliable_sender = getattr(sender, "reliable", None)
    if reliable_sender is not None and reliable_sender.on_window_open is None:
        reliable_sender.on_window_open = wake

    testbed = SocketTestbed(
        sim=sim,
        config=config,
        sender_stack=sender_stack,
        receiver_stack=receiver_stack,
        links=links,
        loss_models=loss_models,
        sender=sender,
        receiver=receiver,
        source=source,
        pool=pool,
    )
    testbed_ref.append(testbed)
    return testbed
