"""Sprinklers vs SRR+markers: the marker-free head-to-head.

Sprinklers (hash-synchronized, per-flow stripes) and the paper's
SRR+markers (simulated-sender resequencing) answer the same question —
"how does the receiver recover sender order?" — with opposite costs:
markers buy any-traffic generality with control packets and resequencer
memory; Sprinklers buys zero receiver state with per-flow rate tracking
and stripe pinning.  This experiment measures the trade on every
transport the repo has:

* **head-to-head on all five transports** (socket reference, fast path,
  session, TCP channels, duplex): goodput, reorder rate
  (:mod:`repro.analysis.reorder`), receiver high-water-mark memory, and
  markers sent.  On stable equal-rate channels Sprinklers must deliver
  **in order with zero resequencer buffering**; on elastic TCP channels
  its reorder rate is a *measured data point* (per-channel congestion
  state skews arrival order — exactly the Table 1 case where guaranteed
  FIFO needs logical reception, which Sprinklers deliberately omits).
* **goodput under chaos faults** (the PR-4 fault families — crashes,
  loss bursts, corruption — via :class:`repro.sim.faults.FaultPlan`):
  markers resynchronize through faults; Sprinklers never desynchronizes
  but its pinned flows ride dead channels until recovery.
* **flow-count scalability**: thousands of mice through the PR-6 fabric
  over one bundle — per-flow stripe state is O(flows), receiver state
  stays zero, and Jain's index across equal-weight flows stays high.

Results are emitted as :class:`SprinklersResult`; the benchmark wrapper
(``benchmarks/test_bench_sprinklers.py``) asserts the acceptance bars
(zero reordering on stable transports, zero receiver memory, goodput
parity) and writes ``BENCH_sprinklers.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.reorder import analyze_order
from repro.core.fairness import jain_fairness_index
from repro.core.packet import Packet
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.experiments.fault_tolerance import build_session_testbed
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.experiments.tcp_channels import build_tcp_striped
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fabric import FabricScheduler, FlowTable
from repro.transport.fast_path import FastChannelPort

TRANSPORTS = ("socket", "fast", "session", "tcp", "duplex")
#: transports whose channels are stable (fixed-rate FIFO links) — the
#: regime where Sprinklers' in-order proof obligation applies.  TCP
#: channels are elastic (per-connection cwnd dynamics skew arrival
#: order), so TCP is measured but carries no zero-reorder obligation.
STABLE_TRANSPORTS = ("socket", "fast", "session", "duplex")

#: Sprinklers options for single-aggregate (flowless) workloads: the
#: whole stream is one flow, so provision its full stripe up front
#: instead of growing — and reordering — through mid-stream resizes.
AGGREGATE_OPTIONS = {"initial_share": 1.0}

MESSAGE_BYTES = 1000
N_CHANNELS = 4


@dataclass
class HeadToHeadRow:
    transport: str
    discipline: str
    delivered: int
    goodput_mbps: float
    out_of_order: int
    reorder_rate: float
    receiver_hwm: int
    markers_sent: int

    def render(self) -> str:
        return (
            f"{self.transport:>8} {self.discipline:>10} "
            f"{self.delivered:>8} {self.goodput_mbps:>7.2f} "
            f"{self.out_of_order:>6} {self.reorder_rate:>8.4%} "
            f"{self.receiver_hwm:>4} {self.markers_sent:>8}"
        )


@dataclass
class ChaosRow:
    discipline: str
    seed: int
    delivered: int
    duplicates: int
    goodput_during_mbps: float
    goodput_after_mbps: float

    def render(self) -> str:
        return (
            f"{self.discipline:>10} {self.seed:>4} {self.delivered:>8} "
            f"{self.duplicates:>4} {self.goodput_during_mbps:>8.2f} "
            f"{self.goodput_after_mbps:>8.2f}"
        )


@dataclass
class ScaleRow:
    discipline: str
    n_flows: int
    delivered: int
    total: int
    goodput_mbps: float
    jain_flows: float
    receiver_hwm: int
    stripe_state_flows: int

    def render(self) -> str:
        return (
            f"{self.discipline:>10} {self.n_flows:>6} "
            f"{self.delivered:>7}/{self.total:<7} "
            f"{self.goodput_mbps:>8.2f} {self.jain_flows:>6.4f} "
            f"{self.receiver_hwm:>4} {self.stripe_state_flows:>7}"
        )


@dataclass
class SprinklersResult:
    head_to_head: List[HeadToHeadRow] = field(default_factory=list)
    chaos: List[ChaosRow] = field(default_factory=list)
    scale: List[ScaleRow] = field(default_factory=list)

    def row(self, transport: str, discipline: str) -> HeadToHeadRow:
        for row in self.head_to_head:
            if row.transport == transport and row.discipline == discipline:
                return row
        raise KeyError((transport, discipline))

    def render(self) -> str:
        head = (
            f"{'trans':>8} {'disc':>10} {'deliv':>8} {'Mbps':>7} "
            f"{'OOO':>6} {'reorder':>9} {'hwm':>4} {'markers':>8}"
        )
        chaos_head = (
            f"{'disc':>10} {'seed':>4} {'deliv':>8} {'dup':>4} "
            f"{'during':>8} {'after':>8}"
        )
        scale_head = (
            f"{'disc':>10} {'flows':>6} {'delivered':>15} "
            f"{'Mbps':>8} {'jain':>6} {'hwm':>4} {'stripes':>7}"
        )
        lines = ["head-to-head (stable channels unless noted; tcp elastic):",
                 head, "-" * len(head)]
        lines += [row.render() for row in self.head_to_head]
        lines += ["", "chaos faults (socket transport):",
                  chaos_head, "-" * len(chaos_head)]
        lines += [row.render() for row in self.chaos]
        lines += ["", "flow-count scale (fabric over one bundle):",
                  scale_head, "-" * len(scale_head)]
        lines += [row.render() for row in self.scale]
        return "\n".join(lines)


def _receiver_hwm(candidate) -> int:
    """Best-effort high-water mark across the transports' receiver shapes."""
    state = getattr(candidate, "receiver_state", None)
    if state is not None:
        return int(state().get("max_buffered", 0))
    stats = getattr(candidate, "stats", None)
    if stats is not None and hasattr(stats, "max_buffered"):
        return int(stats.max_buffered)
    return int(getattr(candidate, "max_buffered", 0))


def _markers_sent(*candidates) -> int:
    for candidate in candidates:
        count = getattr(candidate, "markers_sent", None)
        if count is not None:
            return int(count)
    return 0


# --------------------------------------------------------------------- #
# head-to-head runs, one per (transport, discipline)

def _discipline_kwargs(discipline: str) -> Dict:
    if discipline == "sprinklers":
        return {
            "discipline": "sprinklers",
            "discipline_options": dict(AGGREGATE_OPTIONS),
        }
    return {}  # the harness default IS SRR+markers


def _run_socket(discipline: str, duration_s: float, fast: bool):
    sim = Simulator()
    config = SocketTestbedConfig(
        n_channels=N_CHANNELS,
        link_mbps=(10.0,),
        prop_delay_s=(1e-3,) * N_CHANNELS,
        loss_rates=(0.0,),
        message_bytes=MESSAGE_BYTES,
        fast=fast,
        seed=2,
        **_discipline_kwargs(discipline),
    )
    testbed = build_socket_testbed(sim, config)
    sim.run(until=duration_s)
    seqs = testbed.delivered_seqs()
    goodput = sum(d.size for d in testbed.deliveries) * 8 / duration_s / 1e6
    return (
        seqs, goodput,
        _receiver_hwm(testbed.receiver),
        _markers_sent(getattr(testbed.sender, "striper", None)),
    )


def _run_session(discipline: str, duration_s: float):
    sim = Simulator()
    testbed = build_session_testbed(
        sim, n_channels=N_CHANNELS, link_mbps=(10.0,), loss_rates=(0.0,),
        message_bytes=MESSAGE_BYTES, seed=2,
        **_discipline_kwargs(discipline),
    )
    sim.run(until=duration_s)
    seqs = [seq for _, seq in testbed.deliveries]
    goodput = len(seqs) * MESSAGE_BYTES * 8 / duration_s / 1e6
    return (
        seqs, goodput,
        _receiver_hwm(testbed.receiver.session.receiver),
        _markers_sent(testbed.sender.session.striper),
    )


def _run_tcp(discipline: str, duration_s: float):
    sim = Simulator()
    kwargs = _discipline_kwargs(discipline)
    sender, receiver, _ = build_tcp_striped(
        sim, n_channels=N_CHANNELS, message_sizes=(MESSAGE_BYTES,), seed=2,
        **kwargs,
    )
    sim.run(until=duration_s)
    seqs = [p.seq for p in receiver.delivered]
    goodput = (
        sum(p.size for p in receiver.delivered) * 8 / duration_s / 1e6
    )
    return seqs, goodput, _receiver_hwm(receiver), 0


def _run_duplex(discipline: str, duration_s: float):
    from repro.net.ethernet import EthernetInterface
    from repro.net.stack import Link, Stack
    from repro.transport.duplex import connect_duplex
    from repro.workloads.generators import ClosedLoopSource

    sim = Simulator()
    a, b = Stack(sim, "A"), Stack(sim, "B")
    a_targets, b_targets, links = [], [], []
    for index in range(N_CHANNELS):
        ia = EthernetInterface(sim, f"sp{index}a", f"10.{120+index}.0.1")
        ib = EthernetInterface(sim, f"sp{index}b", f"10.{120+index}.0.2")
        a.add_interface(ia)
        b.add_interface(ib)
        links.append(Link(
            sim, ia, ib, bandwidth_bps=10e6, prop_delay=1e-3,
            queue_limit=40, name=f"spduplex{index}",
        ))
        a.routing.add(f"10.{120+index}.0.2", 24, ia)
        b.routing.add(f"10.{120+index}.0.1", 24, ib)
        ia.arp_cache.install(ib.ip_address, ib.mac)
        ib.arp_cache.install(ia.ip_address, ia.mac)
        a_targets.append((f"10.{120+index}.0.2", 7100 + index))
        b_targets.append((f"10.{120+index}.0.1", 7000 + index))
    if discipline == "sprinklers":
        end_a, end_b = connect_duplex(
            sim, a, b, a_targets, b_targets,
            discipline="sprinklers",
            discipline_options=dict(AGGREGATE_OPTIONS),
        )
    else:
        end_a, end_b = connect_duplex(
            sim, a, b, a_targets, b_targets,
            algorithm_factory=lambda: SRR(
                [float(MESSAGE_BYTES)] * N_CHANNELS
            ),
            buffer_packets=64,
        )
    source = ClosedLoopSource(
        sim, end_a.submit_packet, lambda: end_a.sender.backlog,
        lambda: MESSAGE_BYTES, target=16,
    )
    source.start()
    for link in links:
        link.ab.on_space = end_a.sender.pump
        link.ba.on_space = end_b.sender.pump
    sim.run(until=duration_s)
    seqs = [p.seq for p in end_b.delivered]
    goodput = len(seqs) * MESSAGE_BYTES * 8 / duration_s / 1e6
    return (
        seqs, goodput,
        _receiver_hwm(end_b.receiver),
        _markers_sent(getattr(end_a.sender, "striper", None)),
    )


def _head_to_head(duration_s: float) -> List[HeadToHeadRow]:
    runners = {
        "socket": lambda d: _run_socket(d, duration_s, fast=False),
        "fast": lambda d: _run_socket(d, duration_s, fast=True),
        "session": lambda d: _run_session(d, duration_s),
        "tcp": lambda d: _run_tcp(d, duration_s),
        "duplex": lambda d: _run_duplex(d, duration_s),
    }
    rows: List[HeadToHeadRow] = []
    for transport in TRANSPORTS:
        for discipline in ("srr", "sprinklers"):
            seqs, goodput, hwm, markers = runners[transport](discipline)
            report = analyze_order(seqs)
            rows.append(HeadToHeadRow(
                transport=transport,
                discipline=discipline,
                delivered=report.delivered,
                goodput_mbps=goodput,
                out_of_order=report.out_of_order,
                reorder_rate=(
                    report.out_of_order / report.delivered
                    if report.delivered else 0.0
                ),
                receiver_hwm=hwm,
                markers_sent=markers,
            ))
    return rows


# --------------------------------------------------------------------- #
# chaos faults (PR-4 fault families) on the socket transport

def _run_chaos_leg(
    discipline: str, seed: int, total_s: float
) -> ChaosRow:
    faults_start, faults_cease = 0.3, min(1.1, total_s - 0.4)
    sim = Simulator()
    config = SocketTestbedConfig(
        n_channels=N_CHANNELS,
        link_mbps=(10.0,),
        prop_delay_s=(1e-3,) * N_CHANNELS,
        loss_rates=(0.0,),
        message_bytes=MESSAGE_BYTES,
        seed=seed,
        **_discipline_kwargs(discipline),
    )
    testbed = build_socket_testbed(sim, config)
    plan = FaultPlan(
        n_channels=N_CHANNELS,
        cease_by=faults_cease,
        start_after=faults_start,
        max_events=4,
    )
    schedule = plan.schedule(seed)
    schedule.install(sim, [link.ab for link in testbed.links], seed=seed)
    sim.run(until=total_s)
    cease = schedule.last_fault_end

    def goodput_between(start: float, end: float) -> float:
        if end <= start:
            return 0.0
        count = sum(
            1 for d in testbed.deliveries if start <= d.time < end
        )
        return count * MESSAGE_BYTES * 8 / (end - start) / 1e6

    seqs = testbed.delivered_seqs()
    return ChaosRow(
        discipline=discipline,
        seed=seed,
        delivered=len(seqs),
        duplicates=len(seqs) - len(set(seqs)),
        goodput_during_mbps=goodput_between(faults_start, cease),
        goodput_after_mbps=goodput_between(cease + 0.2, total_s),
    )


# --------------------------------------------------------------------- #
# flow-count scale: many mice through the fabric over one bundle

def _run_scale_leg(
    discipline: str, n_flows: int, packets_per_flow: int = 4,
    packet_bytes: int = 400,
) -> ScaleRow:
    sim = Simulator()
    channels = [
        Channel(
            sim, bandwidth_bps=250e6, prop_delay=0.2e-3,
            queue_limit=64, name=f"spch{i}",
        )
        for i in range(N_CHANNELS)
    ]
    ports = [FastChannelPort(ch) for ch in channels]
    table = FlowTable(quantum_bytes=float(packet_bytes))
    fabric = FabricScheduler(table, flow_buffer_packets=None)

    per_flow_bytes: Dict[str, int] = {}
    delivered_count = 0
    delivered_bytes = 0

    def on_message(packet: Packet) -> None:
        nonlocal delivered_count, delivered_bytes
        delivered_count += 1
        delivered_bytes += packet.size
        per_flow_bytes[packet.flow] = (
            per_flow_bytes.get(packet.flow, 0) + packet.size
        )

    if discipline == "sprinklers":
        sender = StripeSenderPipeline(
            ports, "sprinklers", sim=sim, fabric=fabric,
        )
        receiver = StripeReceiverPipeline(
            N_CHANNELS, None, mode="direct", on_message=on_message, sim=sim,
        )
    else:
        quanta = [float(packet_bytes) * 3] * N_CHANNELS
        sender = StripeSenderPipeline(
            ports, SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=8),
            sim=sim, fabric=fabric,
        )
        receiver = StripeReceiverPipeline(
            N_CHANNELS, SRR(quanta), mode="marker",
            on_message=on_message, sim=sim,
        )
    for index, channel in enumerate(channels):
        channel.on_deliver = receiver.channel_handler(index)
        channel.on_space = sender._pump

    rng = random.Random(11)
    flow_ids = [f"f{i}" for i in range(n_flows)]
    for flow_id in flow_ids:
        table.register(flow_id)
    submissions = [
        (flow_id, seq)
        for seq, flow_id in enumerate(
            fid for fid in flow_ids for _ in range(packets_per_flow)
        )
    ]
    rng.shuffle(submissions)
    for flow_id, seq in submissions:
        sender.submit(flow_id, Packet(size=packet_bytes, seq=seq))
    sim.run()

    total = n_flows * packets_per_flow
    duration = sim.now or 1.0
    sharer = sender.striper.sharer
    stripe_flows = getattr(sharer, "flow_count", 0)
    return ScaleRow(
        discipline=discipline,
        n_flows=n_flows,
        delivered=delivered_count,
        total=total,
        goodput_mbps=delivered_bytes * 8 / duration / 1e6,
        jain_flows=jain_fairness_index(
            [float(per_flow_bytes.get(fid, 0)) for fid in flow_ids]
        ),
        receiver_hwm=_receiver_hwm(receiver),
        stripe_state_flows=stripe_flows,
    )


def run_sprinklers(
    duration_s: float = 1.0,
    chaos_total_s: float = 2.0,
    chaos_seeds=(3, 9),
    scale_flows: int = 10_000,
    quick: bool = False,
) -> SprinklersResult:
    """The full Sprinklers vs SRR+markers comparison."""
    if quick:
        duration_s = 0.5
        chaos_total_s = 1.5
        chaos_seeds = (3,)
        scale_flows = 1_000
    result = SprinklersResult()
    result.head_to_head = _head_to_head(duration_s)
    for seed in chaos_seeds:
        for discipline in ("srr", "sprinklers"):
            result.chaos.append(
                _run_chaos_leg(discipline, seed, chaos_total_s)
            )
    for discipline in ("srr", "sprinklers"):
        result.scale.append(_run_scale_leg(discipline, scale_flows))
    return result
