"""§6.3 finding 5: quasi-FIFO reordering is imperceptible next to loss.

"Only at packet loss levels of 40% and above were any perceptible
differences found in the NV playback, as compared to the original packet
stream.  Incidentally, pure packet loss of 40% (without any reordering),
produced the same qualitative difference, suggesting that the effect of
packet reordering was insignificant compared to the effect of packet loss."

Protocol of the reproduction (see DESIGN.md for the NV substitution):

1. Synthesize an NV-like trace; pace its packets at capture times into the
   striped-UDP testbed with Bernoulli loss ``p`` and quasi-FIFO delivery;
   score playback quality.
2. Score a *pure loss* control: the same set of delivered packets, but with
   idealized FIFO timing (capture time + a fixed network delay) — loss
   without any reordering or resequencing delay.
3. Compare the two quality curves across loss rates, and find where each
   first becomes perceptibly different from the lossless reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator
from repro.workloads.video import (
    PlaybackModel,
    PlaybackReport,
    VideoTrace,
    synthesize_nv_trace,
)

DEFAULT_LOSS_RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


@dataclass
class VideoQualityRow:
    loss_rate: float
    striped: PlaybackReport
    pure_loss: PlaybackReport

    @property
    def striped_quality(self) -> float:
        return self.striped.quality

    @property
    def pure_loss_quality(self) -> float:
        return self.pure_loss.quality

    @property
    def reorder_penalty(self) -> float:
        """Quality lost to reordering/resequencing beyond pure loss."""
        return self.pure_loss.quality - self.striped.quality


@dataclass
class VideoQualityResult:
    rows: List[VideoQualityRow]
    #: Quality drop a viewer notices.  NV conceals moderate loss well
    #: (frames refresh incrementally); calibrated so the lossless-vs-lossy
    #: difference becomes "perceptible" around the paper's 40% mark.
    perceptibility_threshold: float = 0.3

    def first_perceptible_loss(self, which: str) -> float:
        """Lowest swept loss rate at which quality visibly degrades."""
        reference = self.rows[0]
        for row in self.rows:
            quality = (
                row.striped_quality if which == "striped" else row.pure_loss_quality
            )
            base = (
                reference.striped_quality
                if which == "striped"
                else reference.pure_loss_quality
            )
            if base - quality > self.perceptibility_threshold:
                return row.loss_rate
        return 1.0

    def reordering_insignificant(self, tolerance: float = 0.08) -> bool:
        """The paper's conclusion: reorder penalty ≪ loss penalty."""
        return all(row.reorder_penalty <= tolerance for row in self.rows)

    def render(self) -> str:
        header = (
            f"{'loss':>5} {'striped quality':>15} {'pure-loss quality':>17} "
            f"{'reorder penalty':>15}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.loss_rate:>5.2f} {row.striped_quality:>15.3f} "
                f"{row.pure_loss_quality:>17.3f} {row.reorder_penalty:>15.3f}"
            )
        lines.append(
            f"first perceptible degradation: striped at "
            f"{self.first_perceptible_loss('striped'):.0%}, pure loss at "
            f"{self.first_perceptible_loss('pure_loss'):.0%}"
        )
        return "\n".join(lines)


def _play_striped(
    trace: VideoTrace,
    loss_rate: float,
    latency_budget: float,
    seed: int,
) -> tuple:
    """Run the trace through the striped lossy testbed; returns
    (PlaybackReport, delivered packet ids)."""
    sim = Simulator()
    config = SocketTestbedConfig(
        loss_rates=(loss_rate,),
        marker_interval_rounds=1,
        closed_loop=False,
        seed=seed,
    )
    testbed = build_socket_testbed(sim, config)
    playback = PlaybackModel(trace, latency_budget=latency_budget)
    delivered_seqs: List[int] = []

    original = testbed.receiver.on_message

    def on_message(packet) -> None:
        playback.feed(packet, sim.now)
        delivered_seqs.append(packet.seq)
        if original is not None:
            original(packet)

    testbed.receiver.on_message = on_message
    for packet in trace.packets():
        chunk = packet.payload
        sim.schedule_at(
            chunk.capture_time, testbed.sender.submit_packet, packet
        )
    sim.run(until=trace.duration + latency_budget + 1.0)
    return playback.report(), delivered_seqs


def _play_pure_loss(
    trace: VideoTrace,
    delivered_seqs: Sequence[int],
    network_delay: float,
    latency_budget: float,
) -> PlaybackReport:
    """Control condition: the same delivered set, ideal FIFO timing.

    Keyed by the deterministic harness sequence number (``trace.packets``
    regenerates packet objects, so object identity cannot be used).
    """
    delivered = set(delivered_seqs)
    playback = PlaybackModel(trace, latency_budget=latency_budget)
    for packet in trace.packets():
        if packet.seq in delivered:
            chunk = packet.payload
            playback.feed(packet, chunk.capture_time + network_delay)
    return playback.report()


def run_video_quality(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    duration_s: float = 8.0,
    latency_budget: float = 0.5,
    network_delay: float = 0.01,
    seed: int = 0,
) -> VideoQualityResult:
    """Sweep loss rates; compare striped quasi-FIFO playback to pure loss."""
    trace = synthesize_nv_trace(duration_s=duration_s, seed=seed)
    rows: List[VideoQualityRow] = []
    for loss in loss_rates:
        striped_report, delivered_seqs = _play_striped(
            trace, loss, latency_budget, seed
        )
        pure_report = _play_pure_loss(
            trace, delivered_seqs, network_delay, latency_budget
        )
        rows.append(
            VideoQualityRow(
                loss_rate=loss,
                striped=striped_report,
                pure_loss=pure_report,
            )
        )
    return VideoQualityResult(rows)
