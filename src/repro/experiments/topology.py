"""Shared testbed construction for the kernel-level (section 6.2) experiments.

Recreates the paper's setup: two workstations, each with a 10 Mbps Ethernet
interface and an ATM interface whose PVC rate is adjustable, TCP between
them, and optionally a strIPe virtual interface striping across both links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.srr import SRR, grr_weights_for_bandwidths, make_grr, make_rr
from repro.core.striper import MarkerPolicy
from repro.net.atm import AtmInterface
from repro.net.ethernet import ETHERNET_MTU, EthernetInterface
from repro.net.stack import Link, Stack
from repro.net.stripe import (
    RESEQ_MARKER,
    RESEQ_NONE,
    RESEQ_PLAIN,
    StripeInterface,
)
from repro.sim.engine import Simulator
from repro.sim.host import HostCPU
from repro.transport.tcp import BulkReceiver, BulkSender, TcpLayer

#: Sender-side addresses.
S_ETH_IP = "10.1.0.1"
S_ATM_IP = "10.2.0.1"
#: Receiver-side addresses (the paper's Net1.B / Net2.B).
R_ETH_IP = "10.1.0.2"
R_ATM_IP = "10.2.0.2"

SCHEME_SRR = "srr"
SCHEME_GRR = "grr"
SCHEME_RR = "rr"


@dataclass
class CpuModel:
    """Receiver CPU cost parameters (see DESIGN.md, Figure 15 mechanism).

    Defaults calibrated so that a single link never saturates the CPU in
    the swept range, while the striped aggregate (which shares the one
    receiver CPU that the two "upper bound" runs each had to themselves)
    hits the cap around a 14 Mbps PVC — the knee the paper reports.
    """

    per_packet_s: float = 300e-6
    per_interrupt_s: float = 300e-6
    max_batch: int = 8
    nic_ring_frames: int = 120

    def build(self, sim: Simulator) -> HostCPU:
        return HostCPU(
            sim,
            self.per_packet_s,
            self.per_interrupt_s,
            max_batch=self.max_batch,
        )


@dataclass
class TestbedConfig:
    """Knobs for one testbed instantiation."""

    __test__ = False  # not a pytest test class

    eth_mbps: float = 10.0
    atm_mbps: float = 13.8
    eth_delay_s: float = 0.5e-3
    atm_delay_s: float = 1.0e-3
    link_queue_frames: int = 40
    cpu: Optional[CpuModel] = field(default_factory=CpuModel)
    #: None = no striping (single-interface runs); else a scheme name.
    stripe_scheme: Optional[str] = None
    #: receiver mode for the stripe layer.
    resequencing: str = RESEQ_MARKER
    #: target data packets between marker batches.  Rounds carry different
    #: packet counts per scheme (an SRR round is ~4 mixed packets, a GRR
    #: [5,7] round is 12), so expressing the marker budget in packets keeps
    #: the control-plane load comparable across the Figure 15 variants.
    marker_every_packets: int = 50
    marker_position: int = 0
    stripe_input_queue: int = 100
    #: explicit GRR packet weights (overrides the bandwidth-ratio default);
    #: the paper's worst-case experiment tunes the PVC so GRR "reduces to
    #: RR", i.e. weights (1, 1).
    grr_weights: Optional[tuple] = None
    #: IP MTU of the ATM PVC (Figure 15 clamps it to the Ethernet MTU; the
    #: fragmentation experiment runs it at the classic 9180).
    atm_mtu: int = ETHERNET_MTU
    #: enable strIPe internal fragmentation (lifts the min-MTU limit at the
    #: cost of per-fragment headers; see repro.net.fragmentation).
    stripe_fragmentation: bool = False


@dataclass
class Testbed:
    """A built two-host testbed ready to carry TCP."""

    __test__ = False  # not a pytest test class

    sim: Simulator
    config: TestbedConfig
    sender: Stack
    receiver: Stack
    eth_link: Link
    atm_link: Link
    s_eth: EthernetInterface
    s_atm: AtmInterface
    r_eth: EthernetInterface
    r_atm: AtmInterface
    stripe_s: Optional[StripeInterface]
    stripe_r: Optional[StripeInterface]
    tcp_s: TcpLayer
    tcp_r: TcpLayer
    receiver_cpu: Optional[HostCPU]

    def bulk_pair(
        self,
        dst_ip: str,
        segment_size_fn=None,
        port: int = 5001,
        src_port: int = 40000,
        mss: int = ETHERNET_MTU - 40,
    ) -> tuple[BulkSender, BulkReceiver]:
        """Create a TCP bulk sender at S and receiver at R."""
        rx = BulkReceiver(self.tcp_r, port)
        tx = BulkSender(
            self.tcp_s, dst_ip, port, src_port,
            mss=mss, segment_size_fn=segment_size_fn,
        )
        return tx, rx


def make_scheme(
    name: str,
    eth_bps: float,
    atm_bps: float,
    grr_weights: Optional[tuple] = None,
) -> SRR:
    """Build the striping algorithm for the two-link testbed.

    SRR quanta are proportional to link bandwidth with the smaller one at
    one MTU (the paper's ``quantum_i >= Max`` recommendation); GRR uses the
    closest small-integer packet ratio (or explicit ``grr_weights``); RR
    alternates.
    """
    if name == SCHEME_SRR:
        base = float(ETHERNET_MTU)
        smaller = min(eth_bps, atm_bps)
        return SRR([base * eth_bps / smaller, base * atm_bps / smaller])
    if name == SCHEME_GRR:
        if grr_weights is not None:
            return make_grr(list(grr_weights))
        return make_grr(grr_weights_for_bandwidths([eth_bps, atm_bps]))
    if name == SCHEME_RR:
        return make_rr(2)
    raise ValueError(f"unknown scheme {name!r}")


def marker_interval_for(
    algorithm: SRR, target_packets: int, avg_packet_bytes: float = 900.0
) -> int:
    """Rounds between marker batches ≈ ``target_packets`` of data."""
    if algorithm.count_packets:
        packets_per_round = sum(algorithm.quanta)
    else:
        packets_per_round = max(1.0, sum(algorithm.quanta) / avg_packet_bytes)
    return max(1, round(target_packets / packets_per_round))


def build_testbed(sim: Simulator, config: TestbedConfig) -> Testbed:
    """Assemble hosts, links, routing, optional strIPe, and TCP layers."""
    receiver_cpu = config.cpu.build(sim) if config.cpu is not None else None
    sender = Stack(sim, "S")
    receiver = Stack(sim, "R", cpu=receiver_cpu)

    s_eth = EthernetInterface(sim, "eth0", S_ETH_IP)
    r_eth = EthernetInterface(sim, "eth0", R_ETH_IP)
    s_atm = AtmInterface(sim, "atm0", S_ATM_IP, mtu=config.atm_mtu)
    r_atm = AtmInterface(sim, "atm0", R_ATM_IP, mtu=config.atm_mtu)
    sender.add_interface(s_eth)
    sender.add_interface(s_atm)
    receiver.add_interface(r_eth)
    receiver.add_interface(r_atm)
    if receiver_cpu is not None and config.cpu is not None:
        for iface in (r_eth, r_atm):
            if iface.nic_queue is not None:
                iface.nic_queue.queue_limit = config.cpu.nic_ring_frames

    eth_link = Link(
        sim, s_eth, r_eth,
        bandwidth_bps=config.eth_mbps * 1e6,
        prop_delay=config.eth_delay_s,
        queue_limit=config.link_queue_frames,
        name="ethernet",
    )
    atm_link = Link(
        sim, s_atm, r_atm,
        bandwidth_bps=config.atm_mbps * 1e6,
        prop_delay=config.atm_delay_s,
        queue_limit=config.link_queue_frames,
        name="atm-pvc",
    )

    stripe_s: Optional[StripeInterface] = None
    stripe_r: Optional[StripeInterface] = None
    if config.stripe_scheme is not None:
        algorithm_s = make_scheme(
            config.stripe_scheme, config.eth_mbps * 1e6, config.atm_mbps * 1e6,
            grr_weights=config.grr_weights,
        )
        algorithm_r = make_scheme(
            config.stripe_scheme, config.eth_mbps * 1e6, config.atm_mbps * 1e6,
            grr_weights=config.grr_weights,
        )
        reseq = config.resequencing
        marker_policy = MarkerPolicy(
            interval_rounds=marker_interval_for(
                algorithm_s, config.marker_every_packets
            ),
            position=config.marker_position,
        )
        stripe_s = StripeInterface(
            sim, "stripe0", S_ETH_IP,
            [(s_eth, R_ETH_IP), (s_atm, R_ATM_IP)],
            algorithm_s,
            resequencing=reseq,
            marker_policy=marker_policy if reseq == RESEQ_MARKER else None,
            input_queue_limit=config.stripe_input_queue,
            fragmentation=config.stripe_fragmentation,
        )
        stripe_r = StripeInterface(
            sim, "stripe0", R_ETH_IP,
            [(r_eth, S_ETH_IP), (r_atm, S_ATM_IP)],
            algorithm_r,
            resequencing=reseq,
            marker_policy=marker_policy if reseq == RESEQ_MARKER else None,
            input_queue_limit=config.stripe_input_queue,
            fragmentation=config.stripe_fragmentation,
        )
        sender.add_interface(stripe_s, use_cpu=False)
        receiver.add_interface(stripe_r, use_cpu=False)
        # Host routes to the peer's addresses point at the strIPe interface.
        sender.routing.add_host_route(R_ETH_IP, stripe_s)
        sender.routing.add_host_route(R_ATM_IP, stripe_s)
        receiver.routing.add_host_route(S_ETH_IP, stripe_r)
        receiver.routing.add_host_route(S_ATM_IP, stripe_r)
    else:
        sender.routing.add(R_ETH_IP, 24, s_eth)
        sender.routing.add(R_ATM_IP, 24, s_atm)
        receiver.routing.add(S_ETH_IP, 24, r_eth)
        receiver.routing.add(S_ATM_IP, 24, r_atm)

    tcp_s = TcpLayer(sender, sim)
    tcp_r = TcpLayer(receiver, sim)
    return Testbed(
        sim=sim,
        config=config,
        sender=sender,
        receiver=receiver,
        eth_link=eth_link,
        atm_link=atm_link,
        s_eth=s_eth,
        s_atm=s_atm,
        r_eth=r_eth,
        r_atm=r_atm,
        stripe_s=stripe_s,
        stripe_r=stripe_r,
        tcp_s=tcp_s,
        tcp_r=tcp_r,
        receiver_cpu=receiver_cpu,
    )


def measure_tcp_goodput(
    config: TestbedConfig,
    dst_ip: str,
    duration_s: float = 4.0,
    warmup_s: float = 1.0,
    size_seed: int = 7,
    sizes=(200, 1000, 1460),
    mss: int = ETHERNET_MTU - 40,
) -> dict:
    """One run: TCP bulk transfer of a random small/large mix; goodput Mbps.

    Returns a dict with goodput and diagnostic counters.
    """
    sim = Simulator()
    testbed = build_testbed(sim, config)
    rng = random.Random(size_seed)
    tx, rx = testbed.bulk_pair(
        dst_ip, segment_size_fn=lambda: rng.choice(list(sizes)), mss=mss
    )
    tx.start()
    sim.run(until=warmup_s)
    start_bytes = rx.bytes_delivered
    sim.run(until=warmup_s + duration_s)
    goodput_bits = (rx.bytes_delivered - start_bytes) * 8.0
    return {
        "goodput_mbps": goodput_bits / duration_s / 1e6,
        "retransmits": tx.retransmits,
        "timeouts": tx.timeouts,
        "reorder_events": rx.reorder_events,
        "cpu_utilization": (
            testbed.receiver_cpu.utilization(warmup_s + duration_s)
            if testbed.receiver_cpu is not None
            else 0.0
        ),
        "stripe_input_drops": (
            testbed.stripe_s.input_drops if testbed.stripe_s is not None else 0
        ),
    }
