"""Multiple TCP flows over one strIPe bundle.

The paper evaluates a single TCP connection; a natural adoption question is
whether the striping layer remains transparent when several flows share
the virtual interface.  Two properties matter:

* **aggregate preservation** — N flows together extract roughly what one
  flow does (the striping layer adds no per-flow penalty);
* **approximate fairness** — no flow starves: the strIPe layer is a single
  FIFO below TCP, so flows compete exactly as they would on one fat link,
  and AIMD convergence applies unchanged.

Per-flow FIFO is inherited trivially: the bundle delivers the *global*
sender order, which contains each flow's order (the same argument the
paper makes against address-hashing applies in reverse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.topology import (
    R_ETH_IP,
    SCHEME_SRR,
    TestbedConfig,
    build_testbed,
)
from repro.sim.engine import Simulator
from repro.transport.tcp import BulkReceiver, BulkSender


@dataclass
class MultiflowResult:
    n_flows: int
    per_flow_mbps: List[float]
    aggregate_mbps: float
    single_flow_mbps: float
    retransmits: List[int]

    @property
    def fairness(self) -> float:
        """Jain's fairness index over per-flow goodput (1.0 = perfect).

        Shared with the fabric experiment via
        :func:`repro.core.fairness.jain_fairness_index`; unlike the old
        min/max ratio it degrades gracefully — one slow flow among many
        fast ones costs ~1/n, not the whole score.
        """
        from repro.core.fairness import jain_fairness_index

        return jain_fairness_index(self.per_flow_mbps)

    @property
    def fairness_ratio(self) -> float:
        """min/max per-flow goodput (legacy metric; see :attr:`fairness`)."""
        if not self.per_flow_mbps or max(self.per_flow_mbps) == 0:
            return 0.0
        return min(self.per_flow_mbps) / max(self.per_flow_mbps)

    def render(self) -> str:
        flows = " ".join(f"{v:.2f}" for v in self.per_flow_mbps)
        return "\n".join(
            [
                f"{self.n_flows} TCP flows over strIPe (SRR + markers):",
                f"  per-flow goodput (Mbps): {flows}",
                f"  aggregate: {self.aggregate_mbps:.2f} Mbps "
                f"(single flow alone: {self.single_flow_mbps:.2f})",
                f"  fairness (Jain): {self.fairness:.3f} "
                f"(min/max: {self.fairness_ratio:.2f})",
            ]
        )


def run_multiflow(
    n_flows: int = 4,
    duration_s: float = 4.0,
    warmup_s: float = 1.5,
    config: TestbedConfig | None = None,
) -> MultiflowResult:
    """Run N parallel bulk TCP flows over the striped testbed."""
    if config is None:
        config = TestbedConfig(stripe_scheme=SCHEME_SRR, cpu=None)

    def measure(count: int) -> List[float]:
        sim = Simulator()
        testbed = build_testbed(sim, config)
        pairs = []
        for flow in range(count):
            rx = BulkReceiver(testbed.tcp_r, 5000 + flow)
            tx = BulkSender(
                testbed.tcp_s, R_ETH_IP, 5000 + flow, 40000 + flow,
                mss=1460,
            )
            pairs.append((tx, rx))
        for tx, _ in pairs:
            tx.start()
        sim.run(until=warmup_s)
        starts = [rx.bytes_delivered for _, rx in pairs]
        sim.run(until=warmup_s + duration_s)
        rates = [
            (rx.bytes_delivered - start) * 8 / duration_s / 1e6
            for (_, rx), start in zip(pairs, starts)
        ]
        retransmits = [tx.retransmits for tx, _ in pairs]
        return rates, retransmits

    single, _ = measure(1)
    per_flow, retransmits = measure(n_flows)
    return MultiflowResult(
        n_flows=n_flows,
        per_flow_mbps=per_flow,
        aggregate_mbps=sum(per_flow),
        single_flow_mbps=single[0],
        retransmits=retransmits,
    )
