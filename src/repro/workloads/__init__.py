"""Workload generation: packet-size mixes, paced sources, NV-style video."""

from repro.workloads.generators import (
    AlternatingSizes,
    ClosedLoopSource,
    ConstantSizes,
    PacedSource,
    RandomMixSizes,
    UniformSizes,
    alternating_packets,
    backlogged_packets,
    cbr_intervals,
    poisson_intervals,
    random_mix_packets,
)
from repro.workloads.video import (
    PlaybackModel,
    PlaybackReport,
    VideoChunk,
    VideoFrame,
    VideoTrace,
    perceptibly_different,
    synthesize_nv_trace,
)

__all__ = [
    "RandomMixSizes",
    "AlternatingSizes",
    "UniformSizes",
    "ConstantSizes",
    "backlogged_packets",
    "random_mix_packets",
    "alternating_packets",
    "PacedSource",
    "ClosedLoopSource",
    "poisson_intervals",
    "cbr_intervals",
    "VideoTrace",
    "VideoFrame",
    "VideoChunk",
    "synthesize_nv_trace",
    "PlaybackModel",
    "PlaybackReport",
    "perceptibly_different",
]
