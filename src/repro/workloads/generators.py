"""Traffic generators.

The paper's workloads:

* "a random mixture of small and large packets" (Figure 15's TCP driver) —
  :class:`RandomMixSizes` / :func:`random_mix_packets`.
* "packets were sent in deterministic fashion, with the bigger (1000
  bytes) packets alternating with the smaller (200 bytes) ones" (the GRR
  worst case) — :class:`AlternatingSizes`.
* backlogged senders for the fairness analysis — :func:`backlogged_packets`.
* Poisson / CBR arrival processes for the event-driven experiments.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence

from repro.core.packet import Packet
from repro.sim.engine import Simulator


class RandomMixSizes:
    """Draws packet sizes from a discrete mix (defaults: small and large)."""

    def __init__(
        self,
        sizes: Sequence[int] = (200, 1000, 1460),
        weights: Optional[Sequence[float]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not sizes or any(s <= 0 for s in sizes):
            raise ValueError("sizes must be positive")
        self.sizes = list(sizes)
        self.weights = list(weights) if weights is not None else None
        self.rng = rng if rng is not None else random.Random(0)

    def __call__(self) -> int:
        if self.weights is None:
            return self.rng.choice(self.sizes)
        return self.rng.choices(self.sizes, weights=self.weights, k=1)[0]


class AlternatingSizes:
    """Deterministic big/small alternation — the GRR adversary."""

    def __init__(self, big: int = 1000, small: int = 200) -> None:
        if big <= 0 or small <= 0:
            raise ValueError("sizes must be positive")
        self.big = big
        self.small = small
        self._next_big = True

    def __call__(self) -> int:
        size = self.big if self._next_big else self.small
        self._next_big = not self._next_big
        return size


class UniformSizes:
    """Uniformly random sizes in [lo, hi]."""

    def __init__(self, lo: int, hi: int, rng: Optional[random.Random] = None) -> None:
        if not 0 < lo <= hi:
            raise ValueError("need 0 < lo <= hi")
        self.lo = lo
        self.hi = hi
        self.rng = rng if rng is not None else random.Random(0)

    def __call__(self) -> int:
        return self.rng.randint(self.lo, self.hi)


class ConstantSizes:
    """Always the same size (CBR-style payloads)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size

    def __call__(self) -> int:
        return self.size


def backlogged_packets(
    count: int, size_fn: Callable[[], int], flow: object = None
) -> List[Packet]:
    """A burst of ``count`` packets with harness sequence numbers."""
    return [
        Packet(size=size_fn(), seq=i, flow=flow) for i in range(count)
    ]


def random_mix_packets(
    count: int,
    sizes: Sequence[int] = (200, 1000, 1460),
    seed: int = 0,
) -> List[Packet]:
    """Convenience: ``count`` packets with a seeded random size mix."""
    return backlogged_packets(count, RandomMixSizes(sizes, rng=random.Random(seed)))


def alternating_packets(count: int, big: int = 1000, small: int = 200) -> List[Packet]:
    """Convenience: the paper's alternating 1000/200-byte adversary."""
    return backlogged_packets(count, AlternatingSizes(big, small))


class PacedSource:
    """Event-driven source: submits packets to a sink at timed intervals.

    Args:
        sim: event engine.
        sink: ``callable(Packet)`` receiving each generated packet.
        size_fn: packet size generator.
        interval_fn: seconds until the next packet (e.g. exponential for
            Poisson, constant for CBR).
        count: stop after this many packets (None = until sim horizon).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: Callable[[Packet], None],
        size_fn: Callable[[], int],
        interval_fn: Callable[[], float],
        count: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.sink = sink
        self.size_fn = size_fn
        self.interval_fn = interval_fn
        self.count = count
        self.generated = 0
        self._stopped = False

    def start(self, delay: float = 0.0) -> None:
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        if self.count is not None and self.generated >= self.count:
            return
        packet = Packet(size=self.size_fn(), seq=self.generated)
        self.generated += 1
        self.sink(packet)
        self.sim.schedule(max(0.0, self.interval_fn()), self._tick)


def poisson_intervals(rate_pps: float, rng: random.Random) -> Callable[[], float]:
    """Exponential inter-arrival generator for a given packet rate."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    return lambda: rng.expovariate(rate_pps)


def cbr_intervals(rate_pps: float) -> Callable[[], float]:
    """Constant inter-arrival generator."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    period = 1.0 / rate_pps
    return lambda: period


class ClosedLoopSource:
    """Keeps a striper's input backlog topped up (a backlogged sender).

    Generates packets only while the striper backlog is below ``target``,
    re-checking every ``check_interval`` seconds and whenever :meth:`poke`
    is called.  This is the §6.3 sender: always data to send, but flow
    control (credits) can throttle it without unbounded queues.

    Two optional hot-loop accelerations, both behavior-neutral:

    * ``submit_many``: a batched submit callable.  Each refill computes the
      whole backlog deficit and hands it over in one call (one pump per
      refill instead of one per packet).  Simulated time does not advance
      inside a refill, so the packets, their order, and their timestamps
      are identical to per-packet submission.
    * ``pool``: a :class:`~repro.core.packet.PacketPool` to acquire packets
      from instead of constructing them.
    """

    def __init__(
        self,
        sim: Simulator,
        submit: Callable[[Packet], None],
        backlog_fn: Callable[[], int],
        size_fn: Callable[[], int],
        target: int = 20,
        check_interval: float = 0.001,
        count: Optional[int] = None,
        submit_many: Optional[Callable[[list], None]] = None,
        pool: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.submit = submit
        self.backlog_fn = backlog_fn
        self.size_fn = size_fn
        self.target = target
        self.check_interval = check_interval
        self.count = count
        self.submit_many = submit_many
        self.pool = pool
        self.generated = 0
        self._stopped = False

    def start(self, delay: float = 0.0) -> None:
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def poke(self) -> None:
        self._fill()

    def _make(self) -> Packet:
        size = self.size_fn()
        seq = self.generated
        self.generated += 1
        if self.pool is not None:
            return self.pool.acquire(size, seq=seq)
        return Packet(size=size, seq=seq)

    def _fill(self) -> None:
        if self.submit_many is not None:
            while not self._stopped:
                deficit = self.target - self.backlog_fn()
                if self.count is not None:
                    deficit = min(deficit, self.count - self.generated)
                if deficit <= 0:
                    return
                self.submit_many([self._make() for _ in range(deficit)])
            return
        while self.backlog_fn() < self.target:
            if self._stopped or (
                self.count is not None and self.generated >= self.count
            ):
                return
            self.submit(self._make())

    def _tick(self) -> None:
        if self._stopped:
            return
        if self.count is not None and self.generated >= self.count:
            return
        self._fill()
        self.sim.schedule(self.check_interval, self._tick)
