"""Synthetic NV-style video workload and playback model (section 6.3).

The paper captured traces from the NV video conferencing tool, striped them
over lossy UDP channels, and fed the (possibly reordered) result back to
NV: "Only at packet loss levels of 40% and above were any perceptible
differences found in the NV playback...  pure packet loss of 40% produced
the same qualitative difference, suggesting that the effect of packet
reordering was insignificant compared to the effect of packet loss."

We cannot run NV, so we substitute (a) a synthetic trace generator shaped
like NV output — ~10 fps, a frame split into several sub-1KB packets, with
periodic larger refresh frames — and (b) a playout model that scores what a
viewer would see: a frame renders cleanly if all its packets arrive within
a playout deadline; packets arriving late (e.g. held back or reordered past
the deadline) count the same as lost.  The comparison the paper makes —
quality under loss+reordering vs quality under pure loss — is a comparison
of these scores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.core.packet import Packet


@dataclass(frozen=True)
class VideoChunk:
    """Payload tag on a video packet: which frame, which piece."""

    frame_id: int
    index: int
    count: int
    capture_time: float


@dataclass
class VideoFrame:
    frame_id: int
    capture_time: float
    packet_sizes: List[int]

    @property
    def total_bytes(self) -> int:
        return sum(self.packet_sizes)


@dataclass
class VideoTrace:
    """A captured (here: synthesized) video session."""

    fps: float
    frames: List[VideoFrame]

    @property
    def duration(self) -> float:
        return len(self.frames) / self.fps

    @property
    def total_packets(self) -> int:
        return sum(len(f.packet_sizes) for f in self.frames)

    def packets(self) -> List[Packet]:
        """Flatten to striping-layer packets in capture order."""
        out: List[Packet] = []
        seq = 0
        for frame in self.frames:
            count = len(frame.packet_sizes)
            for index, size in enumerate(frame.packet_sizes):
                out.append(
                    Packet(
                        size=size,
                        seq=seq,
                        payload=VideoChunk(
                            frame.frame_id, index, count, frame.capture_time
                        ),
                    )
                )
                seq += 1
        return out


def synthesize_nv_trace(
    duration_s: float = 10.0,
    fps: float = 10.0,
    mean_frame_bytes: int = 3000,
    packet_bytes: int = 1000,
    refresh_every: int = 25,
    refresh_scale: float = 3.0,
    seed: int = 0,
) -> VideoTrace:
    """Generate an NV-like trace.

    Frames arrive at ``fps``; most are delta frames around
    ``mean_frame_bytes`` (lognormal-ish variation), with a larger refresh
    frame every ``refresh_every`` frames.  Frames are packetized into
    chunks of at most ``packet_bytes``.
    """
    if duration_s <= 0 or fps <= 0:
        raise ValueError("duration and fps must be positive")
    rng = random.Random(seed)
    frames: List[VideoFrame] = []
    n_frames = int(duration_s * fps)
    for frame_id in range(n_frames):
        base = mean_frame_bytes
        if refresh_every and frame_id % refresh_every == 0:
            base = int(mean_frame_bytes * refresh_scale)
        size = max(200, int(rng.gauss(base, base * 0.25)))
        sizes: List[int] = []
        remaining = size
        while remaining > 0:
            chunk = min(packet_bytes, remaining)
            sizes.append(chunk)
            remaining -= chunk
        frames.append(
            VideoFrame(
                frame_id=frame_id,
                capture_time=frame_id / fps,
                packet_sizes=sizes,
            )
        )
    return VideoTrace(fps=fps, frames=frames)


@dataclass
class PlaybackReport:
    """What the viewer saw."""

    frames_total: int
    frames_clean: int
    frames_partial: int
    frames_missing: int
    packets_expected: int
    packets_on_time: int
    packets_late: int
    packets_lost: int

    @property
    def clean_fraction(self) -> float:
        if self.frames_total == 0:
            return 1.0
        return self.frames_clean / self.frames_total

    @property
    def quality(self) -> float:
        """Scalar quality: clean frames count 1, partial frames 0.5."""
        if self.frames_total == 0:
            return 1.0
        return (self.frames_clean + 0.5 * self.frames_partial) / self.frames_total


class PlaybackModel:
    """Scores a received (possibly reordered, lossy) video packet stream.

    Args:
        trace: the original trace (ground truth).
        latency_budget: playout deadline — a packet for a frame captured at
            time T must arrive by ``T + latency_budget`` (receiver clock) to
            be usable.  Reordered packets that still make the deadline cost
            nothing, which is exactly why quasi-FIFO is tolerable for video.
    """

    def __init__(self, trace: VideoTrace, latency_budget: float = 0.5) -> None:
        self.trace = trace
        self.latency_budget = latency_budget
        self._on_time: Dict[int, set] = {f.frame_id: set() for f in trace.frames}
        self.packets_late = 0
        self.packets_received = 0

    def feed(self, packet: Packet, arrival_time: float) -> None:
        """Record one received packet with its arrival time."""
        chunk = packet.payload
        if not isinstance(chunk, VideoChunk):
            return
        self.packets_received += 1
        if arrival_time <= chunk.capture_time + self.latency_budget:
            self._on_time[chunk.frame_id].add(chunk.index)
        else:
            self.packets_late += 1

    def report(self) -> PlaybackReport:
        clean = partial = missing = 0
        expected = on_time = 0
        for frame in self.trace.frames:
            need = len(frame.packet_sizes)
            got = len(self._on_time[frame.frame_id])
            expected += need
            on_time += got
            if got == need:
                clean += 1
            elif got > 0:
                partial += 1
            else:
                missing += 1
        return PlaybackReport(
            frames_total=len(self.trace.frames),
            frames_clean=clean,
            frames_partial=partial,
            frames_missing=missing,
            packets_expected=expected,
            packets_on_time=on_time,
            packets_late=self.packets_late,
            packets_lost=expected - on_time - self.packets_late,
        )


def perceptibly_different(
    reference: PlaybackReport, observed: PlaybackReport, threshold: float = 0.05
) -> bool:
    """A crude perceptibility test: quality differs by more than threshold."""
    return abs(reference.quality - observed.quality) > threshold
