"""Selective-repeat ARQ over the striped bundle (the "Reliable" in the
paper's title, taken end to end).

Markers make delivery *quasi-FIFO*: Theorem 5.1 restores order after a
loss, but the lost payload itself is gone.  This layer adds end-to-end
recovery **above** the striper, preserving the paper's headline
constraint (section 2.1: data packets are never modified):

* The sender assigns each submitted packet a bundle sequence number
  ``rseq`` — carried on the :class:`~repro.core.packet.Packet` object,
  not in any on-wire header the striping layer would have to add.  A
  real deployment would place it in the application framing above the
  stripe, exactly where the harness ``seq`` lives.
* The receiver acknowledges with a cumulative ack plus SACK blocks
  (RFC 2018 style).  Acks ride the existing reverse control path:
  piggybacked on markers travelling the other way (like §6.3 FCVC
  credits) or as standalone :class:`AckPacket` control messages for
  marker-quiet periods.
* Retransmissions are resubmitted through the same SRR kernel as new
  data, so recovery traffic is striped under the Theorem 3.2 fairness
  bound instead of hammering one channel.
* The retransmission buffer is bounded (``window_packets``); a full
  window exerts backpressure on the submit path, composing with the
  FCVC credit layer (credits bound per-channel receiver buffers, the
  window bounds end-to-end recovery state).
* Loss detection is adaptive: SRTT/RTTVAR with Karn's algorithm and
  exponential backoff (RFC 6298 shape), plus SACK-hole fast retransmit.
  A packet that exhausts ``max_retries`` escalates the channel it last
  used to the channel-lifecycle machinery (``on_channel_suspect``) —
  persistent per-channel loss looks exactly like a dying channel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.core.packet import Codepoint, SackInfo

#: the per-session reliability service levels (endpoint ``reliability=``)
RELIABILITY_MODES = (
    "best_effort", "quasi_fifo", "reliable", "fec", "hybrid",
)


def arq_enabled(mode: str) -> bool:
    """True when ``mode`` mounts the selective-repeat ARQ layer."""
    return mode in ("reliable", "hybrid")


def fec_enabled(mode: str) -> bool:
    """True when ``mode`` mounts the erasure-coded recovery layer."""
    return mode in ("fec", "hybrid")

#: SACK holes are retransmitted after this many ack arrivals reported
#: newer data while the hole stayed open (TCP's dupthresh).
FAST_RETRANSMIT_HINTS = 3

_ack_ids = itertools.count(1)


@dataclass
class AckPacket:
    """A standalone reliability acknowledgment (control packet).

    Carries the same :class:`~repro.core.packet.SackInfo` a marker
    piggyback would; used on reverse paths with no marker traffic (or
    between markers, when acks must not wait for the next round).
    Sized like the other control packets (16 B header + 8 B per SACK
    block) and kept under the 64-byte control threshold of the fault
    layer.
    """

    sack: SackInfo
    size: int = 0
    uid: int = field(default_factory=lambda: next(_ack_ids))
    codepoint: str = Codepoint.ACK
    #: receiver incarnation epoch (crash recovery, :mod:`repro.transport.
    #: recovery`); rides reserved header space, so the size formula is
    #: unchanged.  0 = unstamped (no recovery manager attached).
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.size == 0:
            self.size = 16 + 8 * len(self.sack.blocks)

    def __repr__(self) -> str:
        return (
            f"AckPacket(cum={self.sack.cum_ack}, "
            f"blocks={list(self.sack.blocks)})"
        )


class RtoEstimator:
    """RFC 6298-shaped retransmission timeout estimator.

    ``sample`` feeds one RTT measurement (Karn's rule — only from
    packets transmitted exactly once — is the caller's job);
    ``backoff`` doubles the timeout after a retransmission timeout,
    capped at ``max_rto``.  The next valid sample collapses the backoff.

    Doubling is additionally capped at ``backoff_cap`` *consecutive*
    backoffs: during a long channel outage the timer would otherwise
    keep doubling well past any useful probe interval, and the first
    exchange after recovery would wait out the whole inflated timeout.
    ``reset_backoff`` (called on ack-triggered channel rejoin) collapses
    the streak immediately, recomputing the timeout from the smoothed
    estimate instead of the backed-off value.
    """

    ALPHA = 0.125
    BETA = 0.25
    K = 4.0

    def __init__(
        self,
        initial_rto: float = 0.2,
        min_rto: float = 0.02,
        max_rto: float = 2.0,
        backoff_cap: int = 6,
    ) -> None:
        if not 0 < min_rto <= initial_rto <= max_rto:
            raise ValueError("need 0 < min_rto <= initial_rto <= max_rto")
        if backoff_cap < 1:
            raise ValueError("backoff_cap must be >= 1")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.initial_rto = initial_rto
        self.backoff_cap = backoff_cap
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = initial_rto
        self.samples = 0
        self.backoffs = 0
        #: backoff calls refused because the consecutive streak hit the cap
        self.capped_backoffs = 0
        self._backoff_streak = 0

    def sample(self, rtt: float) -> None:
        """Feed one round-trip measurement (seconds)."""
        if rtt < 0:
            return
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (
                (1 - self.BETA) * self.rttvar
                + self.BETA * abs(self.srtt - rtt)
            )
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.rto = self._clamp(self.srtt + self.K * self.rttvar)
        self._backoff_streak = 0

    def backoff(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self.backoffs += 1
        if self._backoff_streak >= self.backoff_cap:
            self.capped_backoffs += 1
            return
        self._backoff_streak += 1
        self.rto = self._clamp(self.rto * 2.0)

    def reset_backoff(self) -> None:
        """Collapse accumulated backoff (ack-triggered channel rejoin).

        The timeout returns to the smoothed estimate — or the initial
        timeout when no sample has been taken yet — so the first
        post-rejoin exchange is not stuck waiting out an outage-inflated
        timer.
        """
        self._backoff_streak = 0
        if self.srtt is not None:
            self.rto = self._clamp(self.srtt + self.K * self.rttvar)
        else:
            self.rto = self._clamp(self.initial_rto)

    def _clamp(self, value: float) -> float:
        return min(self.max_rto, max(self.min_rto, value))


@dataclass(slots=True)
class _TxRecord:
    """Sender-side state for one unacknowledged packet."""

    packet: Any
    size: int
    first_sent: float = -1.0
    last_sent: float = -1.0
    transmissions: int = 0
    last_channel: int = -1
    sacked: bool = False
    #: resubmitted to the striper but not yet actually transmitted
    rtx_pending: bool = False
    #: ack arrivals that reported newer data while this stayed unacked
    dup_hints: int = 0
    escalated: bool = False


@dataclass
class ReliabilityStats:
    """Counters for one reliable sender."""

    submitted: int = 0
    acked: int = 0
    retransmissions: int = 0
    fast_retransmissions: int = 0
    timeouts: int = 0
    rtt_samples: int = 0
    escalations: int = 0
    #: submits parked in the overflow queue because the window was full
    backpressure_stalls: int = 0
    #: bursts accepted through :meth:`ReliableSender.submit_many`
    burst_submits: int = 0
    #: single-pass SACK scoreboard scans (one per ack processed)
    sack_scans: int = 0
    #: retransmissions resubmitted as one batch through the striper
    batched_retransmissions: int = 0
    #: packets replayed from the retransmit buffer by a crash-recovery
    #: reconciliation (:meth:`ReliableSender.reconcile`)
    replays: int = 0


class ReliableSender:
    """Selective-repeat ARQ sender half, above any striping pipeline.

    Args:
        submit: ``fn(packet)`` handing a packet to the striper (both
            first transmissions and retransmissions go through it, so
            recovery traffic obeys the SRR fairness bound).
        sim: event scheduler (``now`` / ``schedule`` returning a
            cancellable event) for the retransmission timer.
        window_packets: retransmission-buffer bound; submits beyond it
            are parked and replayed as acks open the window
            (``can_submit`` lets sources implement backpressure).
        max_retries: retransmissions of one packet before its last
            channel is reported via ``on_channel_suspect`` (reliability
            itself keeps retrying — escalation feeds the lifecycle
            machinery, it does not abandon data).
        on_channel_suspect: ``fn(channel_index)`` lifecycle escalation.
        on_window_open: called when a full window drains below the
            bound (sources resume submitting).
        rto: optional pre-built :class:`RtoEstimator`.
        submit_many: optional batched striper submit.  When provided,
            :meth:`submit_many` bursts and batched retransmissions are
            handed to the striper in one call, so the whole batch is
            assigned channels through ``SchedulerKernel.assign_many``
            (recovery traffic stays inside the Theorem 3.2 envelope)
            instead of one kernel step per packet.
    """

    def __init__(
        self,
        submit: Callable[[Any], None],
        sim: Any,
        *,
        window_packets: int = 64,
        max_retries: int = 8,
        on_channel_suspect: Optional[Callable[[int], None]] = None,
        on_window_open: Optional[Callable[[], None]] = None,
        rto: Optional[RtoEstimator] = None,
        submit_many: Optional[Callable[[List[Any]], None]] = None,
    ) -> None:
        if window_packets < 1:
            raise ValueError("window must hold at least one packet")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self._submit = submit
        self._submit_many = submit_many
        self.sim = sim
        self.window_packets = window_packets
        self.max_retries = max_retries
        self.on_channel_suspect = on_channel_suspect
        self.on_window_open = on_window_open
        #: optional ``fn(packet)`` invoked as each packet's record is
        #: retired by a cumulative ack — the point after which no
        #: retransmission can resurrect the packet, i.e. the earliest
        #: moment a packet pool may recycle it.
        self.on_retire: Optional[Callable[[Any], None]] = None
        #: optional ``fn(packet)`` invoked the instant a packet's rseq is
        #: stamped (before it can reach any channel) — the write-ahead-log
        #: hook of the crash-recovery layer.
        self.on_register: Optional[Callable[[Any], None]] = None
        self.rto = rto if rto is not None else RtoEstimator()
        self.stats = ReliabilityStats()
        self.next_rseq = 0
        #: unacked records in rseq (insertion) order
        self.unacked: Dict[int, _TxRecord] = {}
        self._overflow: Deque[Any] = deque()
        self._timer: Any = None
        #: per-channel bytes retransmitted (fairness-envelope accounting)
        self.retransmitted_bytes: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # submit path (backpressure)

    def can_submit(self) -> bool:
        """True while the retransmission window has room for a submit."""
        return not self._overflow and len(self.unacked) < self.window_packets

    @property
    def in_flight(self) -> int:
        return len(self.unacked)

    @property
    def backlog(self) -> int:
        """Submitted packets parked behind a full window."""
        return len(self._overflow)

    def submit(self, packet: Any) -> None:
        """Register ``packet`` in the window and stripe it.

        A full window parks the packet instead (bounded-buffer
        backpressure); it is replayed in order as acks open the window.
        """
        packet.rseq = self.next_rseq
        self.next_rseq += 1
        self.stats.submitted += 1
        if self.on_register is not None:
            self.on_register(packet)
        if self._overflow or len(self.unacked) >= self.window_packets:
            self.stats.backpressure_stalls += 1
            self._overflow.append(packet)
            return
        self._launch(packet)

    def _launch(self, packet: Any) -> None:
        self.unacked[packet.rseq] = _TxRecord(packet=packet, size=packet.size)
        self._submit(packet)

    def submit_many(self, packets: List[Any]) -> None:
        """Burst submit: stamp rseqs in one pass, stripe in one batch.

        Equivalent to ``submit(p)`` per packet — same rseq assignment,
        same window/overflow behavior — but window-admissible packets are
        registered first and handed to the striper as one burst, so
        channel assignment happens through ``assign_many``.
        """
        rseq = self.next_rseq
        for packet in packets:
            packet.rseq = rseq
            rseq += 1
        self.next_rseq = rseq
        self.stats.submitted += len(packets)
        self.stats.burst_submits += 1
        if self.on_register is not None:
            for packet in packets:
                self.on_register(packet)
        unacked = self.unacked
        overflow = self._overflow
        window = self.window_packets
        burst: List[Any] = []
        for packet in packets:
            if overflow or len(unacked) >= window:
                self.stats.backpressure_stalls += 1
                overflow.append(packet)
            else:
                unacked[packet.rseq] = _TxRecord(
                    packet=packet, size=packet.size
                )
                burst.append(packet)
        if burst:
            self._stripe_burst(burst)

    def _stripe_burst(self, packets: List[Any]) -> None:
        if self._submit_many is not None:
            self._submit_many(packets)
        else:
            for packet in packets:
                self._submit(packet)

    def note_burst(self, channel: int, packets: List[Any]) -> None:
        """Batched :meth:`note_sent`: one burst transmitted on ``channel``.

        One clock read, one timer check, and one retransmitted-bytes
        update for the whole burst instead of per packet.
        """
        now = self.sim.now
        unacked = self.unacked
        rtx_bytes = 0
        for packet in packets:
            record = unacked.get(packet.rseq)
            if record is None:
                continue  # acked while queued inside the striper
            record.transmissions += 1
            record.last_sent = now
            record.last_channel = channel
            record.rtx_pending = False
            if record.transmissions == 1:
                record.first_sent = now
            else:
                self.stats.retransmissions += 1
                rtx_bytes += record.size
        if rtx_bytes:
            self.retransmitted_bytes[channel] = (
                self.retransmitted_bytes.get(channel, 0) + rtx_bytes
            )
        self._ensure_timer()

    def note_sent(self, channel: int, packet: Any) -> None:
        """A recording port transmitted ``packet`` on ``channel``.

        First transmissions and retransmissions are distinguished here —
        the striper is oblivious to the difference, which is exactly how
        retransmissions inherit its fairness properties.
        """
        record = self.unacked.get(packet.rseq)
        if record is None:
            return  # acked while queued inside the striper
        now = self.sim.now
        record.transmissions += 1
        record.last_sent = now
        record.last_channel = channel
        record.rtx_pending = False
        if record.transmissions == 1:
            record.first_sent = now
        else:
            self.stats.retransmissions += 1
            self.retransmitted_bytes[channel] = (
                self.retransmitted_bytes.get(channel, 0) + record.size
            )
        self._ensure_timer()

    # ------------------------------------------------------------------ #
    # ack path

    def on_ack(self, ack: Any) -> None:
        """Process a :class:`SackInfo` (or anything carrying one).

        The SACK scoreboard update is a *single* merge pass: the ack's
        blocks are sorted and walked alongside the (rseq-ordered)
        unacked map, marking covered records and collecting the holes
        between them in one traversal — no per-rseq dict probes, no
        second full scan for fast retransmit.
        """
        sack: SackInfo = getattr(ack, "sack", ack)
        opened = self._absorb_cum_ack(sack.cum_ack)
        self.stats.sack_scans += 1
        blocks = sorted(sack.blocks)
        newest = sack.cum_ack - 1
        if blocks:
            newest = max(newest, blocks[-1][1] - 1)
        holes: List[_TxRecord] = []
        bi = 0
        n_blocks = len(blocks)
        for rseq, record in self.unacked.items():
            if rseq > newest:
                break  # insertion order == rseq order
            while bi < n_blocks and blocks[bi][1] <= rseq:
                bi += 1
            if bi < n_blocks and blocks[bi][0] <= rseq:
                if not record.sacked:
                    record.sacked = True
                    self._maybe_sample(record)
            elif rseq < newest and not record.sacked and (
                record.transmissions > 0
            ):
                holes.append(record)
        self._fast_retransmit(holes)
        opened = self._refill() or opened
        self._ensure_timer()
        if opened and self.on_window_open is not None:
            self.on_window_open()

    def _absorb_cum_ack(self, cum_ack: int) -> bool:
        """Retire every record below ``cum_ack``; True if window opened."""
        unacked = self.unacked
        was_full = len(unacked) >= self.window_packets
        on_retire = self.on_retire
        # One forward scan (insertion order == rseq order): collect the
        # covered prefix, then delete.  Scanning once and stopping at the
        # first live record keeps this O(retired), not O(window).
        ripe: List[Tuple[int, _TxRecord]] = []
        for rseq, record in unacked.items():
            if rseq >= cum_ack:
                break
            ripe.append((rseq, record))
        retired = len(ripe)
        for rseq, _ in ripe:
            del unacked[rseq]
        for _, record in ripe:
            if not record.sacked:
                self._maybe_sample(record)
            if on_retire is not None:
                on_retire(record.packet)
        self.stats.acked += retired
        return was_full and retired > 0

    def _maybe_sample(self, record: _TxRecord) -> None:
        """Karn's rule: RTT only from packets transmitted exactly once."""
        if record.transmissions == 1 and record.last_sent >= 0:
            self.stats.rtt_samples += 1
            self.rto.sample(self.sim.now - record.last_sent)

    def _fast_retransmit(self, holes: List[_TxRecord]) -> None:
        """Retransmit holes the SACK scoreboard has repeatedly exposed.

        ``holes`` are the un-sacked records below the newest acked data,
        collected by the :meth:`on_ack` merge pass.  Ripe holes are
        resubmitted as one batch, so a multi-packet repair is striped
        through ``assign_many`` like any other burst.
        """
        srtt = self.rto.srtt or 0.0
        now = self.sim.now
        ripe: List[_TxRecord] = []
        for record in holes:
            if now - record.last_sent < srtt:
                # The last copy has not had a round trip yet — acks of
                # newer data say nothing about it (prevents retransmit
                # storms while a repair is still in flight).
                continue
            record.dup_hints += 1
            if record.dup_hints >= FAST_RETRANSMIT_HINTS and (
                not record.rtx_pending
            ):
                record.dup_hints = 0
                self.stats.fast_retransmissions += 1
                ripe.append(record)
        if ripe:
            self._retransmit_many(ripe)

    def _refill(self) -> bool:
        """Launch parked submits into freed window slots."""
        launched = False
        while self._overflow and len(self.unacked) < self.window_packets:
            self._launch(self._overflow.popleft())
            launched = True
        return launched and not self._overflow

    def _retransmit(self, record: _TxRecord) -> None:
        record.rtx_pending = True
        self._submit(record.packet)

    def _retransmit_many(self, records: List[_TxRecord]) -> None:
        for record in records:
            record.rtx_pending = True
        if self._submit_many is not None and len(records) > 1:
            self.stats.batched_retransmissions += len(records)
            self._submit_many([record.packet for record in records])
        else:
            for record in records:
                self._submit(record.packet)

    def on_channel_rejoin(self) -> None:
        """Ack-triggered channel rejoin: collapse accumulated RTO backoff.

        An outage inflates the shared timer exponentially; once the
        lifecycle machinery confirms a channel is carrying acks again,
        the inflation is stale state, not signal.  Re-arm the timer so
        the oldest outstanding packet is retried at the collapsed
        timeout instead of waiting out the backed-off one.
        """
        self.rto.reset_backoff()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._ensure_timer()

    # ------------------------------------------------------------------ #
    # crash recovery (see repro.transport.recovery)

    def register_restored(
        self,
        packets: List[Any],
        *,
        next_rseq: Optional[int] = None,
        sacked_rseqs: Any = (),
    ) -> None:
        """Rebuild the retransmission window from checkpointed packets.

        Nothing is transmitted: restored records carry zero transmissions
        and no send timestamp, so the retransmission timer ignores them
        until the resume reconciliation replays them (or, should the
        handshake stall past the RTO, a timer fire replays the oldest —
        a harmless spurious replay, absorbed by receiver dedup).
        """
        sacked = set(sacked_rseqs)
        for packet in sorted(packets, key=lambda p: p.rseq):
            if not self._overflow and len(self.unacked) < self.window_packets:
                record = _TxRecord(packet=packet, size=packet.size)
                record.sacked = packet.rseq in sacked
                self.unacked[packet.rseq] = record
            else:
                self._overflow.append(packet)
            if packet.rseq >= self.next_rseq:
                self.next_rseq = packet.rseq + 1
        if next_rseq is not None and next_rseq > self.next_rseq:
            self.next_rseq = next_rseq

    def reconcile(self, cum_ack: int, blocks: Any) -> int:
        """Adopt a resume report as the authoritative receiver state.

        Retires below ``cum_ack``, rewrites the SACK scoreboard *exactly*
        to ``blocks`` — clearing sacked flags the report does not confirm,
        because a restarted receiver may have lost out-of-order data it
        once acknowledged (SACK reneging, which the normal ack path is
        forbidden to express) — then replays every live record through
        the striper and collapses RTO backoff per Karn (samples from the
        dead incarnation describe a path that no longer exists).

        Returns the number of packets replayed.
        """
        opened = self._absorb_cum_ack(cum_ack)
        block_list = sorted(tuple(b) for b in blocks)
        live: List[_TxRecord] = []
        for rseq, record in self.unacked.items():
            covered = any(start <= rseq < end for start, end in block_list)
            record.sacked = covered
            record.dup_hints = 0
            record.rtx_pending = False
            if not covered:
                live.append(record)
        self.stats.replays += len(live)
        if live:
            self._retransmit_many(live)
        opened = self._refill() or opened
        self.rto.reset_backoff()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._ensure_timer()
        if opened and self.on_window_open is not None:
            self.on_window_open()
        return len(live)

    # ------------------------------------------------------------------ #
    # retransmission timer (single timer for the oldest outstanding)

    def _oldest_outstanding(self) -> Optional[_TxRecord]:
        for record in self.unacked.values():
            if not record.sacked and record.transmissions > 0:
                return record
        return None

    def _ensure_timer(self) -> None:
        if self._timer is not None and not self._timer.cancelled:
            return
        record = self._oldest_outstanding()
        if record is None:
            return
        due = record.last_sent + self.rto.rto
        self._timer = self.sim.schedule_at(
            max(due, self.sim.now), self._on_timeout
        )

    def _on_timeout(self) -> None:
        self._timer = None
        record = self._oldest_outstanding()
        if record is None:
            return
        due = record.last_sent + self.rto.rto
        now = self.sim.now
        if now < due:
            self._timer = self.sim.schedule_at(due, self._on_timeout)
            return
        self.stats.timeouts += 1
        self.rto.backoff()
        record.dup_hints = 0
        if record.transmissions > self.max_retries and not record.escalated:
            record.escalated = True
            self.stats.escalations += 1
            if self.on_channel_suspect is not None and record.last_channel >= 0:
                self.on_channel_suspect(record.last_channel)
        if not record.rtx_pending:
            self._retransmit(record)
        # A synchronous resend already re-armed via note_sent; otherwise
        # arm against the backed-off timeout ourselves.
        if self._timer is None or self._timer.cancelled:
            self._timer = self.sim.schedule_at(
                now + self.rto.rto, self._on_timeout
            )


@dataclass
class ReceiverReliabilityStats:
    """Counters for one reliable receiver."""

    received: int = 0
    delivered: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    window_drops: int = 0
    acks_sent: int = 0


class ReliableReceiver:
    """Selective-repeat ARQ receiver half.

    Sits *behind* logical reception: the resequencer hands it the
    quasi-FIFO stream (post marker resync), and it upgrades that to
    exactly-once in-order delivery — duplicates dropped, gaps held back
    until retransmissions fill them.

    Acks are emitted through ``send_ack(SackInfo)``: immediately on any
    out-of-order or duplicate arrival (the loss signal must not wait),
    every ``ack_every`` in-order packets, and otherwise after
    ``ack_delay_s`` (delayed ack).  :meth:`sack_info` exposes the same
    state for marker piggybacking on the reverse path.
    """

    def __init__(
        self,
        on_deliver: Callable[[Any], None],
        *,
        window_packets: int = 1024,
        send_ack: Optional[Callable[[SackInfo], None]] = None,
        sim: Any = None,
        ack_every: int = 2,
        ack_delay_s: float = 0.005,
        max_sack_blocks: int = 4,
    ) -> None:
        if window_packets < 1:
            raise ValueError("window must hold at least one packet")
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        self.on_deliver = on_deliver
        self.window_packets = window_packets
        self.send_ack = send_ack
        self.sim = sim
        self.ack_every = ack_every
        self.ack_delay_s = ack_delay_s
        self.max_sack_blocks = max_sack_blocks
        self.stats = ReceiverReliabilityStats()
        self.next_expected = 0
        self._ooo: Dict[int, Any] = {}
        self._unacked_deliveries = 0
        self._ack_timer: Any = None
        self._last_ooo: Optional[int] = None

    # ------------------------------------------------------------------ #

    def push(self, packet: Any) -> None:
        """One packet out of logical reception (quasi-FIFO order)."""
        rseq = getattr(packet, "rseq", None)
        if rseq is None:
            # Not sequenced (mode mismatch or control residue): pass it
            # through rather than wedging the stream.
            self.on_deliver(packet)
            return
        stats = self.stats
        stats.received += 1
        if rseq == self.next_expected and not self._ooo:
            # Hot case — in-order arrival with nothing buffered:
            # _deliver_run + _ack_progress inlined (identical effect).
            self.next_expected = rseq + 1
            stats.delivered += 1
            undelivered = self._unacked_deliveries + 1
            self._unacked_deliveries = undelivered
            self.on_deliver(packet)
            if self.send_ack is None:
                return
            if undelivered >= self.ack_every:
                self._ack_now()
            elif self.sim is not None and (
                self._ack_timer is None or self._ack_timer.cancelled
            ):
                self._ack_timer = self.sim.schedule(
                    self.ack_delay_s, self._delayed_ack
                )
            return
        if rseq < self.next_expected or rseq in self._ooo:
            self.stats.duplicates += 1
            self._ack_now()
            return
        if rseq >= self.next_expected + self.window_packets:
            self.stats.window_drops += 1
            self._ack_now()
            return
        if rseq == self.next_expected:
            self._deliver_run(packet)
            self._ack_progress()
            return
        self.stats.out_of_order += 1
        self._ooo[rseq] = packet
        self._last_ooo = rseq
        self._ack_now()

    def _deliver_run(self, packet: Any) -> None:
        """Deliver ``packet`` plus any now-contiguous buffered followers."""
        self._deliver(packet)
        while self.next_expected in self._ooo:
            self._deliver(self._ooo.pop(self.next_expected))

    def _deliver(self, packet: Any) -> None:
        self.next_expected += 1
        self.stats.delivered += 1
        self._unacked_deliveries += 1
        self.on_deliver(packet)

    # ------------------------------------------------------------------ #
    # ack generation

    def sack_info(self, max_blocks: Optional[int] = None) -> SackInfo:
        """Current cumulative-ack + SACK-block state.

        Blocks are coalesced from the out-of-order buffer; the block
        containing the most recent out-of-order arrival is reported
        first (RFC 2018 custom), then the rest newest-edge first, so a
        truncated piggyback still carries the freshest information.
        """
        if not self._ooo:
            return SackInfo(cum_ack=self.next_expected)
        if max_blocks is None:
            max_blocks = self.max_sack_blocks
        blocks = self._coalesced_blocks()
        if len(blocks) > 1 and self._last_ooo is not None:
            for i, (start, end) in enumerate(blocks):
                if start <= self._last_ooo < end:
                    blocks.insert(0, blocks.pop(i))
                    break
        return SackInfo(
            cum_ack=self.next_expected, blocks=tuple(blocks[:max_blocks])
        )

    def _coalesced_blocks(self) -> List[Tuple[int, int]]:
        blocks: List[Tuple[int, int]] = []
        for rseq in sorted(self._ooo):
            if blocks and rseq == blocks[-1][1]:
                blocks[-1] = (blocks[-1][0], rseq + 1)
            else:
                blocks.append((rseq, rseq + 1))
        # Newest-edge first: the highest blocks describe the live edge.
        blocks.reverse()
        return blocks

    def _ack_progress(self) -> None:
        """In-order delivery: ack every Nth packet, else delay-ack."""
        if self.send_ack is None:
            return
        if self._unacked_deliveries >= self.ack_every:
            self._ack_now()
            return
        if self.sim is not None and (
            self._ack_timer is None or self._ack_timer.cancelled
        ):
            self._ack_timer = self.sim.schedule(
                self.ack_delay_s, self._delayed_ack
            )

    def _delayed_ack(self) -> None:
        self._ack_timer = None
        if self._unacked_deliveries > 0:
            self._ack_now()

    def _ack_now(self) -> None:
        if self.send_ack is None:
            return
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._unacked_deliveries = 0
        self.stats.acks_sent += 1
        self.send_ack(self.sack_info())

    # ------------------------------------------------------------------ #
    # crash recovery (see repro.transport.recovery)

    def restore_window(
        self,
        next_expected: int,
        ooo: Dict[int, Any],
        *,
        last_ooo: Optional[int] = None,
    ) -> None:
        """Reinstall the checkpointed delivery cursor + reorder buffer."""
        self.next_expected = next_expected
        self._ooo = dict(ooo)
        self._last_ooo = last_ooo

    def adopt_base(self, base: int) -> None:
        """Advance the cursor to ``base`` (never backwards).

        Two callers: the WAL delivery-cursor replay (deliveries logged
        after the checkpoint must not repeat) and cold resync (a
        checkpoint-less restart adopts the sender's replay base).  Buffered
        out-of-order copies the new cursor covers are dropped.
        """
        if base <= self.next_expected:
            return
        self.next_expected = base
        for rseq in [r for r in self._ooo if r < base]:
            del self._ooo[rseq]
        # Anything buffered may now be contiguous with the new cursor.
        while self.next_expected in self._ooo:
            packet = self._ooo.pop(self.next_expected)
            self.next_expected += 1
            self.stats.delivered += 1
            self.on_deliver(packet)
