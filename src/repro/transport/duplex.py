"""Duplex striped sessions with credits piggybacked on markers.

Section 6.3: the FCVC credit scheme "was particularly well suited to our
striping scheme, since the credits could be piggybacked on the periodic
marker packets."  That sentence assumes bidirectional striping: each
direction's periodic markers carry the *other* direction's credit
advertisements, so flow control costs zero extra packets.

:class:`DuplexStripedEndpoint` bundles a striped sender and receiver on one
host; :func:`connect_duplex` wires two endpoints so that

* endpoint A's markers carry A-receiver credits for the B→A direction,
* endpoint B's markers carry B-receiver credits for the A→B direction,
* each receiver forwards arriving piggybacked credits to its co-located
  sender's :class:`~repro.transport.credit.CreditSender`.

No standalone credit packets are sent at all.  Everything here is plain
composition over the endpoint layer: the sender/receiver halves are the
:class:`~repro.transport.endpoint.StripeSenderPipeline` /
:class:`~repro.transport.endpoint.StripeReceiverPipeline` adapters from
:mod:`repro.transport.socket_striping`, and the piggyback plumbing is the
pipelines' ``marker_decorator`` / ``credit_sink`` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.markers import MAX_SACK_BLOCKS_WIRE, attach_sack
from repro.core.packet import MarkerPacket, Packet
from repro.core.striper import MarkerPolicy
from repro.net.stack import Stack
from repro.sim.engine import Simulator
from repro.transport.credit import CreditSender
from repro.transport.socket_striping import (
    StripedSocketReceiver,
    StripedSocketSender,
)


@dataclass
class DuplexStripedEndpoint:
    """One side of a bidirectional striped session."""

    sender: StripedSocketSender
    receiver: StripedSocketReceiver

    def send_message(self, size: int, payload=None, flow_id=None) -> Packet:
        return self.sender.send_message(size, payload, flow_id=flow_id)

    def submit_packet(self, packet: Packet, flow_id=None) -> None:
        self.sender.submit_packet(packet, flow_id=flow_id)

    def submit(self, flow_id, packet: Packet) -> bool:
        """Flow-addressed submission through this side's sender fabric."""
        return self.sender.submit(flow_id, packet)

    def attach_fabric(self, fabric, *, backlog_limit=None):
        """Mount a flow-layer scheduler on this side's sender pipeline."""
        return self.sender.attach_fabric(fabric, backlog_limit=backlog_limit)

    def can_submit(self, flow_id=None) -> bool:
        return self.sender.can_submit(flow_id)

    @property
    def delivered(self) -> List[Packet]:
        return self.receiver.delivered


def connect_duplex(
    sim: Simulator,
    stack_a: Stack,
    stack_b: Stack,
    a_to_b: Sequence[Tuple[str, int]],
    b_to_a: Sequence[Tuple[str, int]],
    algorithm_factory,
    buffer_packets: int,
    marker_policy: Optional[MarkerPolicy] = None,
    base_port_a: int = 7000,
    base_port_b: int = 7100,
    advertise_every: int = 1,
    reliability: str = "quasi_fifo",
    reliability_options: Optional[dict] = None,
) -> Tuple[DuplexStripedEndpoint, DuplexStripedEndpoint]:
    """Build two endpoints with marker-piggybacked FCVC in both directions.

    Args:
        a_to_b: per-channel ``(b_ip, port)`` targets for A's data (ports
            must be ``base_port_b + i``).
        b_to_a: per-channel ``(a_ip, port)`` targets for B's data (ports
            must be ``base_port_a + i``).
        algorithm_factory: zero-arg callable building the (identical)
            SRR-family algorithm for each striper/resequencer instance.
        buffer_packets: per-channel receiver buffer (the FCVC bound).
        reliability: ``"reliable"`` arms selective-repeat ARQ in *both*
            directions, with SACKs piggybacked on the reverse markers
            exactly like the credits (an ack-worthy event forces a
            marker batch, so no standalone ack packets are sent at all).
        reliability_options: forwarded to both ARQ halves (sender keys
            are passed to the senders, receiver keys to the receivers —
            use ``{"sender": {...}, "receiver": {...}}``).
    """
    if marker_policy is None:
        marker_policy = MarkerPolicy(interval_rounds=1)
    n = len(a_to_b)
    if len(b_to_a) != n:
        raise ValueError("both directions must have the same channel count")

    credit_a = CreditSender(n, initial_credit=buffer_packets)  # A's data out
    credit_b = CreditSender(n, initial_credit=buffer_packets)  # B's data out
    options = reliability_options or {}
    sender_options = options.get("sender")
    receiver_options = options.get("receiver")

    # Receivers first (their credit state feeds the marker decorators).
    receiver_a = StripedSocketReceiver(
        sim, stack_a, n, algorithm_factory(),
        base_port=base_port_a, buffer_packets=buffer_packets,
        reliability=reliability, reliability_options=receiver_options,
    )
    receiver_b = StripedSocketReceiver(
        sim, stack_b, n, algorithm_factory(),
        base_port=base_port_b, buffer_packets=buffer_packets,
        reliability=reliability, reliability_options=receiver_options,
    )
    # Manual credit accounting (no standalone advertisement sockets).
    from repro.transport.credit import CreditReceiver

    receiver_a.credit = CreditReceiver(
        n, buffer_packets, send_credit=None, advertise_every=advertise_every
    )
    receiver_b.credit = CreditReceiver(
        n, buffer_packets, send_credit=None, advertise_every=advertise_every
    )

    def decorate_a(channel: int, marker: MarkerPacket) -> None:
        # A's marker on channel c grants B the right to push more B->A data.
        marker.credit = receiver_a.credit.piggyback_limit(channel)
        if receiver_a.reliable is not None:
            # ... and acknowledges the B->A data A has received so far.
            attach_sack(
                marker, receiver_a.reliable.sack_info(MAX_SACK_BLOCKS_WIRE)
            )

    def decorate_b(channel: int, marker: MarkerPacket) -> None:
        marker.credit = receiver_b.credit.piggyback_limit(channel)
        if receiver_b.reliable is not None:
            attach_sack(
                marker, receiver_b.reliable.sack_info(MAX_SACK_BLOCKS_WIRE)
            )

    sender_a = StripedSocketSender(
        sim, stack_a, a_to_b, algorithm_factory(),
        marker_policy=marker_policy, credit=credit_a,
        marker_decorator=decorate_a, marker_keepalive_s=0.01,
        reliability=reliability, reliability_options=sender_options,
    )
    sender_b = StripedSocketSender(
        sim, stack_b, b_to_a, algorithm_factory(),
        marker_policy=marker_policy, credit=credit_b,
        marker_decorator=decorate_b, marker_keepalive_s=0.01,
        reliability=reliability, reliability_options=sender_options,
    )

    # Arriving piggybacked credits feed the co-located sender.
    receiver_a.credit_sink = lambda ch, limit: credit_a.on_credit(ch, limit)
    receiver_b.credit_sink = lambda ch, limit: credit_b.on_credit(ch, limit)
    credit_a.on_unblocked = sender_a.pump
    credit_b.on_unblocked = sender_b.pump

    if reliability == "reliable":
        # Arriving piggybacked SACKs feed the co-located sender's ARQ,
        # and an ack-worthy event (out-of-order arrival, delayed-ack
        # expiry) forces a marker batch out of the co-located sender so
        # the fresh SACK travels immediately — zero standalone acks,
        # mirroring the credit scheme.
        receiver_a.sack_sink = sender_a.on_ack
        receiver_b.sack_sink = sender_b.on_ack
        receiver_a.reliable.send_ack = (
            lambda sack: sender_a.striper.force_marker_batch()
        )
        receiver_b.reliable.send_ack = (
            lambda sack: sender_b.striper.force_marker_batch()
        )

    return (
        DuplexStripedEndpoint(sender=sender_a, receiver=receiver_a),
        DuplexStripedEndpoint(sender=sender_b, receiver=receiver_b),
    )
