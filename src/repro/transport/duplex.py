"""Duplex striped sessions with credits piggybacked on markers.

Section 6.3: the FCVC credit scheme "was particularly well suited to our
striping scheme, since the credits could be piggybacked on the periodic
marker packets."  That sentence assumes bidirectional striping: each
direction's periodic markers carry the *other* direction's credit
advertisements, so flow control costs zero extra packets.

:class:`DuplexStripedEndpoint` bundles a striped sender and receiver on one
host; :func:`connect_duplex` wires two endpoints so that

* endpoint A's markers carry A-receiver credits for the B→A direction,
* endpoint B's markers carry B-receiver credits for the A→B direction,
* each receiver forwards arriving piggybacked credits to its co-located
  sender's :class:`~repro.transport.credit.CreditSender`.

No standalone credit packets are sent at all.  Everything here is plain
composition over the endpoint layer: the sender/receiver halves are the
:class:`~repro.transport.endpoint.StripeSenderPipeline` /
:class:`~repro.transport.endpoint.StripeReceiverPipeline` adapters from
:mod:`repro.transport.socket_striping`, and the piggyback plumbing is the
pipelines' ``marker_decorator`` / ``credit_sink`` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.markers import MAX_SACK_BLOCKS_WIRE, attach_sack
from repro.core.packet import MarkerPacket, Packet
from repro.core.striper import MarkerPolicy
from repro.net.stack import Stack
from repro.sim.engine import Simulator
from repro.transport.credit import CreditSender
from repro.transport.reliability import arq_enabled
from repro.transport.socket_striping import (
    StripedSocketReceiver,
    StripedSocketSender,
)


@dataclass
class DuplexStripedEndpoint:
    """One side of a bidirectional striped session."""

    sender: StripedSocketSender
    receiver: StripedSocketReceiver

    def send_message(self, size: int, payload=None, flow_id=None) -> Packet:
        return self.sender.send_message(size, payload, flow_id=flow_id)

    def submit_packet(self, packet: Packet, flow_id=None) -> None:
        self.sender.submit_packet(packet, flow_id=flow_id)

    def submit(self, flow_id, packet: Packet) -> bool:
        """Flow-addressed submission through this side's sender fabric."""
        return self.sender.submit(flow_id, packet)

    def attach_fabric(self, fabric, *, backlog_limit=None):
        """Mount a flow-layer scheduler on this side's sender pipeline."""
        return self.sender.attach_fabric(fabric, backlog_limit=backlog_limit)

    def can_submit(self, flow_id=None) -> bool:
        return self.sender.can_submit(flow_id)

    @property
    def delivered(self) -> List[Packet]:
        return self.receiver.delivered


def connect_duplex(
    sim: Simulator,
    stack_a: Stack,
    stack_b: Stack,
    a_to_b: Sequence[Tuple[str, int]],
    b_to_a: Sequence[Tuple[str, int]],
    algorithm_factory=None,
    buffer_packets: int = 0,
    marker_policy: Optional[MarkerPolicy] = None,
    base_port_a: int = 7000,
    base_port_b: int = 7100,
    advertise_every: int = 1,
    reliability: str = "quasi_fifo",
    reliability_options: Optional[dict] = None,
    discipline: Optional[str] = None,
    discipline_options: Optional[dict] = None,
) -> Tuple[DuplexStripedEndpoint, DuplexStripedEndpoint]:
    """Build two endpoints with marker-piggybacked FCVC in both directions.

    Args:
        a_to_b: per-channel ``(b_ip, port)`` targets for A's data (ports
            must be ``base_port_b + i``).
        b_to_a: per-channel ``(a_ip, port)`` targets for B's data (ports
            must be ``base_port_a + i``).
        algorithm_factory: zero-arg callable building the (identical)
            SRR-family algorithm for each striper/resequencer instance
            (mutually exclusive with ``discipline``).
        buffer_packets: per-channel receiver buffer (the FCVC bound).
        reliability: ``"reliable"`` arms selective-repeat ARQ in *both*
            directions, with SACKs piggybacked on the reverse markers
            exactly like the credits (an ack-worthy event forces a
            marker batch, so no standalone ack packets are sent at all).
        reliability_options: forwarded to both ARQ halves (sender keys
            are passed to the senders, receiver keys to the receivers —
            use ``{"sender": {...}, "receiver": {...}}``).
        discipline: optional registry discipline name replacing the
            SRR-family ``algorithm_factory`` on both sides.  A
            **marker-free** discipline (Sprinklers, address hashing)
            builds the *marker-free duplex variant*: no marker stream in
            either direction, hence no credit or SACK piggybacking — and
            none is needed, because direct reception buffers nothing
            (FCVC bounds resequencer memory, which is structurally zero
            here).  Reliable mode is rejected for marker-free duplex:
            its SACKs have no markers to ride on.
        discipline_options: forwarded to ``make_discipline``.
    """
    n = len(a_to_b)
    if len(b_to_a) != n:
        raise ValueError("both directions must have the same channel count")
    mode = "marker"
    if discipline is not None:
        if algorithm_factory is not None:
            raise ValueError("pass either algorithm_factory or discipline")
        from repro.transport.endpoint import (
            make_discipline,
            receiver_mode_for,
        )

        _options = dict(discipline_options or {})

        def algorithm_factory():
            return make_discipline(discipline, n, **_options)

        mode = receiver_mode_for(algorithm_factory(), markers=True)
    elif algorithm_factory is None:
        raise ValueError("need an algorithm_factory or a discipline")
    marker_free = mode == "direct"
    if marker_free:
        if arq_enabled(reliability):
            raise ValueError(
                f"marker-free duplex cannot be {reliability}: piggybacked "
                "SACKs need a marker stream to ride on"
            )
        return _connect_duplex_marker_free(
            sim, stack_a, stack_b, a_to_b, b_to_a, algorithm_factory,
            buffer_packets=buffer_packets,
            base_port_a=base_port_a, base_port_b=base_port_b,
            reliability=reliability,
            reliability_options=reliability_options,
        )
    if marker_policy is None:
        marker_policy = MarkerPolicy(interval_rounds=1)

    credit_a = CreditSender(n, initial_credit=buffer_packets)  # A's data out
    credit_b = CreditSender(n, initial_credit=buffer_packets)  # B's data out
    options = reliability_options or {}
    sender_options = options.get("sender")
    receiver_options = options.get("receiver")

    def receiver_algorithm():
        algorithm = algorithm_factory()
        if mode in ("marker", "plain") and hasattr(algorithm, "algorithm"):
            algorithm = algorithm.algorithm
        return algorithm

    # Receivers first (their credit state feeds the marker decorators).
    receiver_a = StripedSocketReceiver(
        sim, stack_a, n, receiver_algorithm(),
        base_port=base_port_a, buffer_packets=buffer_packets, mode=mode,
        reliability=reliability, reliability_options=receiver_options,
    )
    receiver_b = StripedSocketReceiver(
        sim, stack_b, n, receiver_algorithm(),
        base_port=base_port_b, buffer_packets=buffer_packets, mode=mode,
        reliability=reliability, reliability_options=receiver_options,
    )
    # Manual credit accounting (no standalone advertisement sockets).
    from repro.transport.credit import CreditReceiver

    receiver_a.credit = CreditReceiver(
        n, buffer_packets, send_credit=None, advertise_every=advertise_every
    )
    receiver_b.credit = CreditReceiver(
        n, buffer_packets, send_credit=None, advertise_every=advertise_every
    )

    def decorate_a(channel: int, marker: MarkerPacket) -> None:
        # A's marker on channel c grants B the right to push more B->A data.
        marker.credit = receiver_a.credit.piggyback_limit(channel)
        if receiver_a.reliable is not None:
            # ... and acknowledges the B->A data A has received so far.
            attach_sack(
                marker, receiver_a.reliable.sack_info(MAX_SACK_BLOCKS_WIRE)
            )

    def decorate_b(channel: int, marker: MarkerPacket) -> None:
        marker.credit = receiver_b.credit.piggyback_limit(channel)
        if receiver_b.reliable is not None:
            attach_sack(
                marker, receiver_b.reliable.sack_info(MAX_SACK_BLOCKS_WIRE)
            )

    sender_a = StripedSocketSender(
        sim, stack_a, a_to_b, algorithm_factory(),
        marker_policy=marker_policy, credit=credit_a,
        marker_decorator=decorate_a, marker_keepalive_s=0.01,
        reliability=reliability, reliability_options=sender_options,
    )
    sender_b = StripedSocketSender(
        sim, stack_b, b_to_a, algorithm_factory(),
        marker_policy=marker_policy, credit=credit_b,
        marker_decorator=decorate_b, marker_keepalive_s=0.01,
        reliability=reliability, reliability_options=sender_options,
    )

    # Arriving piggybacked credits feed the co-located sender.
    receiver_a.credit_sink = lambda ch, limit: credit_a.on_credit(ch, limit)
    receiver_b.credit_sink = lambda ch, limit: credit_b.on_credit(ch, limit)
    credit_a.on_unblocked = sender_a.pump
    credit_b.on_unblocked = sender_b.pump

    if arq_enabled(reliability):
        # Arriving piggybacked SACKs feed the co-located sender's ARQ,
        # and an ack-worthy event (out-of-order arrival, delayed-ack
        # expiry) forces a marker batch out of the co-located sender so
        # the fresh SACK travels immediately — zero standalone acks,
        # mirroring the credit scheme.
        receiver_a.sack_sink = sender_a.on_ack
        receiver_b.sack_sink = sender_b.on_ack
        receiver_a.reliable.send_ack = (
            lambda sack: sender_a.striper.force_marker_batch()
        )
        receiver_b.reliable.send_ack = (
            lambda sack: sender_b.striper.force_marker_batch()
        )

    return (
        DuplexStripedEndpoint(sender=sender_a, receiver=receiver_a),
        DuplexStripedEndpoint(sender=sender_b, receiver=receiver_b),
    )


def _connect_duplex_marker_free(
    sim: Simulator,
    stack_a: Stack,
    stack_b: Stack,
    a_to_b: Sequence[Tuple[str, int]],
    b_to_a: Sequence[Tuple[str, int]],
    sharer_factory,
    *,
    buffer_packets: int,
    base_port_a: int,
    base_port_b: int,
    reliability: str,
    reliability_options: Optional[dict],
) -> Tuple[DuplexStripedEndpoint, DuplexStripedEndpoint]:
    """The duplex variant for hash-synchronized (marker-free) disciplines.

    Strictly less machinery than the marker path: no marker stream, no
    credit piggybacking, no keepalives — each direction is two independent
    direct-reception pipelines.  The FCVC scheme isn't dropped so much as
    made redundant: its job is bounding *resequencer* memory, and direct
    reception holds zero packets by construction (``buffer_packets`` still
    applies the physical per-channel drop rule if set).
    """
    n = len(a_to_b)
    options = reliability_options or {}
    receiver_a = StripedSocketReceiver(
        sim, stack_a, n, None,
        base_port=base_port_a,
        buffer_packets=buffer_packets or None,
        mode="direct",
        reliability=reliability,
        reliability_options=options.get("receiver"),
    )
    receiver_b = StripedSocketReceiver(
        sim, stack_b, n, None,
        base_port=base_port_b,
        buffer_packets=buffer_packets or None,
        mode="direct",
        reliability=reliability,
        reliability_options=options.get("receiver"),
    )
    sender_a = StripedSocketSender(
        sim, stack_a, a_to_b, sharer_factory(),
        reliability=reliability,
        reliability_options=options.get("sender"),
    )
    sender_b = StripedSocketSender(
        sim, stack_b, b_to_a, sharer_factory(),
        reliability=reliability,
        reliability_options=options.get("sender"),
    )
    return (
        DuplexStripedEndpoint(sender=sender_a, receiver=receiver_a),
        DuplexStripedEndpoint(sender=sender_b, receiver=receiver_b),
    )
