"""Duplex striped sessions with credits piggybacked on markers.

Section 6.3: the FCVC credit scheme "was particularly well suited to our
striping scheme, since the credits could be piggybacked on the periodic
marker packets."  That sentence assumes bidirectional striping: each
direction's periodic markers carry the *other* direction's credit
advertisements, so flow control costs zero extra packets.

:class:`DuplexStripedEndpoint` bundles a striped sender and receiver on one
host; :func:`connect_duplex` wires two endpoints so that

* endpoint A's markers carry A-receiver credits for the B→A direction,
* endpoint B's markers carry B-receiver credits for the A→B direction,
* each receiver forwards arriving piggybacked credits to its co-located
  sender's :class:`~repro.transport.credit.CreditSender`.

No standalone credit packets are sent at all.  Everything here is plain
composition over the endpoint layer: the sender/receiver halves are the
:class:`~repro.transport.endpoint.StripeSenderPipeline` /
:class:`~repro.transport.endpoint.StripeReceiverPipeline` adapters from
:mod:`repro.transport.socket_striping`, and the piggyback plumbing is the
pipelines' ``marker_decorator`` / ``credit_sink`` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.packet import MarkerPacket, Packet
from repro.core.striper import MarkerPolicy
from repro.net.stack import Stack
from repro.sim.engine import Simulator
from repro.transport.credit import CreditSender
from repro.transport.socket_striping import (
    StripedSocketReceiver,
    StripedSocketSender,
)


@dataclass
class DuplexStripedEndpoint:
    """One side of a bidirectional striped session."""

    sender: StripedSocketSender
    receiver: StripedSocketReceiver

    def send_message(self, size: int, payload=None) -> Packet:
        return self.sender.send_message(size, payload)

    def submit_packet(self, packet: Packet) -> None:
        self.sender.submit_packet(packet)

    @property
    def delivered(self) -> List[Packet]:
        return self.receiver.delivered


def connect_duplex(
    sim: Simulator,
    stack_a: Stack,
    stack_b: Stack,
    a_to_b: Sequence[Tuple[str, int]],
    b_to_a: Sequence[Tuple[str, int]],
    algorithm_factory,
    buffer_packets: int,
    marker_policy: Optional[MarkerPolicy] = None,
    base_port_a: int = 7000,
    base_port_b: int = 7100,
    advertise_every: int = 1,
) -> Tuple[DuplexStripedEndpoint, DuplexStripedEndpoint]:
    """Build two endpoints with marker-piggybacked FCVC in both directions.

    Args:
        a_to_b: per-channel ``(b_ip, port)`` targets for A's data (ports
            must be ``base_port_b + i``).
        b_to_a: per-channel ``(a_ip, port)`` targets for B's data (ports
            must be ``base_port_a + i``).
        algorithm_factory: zero-arg callable building the (identical)
            SRR-family algorithm for each striper/resequencer instance.
        buffer_packets: per-channel receiver buffer (the FCVC bound).
    """
    if marker_policy is None:
        marker_policy = MarkerPolicy(interval_rounds=1)
    n = len(a_to_b)
    if len(b_to_a) != n:
        raise ValueError("both directions must have the same channel count")

    credit_a = CreditSender(n, initial_credit=buffer_packets)  # A's data out
    credit_b = CreditSender(n, initial_credit=buffer_packets)  # B's data out

    # Receivers first (their credit state feeds the marker decorators).
    receiver_a = StripedSocketReceiver(
        sim, stack_a, n, algorithm_factory(),
        base_port=base_port_a, buffer_packets=buffer_packets,
    )
    receiver_b = StripedSocketReceiver(
        sim, stack_b, n, algorithm_factory(),
        base_port=base_port_b, buffer_packets=buffer_packets,
    )
    # Manual credit accounting (no standalone advertisement sockets).
    from repro.transport.credit import CreditReceiver

    receiver_a.credit = CreditReceiver(
        n, buffer_packets, send_credit=None, advertise_every=advertise_every
    )
    receiver_b.credit = CreditReceiver(
        n, buffer_packets, send_credit=None, advertise_every=advertise_every
    )

    def decorate_a(channel: int, marker: MarkerPacket) -> None:
        # A's marker on channel c grants B the right to push more B->A data.
        marker.credit = receiver_a.credit.piggyback_limit(channel)

    def decorate_b(channel: int, marker: MarkerPacket) -> None:
        marker.credit = receiver_b.credit.piggyback_limit(channel)

    sender_a = StripedSocketSender(
        sim, stack_a, a_to_b, algorithm_factory(),
        marker_policy=marker_policy, credit=credit_a,
        marker_decorator=decorate_a, marker_keepalive_s=0.01,
    )
    sender_b = StripedSocketSender(
        sim, stack_b, b_to_a, algorithm_factory(),
        marker_policy=marker_policy, credit=credit_b,
        marker_decorator=decorate_b, marker_keepalive_s=0.01,
    )

    # Arriving piggybacked credits feed the co-located sender.
    receiver_a.credit_sink = lambda ch, limit: credit_a.on_credit(ch, limit)
    receiver_b.credit_sink = lambda ch, limit: credit_b.on_credit(ch, limit)
    credit_a.on_unblocked = sender_a.pump
    credit_b.on_unblocked = sender_b.pump

    return (
        DuplexStripedEndpoint(sender=sender_a, receiver=receiver_a),
        DuplexStripedEndpoint(sender=sender_b, receiver=receiver_b),
    )
