"""Crash-tolerant endpoints: durable state + epoch-stamped resume.

The paper prescribes exactly one thing for endpoint death: "We deal with
sender or receiver node crashes by doing a reset."  This module makes
that prescription — and its much cheaper modern refinement — executable:

* **Durable state.**  :func:`sender_to_bytes` / :func:`receiver_to_bytes`
  serialize the *composed* endpoint state (SRR kernel, sync-model mirror,
  resequencer buffers, ARQ scoreboard + retransmit buffer, fabric flow
  table + DRR state, FEC group counters) into one versioned, CRC-guarded
  frame; :class:`CheckpointStore` is the durable-medium stand-in holding
  the last two checkpoints (last-good fallback) plus a write-ahead log of
  per-packet records so nothing submitted between checkpoints is lost.

* **Epoch-stamped resume.**  Every incarnation of an endpoint draws a
  fresh epoch from its store.  A restarted endpoint announces itself with
  a :class:`~repro.core.control.ResumePacket` /
  :class:`~repro.core.control.ResumeReportPacket` handshake; acks are
  stamped with the receiver's epoch so a sender rejects stale acks from
  the previous incarnation.  Data packets carry **no** epoch — the paper's
  no-header-on-data constraint (section 2.1) holds — staleness on the data
  plane is absorbed by rseq dedup (reliable modes) and by the marker
  stream itself (quasi-FIFO), which self-synchronizes within one marker
  round (Theorem 5.1).

* **Warm adoption, not reset.**  A restarted *sender* resumes from its
  checkpointed kernel, which is *behind* the receiver's mirror by the
  in-flight delta; since markers only ever move a mirror forward, the
  ResumePacket carries the sender's kernel snapshot and the receiver
  adopts it (:meth:`~repro.core.markers.SRRReceiver.adopt_snapshot`),
  flushing stale buffered data from the dead incarnation.  A restarted
  *receiver* restores a mirror that is stale-*behind* the live sender —
  exactly the state incoming markers are designed to fast-forward — so no
  reset is needed at all; the report simply tells the sender what to
  replay.  A receiver restarted **without** a checkpoint converges by
  waiting for the next marker round: cold resync, the Theorem 5.1
  mechanism itself.

Reconciliation (reliable modes): the receiver reports its rseq
high-water and SACK blocks; the sender treats the report as
*authoritative* — it retires below ``cum_ack``, rewrites its sacked flags
exactly to the report (a restarted receiver may have lost
out-of-order packets the sender believed sacked; classic SACK reneging),
replays everything else from the ARQ retransmit buffer *through SRR* so
recovery traffic stays inside the Theorem 3.2 fairness envelope, and
resets its RTO backoff per Karn's rule (the old samples describe a dead
path).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.control import ResumePacket, ResumeReportPacket
from repro.core.markers import ReceiverSnapshot, decode_marker, encode_marker
from repro.core.packet import Packet, SackInfo, is_marker, is_parity
from repro.core.srr import SRRState
from repro.transport.reliability import AckPacket

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointVersionError",
    "ReceiverRecovery",
    "SenderRecovery",
    "checksum",
    "decode_checkpoint",
    "encode_checkpoint",
    "receiver_from_bytes",
    "receiver_to_bytes",
    "sender_from_bytes",
    "sender_to_bytes",
]


def checksum(data: bytes) -> int:
    """CRC-32 as an unsigned 32-bit int.

    One helper for both corruption domains: checkpoint/WAL frames here and
    the delivered-corruption chaos assertions (``corrupt_deliver`` flips a
    byte; this is how tests prove the flip landed).
    """
    return zlib.crc32(data) & 0xFFFFFFFF


class CheckpointError(ValueError):
    """Base class for checkpoint codec failures."""


class CheckpointCorruptError(CheckpointError):
    """Frame failed its magic or CRC check (bit rot, torn write)."""


class CheckpointVersionError(CheckpointError):
    """Frame is intact but written by an unknown codec version."""


# --------------------------------------------------------------------- #
# tagged tree codec
#
# Checkpoints are trees of plain values (dict/list/tuple/str/bytes/
# int/float/bool/None) with two protocol-native leaves: SRRState (the
# kernel triple) and ReceiverSnapshot (the mirror quintuple).  Anything
# else — opaque scheme state from an exotic CFQ kernel, a foreign payload
# object — rides as a tagged pickle blob.  The envelope is versioned and
# CRC-guarded, and checkpoints are local trusted files, so the fallback
# does not widen the attack surface beyond the process's own state.

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


def _encode_tree(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif type(value) is int:
        body = str(value).encode("ascii")
        out.append(b"i" + _U32.pack(len(body)) + body)
    elif type(value) is float:
        out.append(b"f" + _F64.pack(value))
    elif type(value) is str:
        body = value.encode("utf-8")
        out.append(b"s" + _U32.pack(len(body)) + body)
    elif type(value) is bytes:
        out.append(b"y" + _U32.pack(len(value)) + value)
    elif type(value) is list or type(value) is tuple:
        out.append((b"l" if type(value) is list else b"t") + _U32.pack(len(value)))
        for item in value:
            _encode_tree(item, out)
    elif type(value) is dict:
        out.append(b"d" + _U32.pack(len(value)))
        for key, item in value.items():
            _encode_tree(key, out)
            _encode_tree(item, out)
    elif type(value) is SRRState:
        out.append(b"K")
        _encode_tree((value.ptr, value.round_number, list(value.dc)), out)
    elif type(value) is ReceiverSnapshot:
        out.append(b"R")
        _encode_tree(
            (
                value.ptr,
                value.round_number,
                list(value.dc),
                list(value.pending),
                list(value.sync_round),
            ),
            out,
        )
    else:
        body = pickle.dumps(value, protocol=4)
        out.append(b"P" + _U32.pack(len(body)) + body)


def _decode_tree(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos : pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"f":
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag in (b"i", b"s", b"y", b"P"):
        (length,) = _U32.unpack_from(data, pos)
        pos += 4
        body = data[pos : pos + length]
        if len(body) != length:
            raise CheckpointCorruptError("truncated leaf")
        pos += length
        if tag == b"i":
            return int(body), pos
        if tag == b"s":
            return body.decode("utf-8"), pos
        if tag == b"y":
            return body, pos
        return pickle.loads(body), pos
    if tag in (b"l", b"t"):
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_tree(data, pos)
            items.append(item)
        return (items if tag == b"l" else tuple(items)), pos
    if tag == b"d":
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        tree: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_tree(data, pos)
            value, pos = _decode_tree(data, pos)
            tree[key] = value
        return tree, pos
    if tag == b"K":
        triple, pos = _decode_tree(data, pos)
        ptr, round_number, dc = triple
        return SRRState(ptr, round_number, tuple(dc)), pos
    if tag == b"R":
        fields, pos = _decode_tree(data, pos)
        ptr, round_number, dc, pending, sync_round = fields
        return (
            ReceiverSnapshot(
                ptr, round_number, tuple(dc), tuple(pending), tuple(sync_round)
            ),
            pos,
        )
    raise CheckpointCorruptError(f"unknown tree tag {tag!r}")


CHECKPOINT_MAGIC = b"SRCK"
CHECKPOINT_VERSION = 1
_HEADER = struct.Struct("!4sHI")  # magic, version, body length


def encode_checkpoint(tree: Any, *, version: int = CHECKPOINT_VERSION) -> bytes:
    """Frame ``tree`` as ``magic | version | length | body | crc32``."""
    parts: List[bytes] = []
    _encode_tree(tree, parts)
    body = b"".join(parts)
    frame = _HEADER.pack(CHECKPOINT_MAGIC, version, len(body)) + body
    return frame + _U32.pack(checksum(frame))


def decode_checkpoint(blob: bytes) -> Any:
    """Validate and decode a checkpoint frame.

    Validation order is magic → CRC → version: a bit-rotted frame raises
    :class:`CheckpointCorruptError` even if the rot landed in the version
    field, while an *intact* frame from a future codec raises the typed
    :class:`CheckpointVersionError` so callers can distinguish skew from
    damage.
    """
    if len(blob) < _HEADER.size + 4:
        raise CheckpointCorruptError("checkpoint too short")
    if blob[:4] != CHECKPOINT_MAGIC:
        raise CheckpointCorruptError("bad checkpoint magic")
    frame, (crc,) = blob[:-4], _U32.unpack(blob[-4:])
    if checksum(frame) != crc:
        raise CheckpointCorruptError("checkpoint CRC mismatch")
    magic, version, length = _HEADER.unpack_from(blob, 0)
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(f"unknown checkpoint version {version}")
    body = blob[_HEADER.size : _HEADER.size + length]
    if len(body) != length:
        raise CheckpointCorruptError("checkpoint body truncated")
    tree, _ = _decode_tree(body, 0)
    return tree


def _seal_record(payload: bytes) -> bytes:
    return _U32.pack(len(payload)) + payload + _U32.pack(checksum(payload))


def _unseal_records(blob: bytes) -> Tuple[List[bytes], int]:
    """Decode a concatenation of sealed WAL records.

    Returns ``(payloads, skipped)``; a torn or bit-rotted tail stops the
    scan (everything after a bad record is unordered noise) and counts as
    skipped.
    """
    payloads: List[bytes] = []
    skipped = 0
    pos = 0
    total = len(blob)
    while pos + 4 <= total:
        (length,) = _U32.unpack_from(blob, pos)
        end = pos + 4 + length + 4
        if end > total:
            skipped += 1
            break
        payload = blob[pos + 4 : pos + 4 + length]
        (crc,) = _U32.unpack_from(blob, pos + 4 + length)
        if checksum(payload) != crc:
            skipped += 1
            break
        payloads.append(payload)
        pos = end
    return payloads, skipped


class CheckpointStore:
    """Durable-medium stand-in that survives endpoint reconstruction.

    Holds the current checkpoint, the previous one (last-good fallback:
    if the current frame fails its CRC the previous is served instead),
    a write-ahead log of sealed records appended since the last
    checkpoint, and the endpoint's persistent incarnation-epoch counter.
    In the simulator this lives in host memory across kill/restart; a
    production port would back it with two checkpoint files and an
    append-only log, unchanged API.
    """

    def __init__(self) -> None:
        self._current: Optional[bytes] = None
        self._previous: Optional[bytes] = None
        self._wal: List[bytes] = []
        self.epoch = 0
        self.checkpoints_saved = 0
        self.wal_records = 0
        self.wal_bytes = 0
        self.fallbacks = 0
        self.corrupt_wal_records = 0

    def next_epoch(self) -> int:
        """Draw a fresh incarnation epoch (first incarnation gets 1)."""
        self.epoch += 1
        return self.epoch

    @property
    def checkpoint_bytes(self) -> int:
        return len(self._current) if self._current is not None else 0

    def save_checkpoint(self, blob: bytes) -> None:
        """Install a new checkpoint; the WAL it subsumes is truncated."""
        self._previous = self._current
        self._current = blob
        self._wal.clear()
        self.checkpoints_saved += 1

    def append_wal(self, payload: bytes) -> None:
        sealed = _seal_record(payload)
        self._wal.append(sealed)
        self.wal_records += 1
        self.wal_bytes += len(sealed)

    def load_checkpoint(self) -> Optional[Any]:
        """Decode the newest intact checkpoint, or None if there is none.

        Corruption falls back to the previous checkpoint (counted in
        ``fallbacks``); version skew propagates as the typed
        :class:`CheckpointVersionError` — skew is an operator problem, not
        something an older frame can paper over.
        """
        for blob in (self._current, self._previous):
            if blob is None:
                continue
            try:
                return decode_checkpoint(blob)
            except CheckpointVersionError:
                raise
            except CheckpointCorruptError:
                self.fallbacks += 1
        return None

    def wal_payloads(self) -> List[bytes]:
        payloads, skipped = _unseal_records(b"".join(self._wal))
        self.corrupt_wal_records += skipped
        return payloads

    def lose_data(self) -> None:
        """Simulate losing checkpoints and WAL while the epoch survives.

        The cold-restart fixture: crash-recovery epochs must stay
        monotonic even when state is gone (think an NVRAM incarnation
        counter, or a clock-derived epoch), so only the *data* is wiped.
        The next :meth:`load_checkpoint` returns None and the endpoint
        comes up cold.
        """
        self._current = None
        self._previous = None
        self._wal.clear()


# --------------------------------------------------------------------- #
# packet packing

_PACKET_FIELDS = (
    "size", "seq", "label", "flow", "payload", "codepoint", "rseq", "fseq",
    "synthesized",
)


_PARITY_FIELDS = (
    "group", "members", "index", "nparity", "shard_len", "payload", "size",
    "seq", "rseq", "fseq",
)


def pack_packet(packet: Any) -> Any:
    """Checkpoint form of a data, marker, or parity packet.

    Markers reuse the canonical 32-byte wire codec; data and parity
    packets are field tuples (``uid`` is deliberately dropped — a restored
    packet is a new object).  Parity needs its own shape: a stripe-group
    shard buffered in a resequencer at checkpoint time must come back with
    its group geometry or the FEC receiver cannot consume it.
    """
    if is_marker(packet):
        return {"m": encode_marker(packet)}
    if is_parity(packet):
        return {"q": [getattr(packet, name) for name in _PARITY_FIELDS]}
    return {"p": [getattr(packet, name, None) for name in _PACKET_FIELDS]}


def unpack_packet(tree: Any) -> Any:
    wire = tree.get("m")
    if wire is not None:
        return decode_marker(wire)
    parity = tree.get("q")
    if parity is not None:
        from repro.transport.fec import ParityPacket

        group, members, index, nparity, shard_len, payload, size, seq, rseq, fseq = parity
        return ParityPacket(
            group, members, index, nparity, shard_len, payload,
            size=size, seq=seq, rseq=rseq, fseq=fseq,
        )
    size, seq, label, flow, payload, codepoint, rseq, fseq, synthesized = tree["p"]
    packet = Packet(
        size, seq=seq, label=label, flow=flow, payload=payload,
        codepoint=codepoint, rseq=rseq, fseq=fseq,
    )
    packet.synthesized = bool(synthesized)
    return packet


def _sharer_snapshot(sharer: Any) -> Any:
    snap = getattr(sharer, "snapshot", None)
    if snap is not None:
        return snap()
    kernel = getattr(sharer, "kernel", None)
    if kernel is not None:
        return kernel.snapshot()
    return None


def _sharer_restore(sharer: Any, state: Any) -> None:
    if state is None:
        return
    restore = getattr(sharer, "restore", None)
    if restore is not None:
        restore(state)
        return
    kernel = getattr(sharer, "kernel", None)
    if kernel is not None:
        kernel.restore(state)
        return
    raise CheckpointError(f"{type(sharer).__name__} cannot restore state")


# --------------------------------------------------------------------- #
# composed endpoint state <-> tree


def sender_state_tree(pipeline: Any, *, peer_epoch: int = 0) -> Dict[str, Any]:
    striper = pipeline.striper
    reliable = pipeline.reliable
    tree: Dict[str, Any] = {
        "role": "sender",
        "peer_epoch": peer_epoch,
        "striper": {
            "sharer": _sharer_snapshot(striper.sharer),
            "packets_sent": striper.packets_sent,
            "bytes_sent": striper.bytes_sent,
            "markers_sent": striper.markers_sent,
            "crossings": striper._crossings_seen,
            "initial_markers": striper._initial_markers_pending,
            # Queue entries already stamped with an rseq alias the ARQ
            # retransmit buffer and come back through the replay path;
            # only unstamped entries are serialized here.
            "queue": [
                pack_packet(p)
                for p in striper.input_queue
                if getattr(p, "rseq", None) is None
            ],
        },
    }
    if reliable is not None:
        tree["reliable"] = {
            "next_rseq": reliable.next_rseq,
            "window": [pack_packet(r.packet) for r in reliable.unacked.values()],
            "sacked": [
                rseq for rseq, r in reliable.unacked.items() if r.sacked
            ],
            "overflow": [pack_packet(p) for p in reliable._overflow],
            "rto": [reliable.rto.srtt, reliable.rto.rttvar, reliable.rto.rto],
        }
    else:
        tree["reliable"] = None
    fec = pipeline.fec
    if fec is not None:
        # The in-progress group's shards are dropped: after restart the
        # group would seal with holes anyway, and hybrid's ARQ backstop
        # (or pure-fec's gap skip) already owns unrecoverable positions.
        tree["fec"] = {
            "next_fseq": fec._next_fseq,
            "group_base": fec._group_base,
        }
    else:
        tree["fec"] = None
    fabric = pipeline.fabric
    if fabric is not None:
        snap = fabric.snapshot()
        tree["fabric"] = {
            "flows": [
                {
                    "id": f.flow_id,
                    "tenant": f.tenant,
                    "weight": f.weight,
                    "queue": [pack_packet(p) for p in f.queue],
                }
                for f in fabric.table
            ],
            "sched": [
                [[fid, deficit, visits] for fid, deficit, visits in snap.flows],
                list(snap.active_order),
                snap.head_credited,
            ],
        }
    else:
        tree["fabric"] = None
    return tree


def restore_sender_state(pipeline: Any, tree: Dict[str, Any]) -> None:
    if tree.get("role") != "sender":
        raise CheckpointError("not a sender checkpoint")
    striper = pipeline.striper
    st = tree["striper"]
    _sharer_restore(striper.sharer, st["sharer"])
    striper.packets_sent = st["packets_sent"]
    striper.bytes_sent = st["bytes_sent"]
    striper.markers_sent = st["markers_sent"]
    striper._crossings_seen = st["crossings"]
    striper._initial_markers_pending = st["initial_markers"]
    rel = tree.get("reliable")
    if rel is not None and pipeline.reliable is not None:
        reliable = pipeline.reliable
        window = [unpack_packet(p) for p in rel["window"]]
        overflow = [unpack_packet(p) for p in rel["overflow"]]
        reliable.register_restored(
            window + overflow,
            next_rseq=rel["next_rseq"],
            sacked_rseqs=rel["sacked"],
        )
        srtt, rttvar, rto = rel["rto"]
        reliable.rto.srtt = srtt
        reliable.rto.rttvar = rttvar
        reliable.rto.rto = rto
    fec_tree = tree.get("fec")
    if fec_tree is not None and pipeline.fec is not None:
        pipeline.fec._next_fseq = fec_tree["next_fseq"]
        pipeline.fec._group_base = fec_tree["group_base"]
    fab_tree = tree.get("fabric")
    if fab_tree is not None and pipeline.fabric is not None:
        fabric = pipeline.fabric
        for row in fab_tree["flows"]:
            flow = fabric.table.get(row["id"])
            if flow is None:
                flow = fabric.table.register(
                    row["id"], weight=row["weight"], tenant=row["tenant"]
                )
            flow.queue.clear()
            flow.queue.extend(unpack_packet(p) for p in row["queue"])
        flows, active_order, head_credited = fab_tree["sched"]
        from repro.transport.fabric import FabricSnapshot

        fabric.restore(
            FabricSnapshot(
                flows=tuple((fid, deficit, visits) for fid, deficit, visits in flows),
                active_order=tuple(active_order),
                head_credited=head_credited,
            )
        )
    # Queued-but-unstamped input is re-submitted through the normal path
    # last, so it lands behind everything the ARQ buffer will replay.
    for packed in st["queue"]:
        pipeline._submit(unpack_packet(packed))


def receiver_state_tree(pipeline: Any, *, sender_epoch: int = 0) -> Dict[str, Any]:
    reseq = pipeline.resequencer
    buffers = getattr(reseq, "buffers", None)
    tree: Dict[str, Any] = {
        "role": "receiver",
        "sender_epoch": sender_epoch,
        "sync": pipeline.sync.snapshot(),
        "buffers": (
            None
            if buffers is None
            else [[pack_packet(p) for p in buf] for buf in buffers]
        ),
        "pushed": list(pipeline._pushed_data),
    }
    reliable = pipeline.reliable
    if reliable is not None:
        tree["arq"] = {
            "next_expected": reliable.next_expected,
            "ooo": [
                [rseq, pack_packet(p)] for rseq, p in reliable._ooo.items()
            ],
            "last_ooo": reliable._last_ooo,
        }
    else:
        tree["arq"] = None
    fec = pipeline.fec
    if fec is not None:
        # Partial groups and cached shards are dropped: parity for them
        # may already be lost with the process, and the ARQ backstop /
        # gap-skip timer owns those positions after restart.
        tree["fec"] = {
            "next_expected": fec._next_expected,
            "delivered_hw": fec._delivered_hw,
        }
    else:
        tree["fec"] = None
    return tree


def restore_receiver_state(pipeline: Any, tree: Dict[str, Any]) -> None:
    if tree.get("role") != "receiver":
        raise CheckpointError("not a receiver checkpoint")
    snap = tree.get("sync")
    reseq = pipeline.resequencer
    if snap is not None:
        if isinstance(snap, ReceiverSnapshot):
            # Faithful restore, not adopt_snapshot: adoption is the warm
            # handshake path and deliberately resets pending/sync_round.
            reseq.restore(snap)
        else:
            restore = getattr(reseq, "restore", None)
            if restore is None:
                raise CheckpointError(
                    f"{type(reseq).__name__} cannot restore state"
                )
            restore(snap)
    packed_buffers = tree.get("buffers")
    if packed_buffers is not None and hasattr(reseq, "buffers"):
        count = 0
        for buf, packed in zip(reseq.buffers, packed_buffers):
            buf.clear()
            buf.extend(unpack_packet(p) for p in packed)
            count += len(buf)
        if hasattr(reseq, "_buffered"):
            reseq._buffered = count
    pushed = tree.get("pushed")
    if pushed is not None:
        for channel, value in enumerate(pushed):
            if channel < len(pipeline._pushed_data):
                pipeline._pushed_data[channel] = value
    arq = tree.get("arq")
    if arq is not None and pipeline.reliable is not None:
        pipeline.reliable.restore_window(
            arq["next_expected"],
            {rseq: unpack_packet(p) for rseq, p in arq["ooo"]},
            last_ooo=arq["last_ooo"],
        )
    fec_tree = tree.get("fec")
    if fec_tree is not None and pipeline.fec is not None:
        pipeline.fec._next_expected = fec_tree["next_expected"]
        pipeline.fec._delivered_hw = fec_tree["delivered_hw"]


def sender_to_bytes(pipeline: Any, *, peer_epoch: int = 0) -> bytes:
    """Serialize a :class:`StripeSenderPipeline`'s composed state."""
    return encode_checkpoint(sender_state_tree(pipeline, peer_epoch=peer_epoch))


def sender_from_bytes(pipeline: Any, blob: bytes) -> Dict[str, Any]:
    """Restore a freshly constructed sender pipeline from a checkpoint."""
    tree = decode_checkpoint(blob)
    restore_sender_state(pipeline, tree)
    return tree


def receiver_to_bytes(pipeline: Any, *, sender_epoch: int = 0) -> bytes:
    """Serialize a :class:`StripeReceiverPipeline`'s composed state."""
    return encode_checkpoint(
        receiver_state_tree(pipeline, sender_epoch=sender_epoch)
    )


def receiver_from_bytes(pipeline: Any, blob: bytes) -> Dict[str, Any]:
    """Restore a freshly constructed receiver pipeline from a checkpoint."""
    tree = decode_checkpoint(blob)
    restore_receiver_state(pipeline, tree)
    return tree


# --------------------------------------------------------------------- #
# WAL record payloads (tree-coded, individually CRC-sealed by the store)


def _wal_encode(tree: Any) -> bytes:
    parts: List[bytes] = []
    _encode_tree(tree, parts)
    return b"".join(parts)


def _wal_decode(payload: bytes) -> Any:
    tree, _ = _decode_tree(payload, 0)
    return tree


# --------------------------------------------------------------------- #
# recovery managers


class SenderRecovery:
    """Checkpoint + WAL + resume handshake for a sender pipeline.

    WAL records between checkpoints:

    * ``pkt`` — a packet the ARQ layer stamped (carries its rseq); written
      synchronously with submission, so nothing accepted from the
      application can be lost by a crash.
    * ``sub`` — a fabric submission (uid-keyed), written before the packet
      enters its flow queue.
    * ``bind`` — ``uid -> rseq``, written when a fabric packet drains into
      the ARQ layer.  Replaying a restored fabric in DRR order could
      assign *different* rseqs than the original incremental drain did, so
      bound packets are reinstalled with their original rseqs and only
      unbound ones re-drain through the fabric.

    On restart, :meth:`install` restores the last checkpoint, applies the
    WAL, announces the new epoch with a :class:`ResumePacket` (retried
    until the receiver's report echoes it), and on the report reconciles +
    replays through SRR.
    """

    def __init__(
        self,
        pipeline: Any,
        store: CheckpointStore,
        *,
        sim: Any = None,
        checkpoint_interval_s: Optional[float] = None,
        send_control: Optional[Callable[[Any], None]] = None,
        resume_retry_s: float = 0.04,
    ) -> None:
        self.pipeline = pipeline
        self.store = store
        self.sim = sim
        self.checkpoint_interval_s = checkpoint_interval_s
        self.send_control = send_control
        self.resume_retry_s = resume_retry_s
        self.epoch = 0
        self.peer_epoch = 0
        self.resumed_from_checkpoint = False
        self.recovered_at: Optional[float] = None
        self.stale_acks = 0
        self.stale_reports = 0
        self.replayed_packets = 0
        self.wal_packets_restored = 0
        self._ckpt_timer: Any = None
        self._resume_timer: Any = None
        self._awaiting_report = False
        self._pending_replay = False
        self._reconciled_pair = (0, 0)
        self._stopped = False
        self._orig_fabric_submit: Optional[Callable[..., Any]] = None

    # -- lifecycle ----------------------------------------------------- #

    def install(self) -> bool:
        """Hook the pipeline, restore durable state, start the handshake.

        Returns True when state was restored from the store (a restart),
        False on a first incarnation.
        """
        restored = self._restore()
        self.epoch = self.store.next_epoch()
        reliable = self.pipeline.reliable
        if reliable is not None:
            reliable.on_register = self._on_register
        if self.pipeline.fabric is not None:
            self._orig_fabric_submit = self.pipeline.submit
            self.pipeline.submit = self._logged_submit
        if restored:
            self.resumed_from_checkpoint = True
            self._pending_replay = reliable is not None
            self._awaiting_report = True
            self._send_resume()
            # Collapse checkpoint + WAL into one fresh checkpoint so the
            # WAL never needs to be idempotent across repeated crashes.
            self.checkpoint()
        self._arm_checkpoint_timer()
        return restored

    def stop(self) -> None:
        """Cancel timers; called when this incarnation is killed."""
        self._stopped = True
        for timer in (self._ckpt_timer, self._resume_timer):
            if timer is not None:
                timer.cancel()
        self._ckpt_timer = None
        self._resume_timer = None

    def checkpoint(self) -> bytes:
        blob = sender_to_bytes(self.pipeline, peer_epoch=self.peer_epoch)
        self.store.save_checkpoint(blob)
        return blob

    def _arm_checkpoint_timer(self) -> None:
        if (
            self.checkpoint_interval_s is None
            or self.sim is None
            or self._stopped
        ):
            return
        self._ckpt_timer = self.sim.schedule(
            self.checkpoint_interval_s, self._on_checkpoint_timer
        )

    def _on_checkpoint_timer(self) -> None:
        self._ckpt_timer = None
        if self._stopped:
            return
        self.checkpoint()
        self._arm_checkpoint_timer()

    # -- WAL hooks ------------------------------------------------------ #

    def _on_register(self, packet: Any) -> None:
        if self._orig_fabric_submit is not None:
            self.store.append_wal(
                _wal_encode({"t": "bind", "uid": packet.uid, "rseq": packet.rseq})
            )
        else:
            self.store.append_wal(_wal_encode({"t": "pkt", "pkt": pack_packet(packet)}))

    def _logged_submit(self, flow_id: Any, packet: Any) -> bool:
        self.store.append_wal(
            _wal_encode(
                {"t": "sub", "uid": packet.uid, "flow": flow_id, "pkt": pack_packet(packet)}
            )
        )
        assert self._orig_fabric_submit is not None
        return self._orig_fabric_submit(flow_id, packet)

    # -- restore --------------------------------------------------------- #

    def _restore(self) -> bool:
        tree = self.store.load_checkpoint()
        if tree is None:
            return False
        restore_sender_state(self.pipeline, tree)
        self.peer_epoch = tree.get("peer_epoch", 0)
        self._apply_wal()
        return True

    def _apply_wal(self) -> None:
        reliable = self.pipeline.reliable
        fabric = self.pipeline.fabric
        pending: Dict[int, Tuple[Any, Any]] = {}  # uid -> (flow_id, packet)
        bound: List[Any] = []
        for payload in self.store.wal_payloads():
            record = _wal_decode(payload)
            kind = record["t"]
            if kind == "pkt":
                packet = unpack_packet(record["pkt"])
                if reliable is not None and packet.rseq is not None:
                    bound.append(packet)
                else:
                    self.pipeline._submit(packet)
                self.wal_packets_restored += 1
            elif kind == "sub":
                pending[record["uid"]] = (record["flow"], unpack_packet(record["pkt"]))
            elif kind == "bind":
                uid = record["uid"]
                entry = pending.pop(uid, None)
                if entry is not None:
                    packet = entry[1]
                    packet.rseq = record["rseq"]
                    bound.append(packet)
                elif fabric is not None:
                    # Submitted before the checkpoint, drained after it:
                    # the packet sits in a restored flow queue.  Move it
                    # to the ARQ buffer under its logged rseq.
                    packet = _pop_fabric_uid(fabric, uid)
                    if packet is not None:
                        packet.rseq = record["rseq"]
                        bound.append(packet)
                self.wal_packets_restored += 1
        if bound and reliable is not None:
            reliable.register_restored(bound)
        for flow_id, packet in pending.values():
            # Logged at fabric entry but never drained: re-submit through
            # the normal fabric path (rseq assignment happens at drain).
            packet.rseq = None
            assert self._orig_fabric_submit is None  # not hooked yet
            self.pipeline.submit(flow_id, packet)

    # -- handshake ------------------------------------------------------- #

    def _kernel_state(self) -> Any:
        return _sharer_snapshot(self.pipeline.striper.sharer)

    def _base_rseq(self) -> int:
        reliable = self.pipeline.reliable
        if reliable is None:
            return -1
        if reliable.unacked:
            return min(reliable.unacked)
        return reliable.next_rseq

    def _send_resume(self) -> None:
        if self.send_control is None:
            return
        self.send_control(
            ResumePacket(
                epoch=self.epoch,
                peer_epoch=self.peer_epoch,
                base_rseq=self._base_rseq(),
                state=self._kernel_state(),
            )
        )
        if self._awaiting_report and self.sim is not None:
            if self._resume_timer is not None:
                self._resume_timer.cancel()
            self._resume_timer = self.sim.schedule(
                self.resume_retry_s, self._resume_retry
            )

    def _resume_retry(self) -> None:
        self._resume_timer = None
        if self._stopped or not self._awaiting_report:
            return
        self._send_resume()

    def on_control(self, packet: Any) -> None:
        """Handle a control packet from the reverse path."""
        if isinstance(packet, ResumeReportPacket):
            self._on_report(packet)

    def _on_report(self, report: ResumeReportPacket) -> None:
        if report.epoch < self.peer_epoch:
            self.stale_reports += 1
            return
        fresh_peer = report.epoch > self.peer_epoch
        self.peer_epoch = report.epoch
        addressed_to_us = report.peer_epoch >= self.epoch
        if addressed_to_us and self._awaiting_report:
            self._awaiting_report = False
            if self._resume_timer is not None:
                self._resume_timer.cancel()
                self._resume_timer = None
        if fresh_peer or not addressed_to_us:
            # Echo the announce *before* any replay traffic so the
            # restarted receiver's stale-buffer flush runs ahead of the
            # replayed packets on every channel (also re-arms a receiver
            # whose first echo was lost).
            self._send_resume()
        reliable = self.pipeline.reliable
        if reliable is None:
            return
        # Reconcile once per (peer incarnation, own incarnation) pair: a
        # max-of-epochs guard would wrongly suppress the replay when the
        # receiver restarts *after* the sender already recovered at the
        # same epoch number (e.g. sender at epoch 2, then receiver at 2).
        epoch_pair = (report.epoch, self.epoch)
        should_reconcile = (
            fresh_peer or (self._pending_replay and addressed_to_us)
        ) and self._reconciled_pair != epoch_pair
        if should_reconcile:
            self._reconciled_pair = epoch_pair
            self._pending_replay = False
            if report.cold:
                # The receiver has no history: replay the whole window.
                replayed = reliable.reconcile(self._base_rseq(), ())
            else:
                replayed = reliable.reconcile(
                    report.cum_ack, tuple((s, e) for s, e in report.blocks)
                )
            self.replayed_packets += replayed
            if self.sim is not None:
                self.recovered_at = self.sim.now
            self.pipeline.pump()

    def on_ack(self, ack: Any) -> None:
        """Epoch fence for the reverse ack path."""
        epoch = getattr(ack, "epoch", 0)
        if epoch and epoch < self.peer_epoch:
            self.stale_acks += 1
            return
        self.pipeline.on_ack(ack)


def _pop_fabric_uid(fabric: Any, uid: int) -> Optional[Any]:
    for flow in fabric.table:
        for packet in flow.queue:
            if packet.uid == uid:
                flow.queue.remove(packet)
                return packet
    return None


class ReceiverRecovery:
    """Checkpoint + delivery-cursor WAL + resume handshake for a receiver.

    The WAL holds one record per in-order delivery (``rseq`` cursor),
    written *before* the application callback runs — after a restart the
    replayed cursor guarantees nothing already handed up is delivered
    twice (exactly-once across the crash).  Acks are deliberately not
    logged: losing them only costs duplicate retransmissions, which rseq
    dedup absorbs, and that loss is exactly what makes the checkpoint
    interval a real recovery-latency knob.
    """

    def __init__(
        self,
        pipeline: Any,
        store: CheckpointStore,
        *,
        sim: Any = None,
        checkpoint_interval_s: Optional[float] = None,
        send_control: Optional[Callable[[Any], None]] = None,
        resume_retry_s: float = 0.04,
    ) -> None:
        self.pipeline = pipeline
        self.store = store
        self.sim = sim
        self.checkpoint_interval_s = checkpoint_interval_s
        self.send_control = send_control
        self.resume_retry_s = resume_retry_s
        self.epoch = 0
        self.sender_epoch = 0
        self.cold = True
        self.resumed_from_checkpoint = False
        self.stale_resumes = 0
        self.stale_flushed = 0
        self.adoptions = 0
        self.wal_cursor_restored = 0
        self._ckpt_timer: Any = None
        self._report_timer: Any = None
        self._awaiting_echo = False
        self._stopped = False
        self._orig_deliver: Optional[Callable[[Any], Any]] = None

    # -- lifecycle ----------------------------------------------------- #

    def install(self) -> bool:
        restored = self._restore()
        self.cold = not restored
        self.resumed_from_checkpoint = restored
        self.epoch = self.store.next_epoch()
        reliable = self.pipeline.reliable
        if reliable is not None:
            self._orig_deliver = reliable.on_deliver
            reliable.on_deliver = self._logged_deliver
            if reliable.send_ack is not None:
                orig_send = reliable.send_ack
                reliable.send_ack = lambda sack: orig_send(
                    AckPacket(sack, epoch=self.epoch)
                )
        if self.epoch > 1:
            # A restart (warm or cold): report to the sender so it can
            # reconcile; retried until the sender's announce echoes us.
            self._awaiting_echo = True
            self._send_report()
        if restored:
            self.checkpoint()
        self._arm_checkpoint_timer()
        return restored

    def stop(self) -> None:
        self._stopped = True
        for timer in (self._ckpt_timer, self._report_timer):
            if timer is not None:
                timer.cancel()
        self._ckpt_timer = None
        self._report_timer = None

    def checkpoint(self) -> bytes:
        blob = receiver_to_bytes(self.pipeline, sender_epoch=self.sender_epoch)
        self.store.save_checkpoint(blob)
        return blob

    def _arm_checkpoint_timer(self) -> None:
        if (
            self.checkpoint_interval_s is None
            or self.sim is None
            or self._stopped
        ):
            return
        self._ckpt_timer = self.sim.schedule(
            self.checkpoint_interval_s, self._on_checkpoint_timer
        )

    def _on_checkpoint_timer(self) -> None:
        self._ckpt_timer = None
        if self._stopped:
            return
        self.checkpoint()
        self._arm_checkpoint_timer()

    # -- delivery cursor WAL -------------------------------------------- #

    def _logged_deliver(self, packet: Any) -> Any:
        rseq = getattr(packet, "rseq", None)
        if rseq is not None:
            # Write-ahead: the cursor is durable before the application
            # sees the packet, so a crash between the two redelivers
            # nothing (crashes land between simulator events, never
            # mid-callback).
            self.store.append_wal(_wal_encode(rseq))
        assert self._orig_deliver is not None
        return self._orig_deliver(packet)

    def _restore(self) -> bool:
        tree = self.store.load_checkpoint()
        if tree is None:
            return False
        restore_receiver_state(self.pipeline, tree)
        self.sender_epoch = tree.get("sender_epoch", 0)
        reliable = self.pipeline.reliable
        if reliable is not None:
            cursor = reliable.next_expected
            for payload in self.store.wal_payloads():
                rseq = _wal_decode(payload)
                if isinstance(rseq, int) and rseq >= cursor:
                    cursor = rseq + 1
                    self.wal_cursor_restored += 1
            # Post-checkpoint deliveries: advance the cursor past them and
            # drop any checkpointed out-of-order copies it now covers.
            if cursor > reliable.next_expected:
                reliable.adopt_base(cursor)
        return True

    # -- handshake ------------------------------------------------------- #

    def _send_report(self) -> None:
        if self.send_control is None:
            return
        reliable = self.pipeline.reliable
        if reliable is not None:
            sack = reliable.sack_info()
            cum_ack, blocks = sack.cum_ack, sack.blocks
        else:
            cum_ack, blocks = 0, ()
        self.send_control(
            ResumeReportPacket(
                epoch=self.epoch,
                peer_epoch=self.sender_epoch,
                cum_ack=cum_ack,
                blocks=blocks,
                cold=self.cold,
            )
        )
        if self._awaiting_echo and self.sim is not None:
            if self._report_timer is not None:
                self._report_timer.cancel()
            self._report_timer = self.sim.schedule(
                self.resume_retry_s, self._report_retry
            )

    def _report_retry(self) -> None:
        self._report_timer = None
        if self._stopped or not self._awaiting_echo:
            return
        self._send_report()

    def on_control(self, packet: Any) -> None:
        """Handle a ResumePacket arriving on a forward channel."""
        if not isinstance(packet, ResumePacket):
            return
        if packet.epoch < self.sender_epoch:
            self.stale_resumes += 1
            return
        fresh_sender = packet.epoch > self.sender_epoch
        self.sender_epoch = packet.epoch
        if packet.peer_epoch >= self.epoch and self._awaiting_echo:
            self._awaiting_echo = False
            if self._report_timer is not None:
                self._report_timer.cancel()
                self._report_timer = None
        if fresh_sender:
            self._flush_stale()
            if packet.state is not None:
                self._adopt(packet.state)
        if self.cold and packet.base_rseq >= 0:
            reliable = self.pipeline.reliable
            if reliable is not None:
                # No history at all: accept the sender's replay base as
                # our cursor — cold resync delivers FIFO from here
                # (Theorem 5.1); exactly-once holds from this point, not
                # across the lost history.
                reliable.adopt_base(packet.base_rseq)
                self.cold = False
        # Always answer: the sender retries its announce until this report
        # echoes its epoch.
        self._send_report()

    def _flush_stale(self) -> None:
        """Drop buffered data from the dead sender incarnation."""
        reseq = self.pipeline.resequencer
        buffers = getattr(reseq, "buffers", None)
        if buffers is None:
            return
        count = 0
        for buf in buffers:
            count += len(buf)
            buf.clear()
        if hasattr(reseq, "_buffered"):
            reseq._buffered = 0
        self.stale_flushed += count

    def _adopt(self, state: Any) -> None:
        """Warm-adopt the restarted sender's kernel state as our mirror."""
        reseq = self.pipeline.resequencer
        adopt = getattr(reseq, "adopt_snapshot", None)
        if adopt is not None:
            adopt(state)
            self.adoptions += 1
            return
        restore = getattr(reseq, "restore", None)
        if restore is not None:
            try:
                restore(state)
                self.adoptions += 1
            except (TypeError, ValueError, AttributeError):
                pass  # marker-free / stateless receivers need no mirror
