"""Simplified TCP — the measurement driver of the paper's section 6.2.

The paper measured "application level" throughput of "a sending program
which sent a random mixture of small and large packets to the receiving
program ... over a TCP connection".  What matters for reproducing
Figure 15 is TCP's *reaction to reordering and loss*:

* cumulative ACKs — out-of-order arrival generates duplicate ACKs;
* fast retransmit on 3 dup-ACKs — persistent reordering (the
  "no resequencing" ablation) triggers spurious retransmissions and
  congestion-window collapse;
* AIMD congestion control with slow start and RTO backoff — drops at the
  striper input queue or NIC ring translate into reduced offered load.

This implementation is deliberately small (no SACK, no delayed ACKs, no
window scaling — none of which the paper's 1996 NetBSD stack had either)
but is a real sliding-window protocol: every byte of goodput counted by
the experiments was carried in a data segment, acknowledged, and if
necessary retransmitted.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.net.addresses import IPAddress
from repro.net.ip import IPPacket, PROTO_TCP
from repro.net.stack import Stack
from repro.sim.engine import Event, Simulator

TCP_HEADER_BYTES = 20

FLAG_SYN = "SYN"
FLAG_ACK = "ACK"
FLAG_FIN = "FIN"

_segment_ids = itertools.count(1)


@dataclass
class TcpSegment:
    """A TCP segment; payload bytes are synthetic (size only).

    In *message mode* (see :meth:`BulkSender.write_message`) ``chunks``
    carries ``(message, byte_count)`` pairs — the pieces of application
    messages this segment's bytes represent, so the receiver can rebuild
    message boundaries from the in-order byte stream.
    """

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: frozenset
    payload_size: int = 0
    chunks: Optional[tuple] = None
    uid: int = field(default_factory=lambda: next(_segment_ids))

    @property
    def size(self) -> int:
        return TCP_HEADER_BYTES + self.payload_size

    def has(self, flag: str) -> bool:
        return flag in self.flags

    def __repr__(self) -> str:
        flags = ",".join(sorted(self.flags)) or "-"
        return (
            f"TcpSegment({self.src_port}->{self.dst_port} seq={self.seq} "
            f"ack={self.ack} [{flags}] {self.payload_size}B)"
        )


class TcpLayer:
    """Registers as protocol 6 on a stack; demuxes segments by port."""

    def __init__(self, stack: Stack, sim: Simulator) -> None:
        self.stack = stack
        self.sim = sim
        self.endpoints: Dict[int, Any] = {}
        stack.register_protocol(PROTO_TCP, self._input)

    def register(self, port: int, endpoint: Any) -> None:
        if port in self.endpoints:
            raise ValueError(f"TCP port {port} already in use on {self.stack.name}")
        self.endpoints[port] = endpoint

    def _input(self, packet: IPPacket, interface: Any) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return
        endpoint = self.endpoints.get(segment.dst_port)
        if endpoint is not None:
            endpoint.on_segment(segment, packet.src)

    def send_segment(
        self, segment: TcpSegment, dst: IPAddress, src: Optional[IPAddress] = None
    ) -> bool:
        source = src if src is not None else self.stack.local_addresses()[0]
        packet = IPPacket(src=source, dst=dst, proto=PROTO_TCP, payload=segment)
        return self.stack.ip_output(packet)


@dataclass
class _FlightRecord:
    seq: int
    length: int
    sent_time: float
    retransmitted: bool = False
    chunks: Optional[tuple] = None

    @property
    def end(self) -> int:
        return self.seq + self.length


class BulkSender:
    """A backlogged TCP sender (one direction).

    Args:
        layer: the local stack's TCP layer.
        dst / dst_port: the receiver.
        src_port: local port.
        mss: maximum segment payload.
        segment_size_fn: generator of application message sizes (bytes per
            segment, clipped to mss).  Default: always ``mss``.  This is
            how the paper's "random mixture of small and large packets"
            and the adversarial alternating workload enter the system.
        total_bytes: stop after this many payload bytes (None = unbounded).
        src_ip: source address override (useful with multiple interfaces).
    """

    INITIAL_RTO = 1.0
    MIN_RTO = 0.2
    MAX_RTO = 60.0
    DUPACK_THRESHOLD = 3

    def __init__(
        self,
        layer: TcpLayer,
        dst: IPAddress | str,
        dst_port: int,
        src_port: int,
        mss: int = 1460,
        segment_size_fn: Optional[Callable[[], int]] = None,
        total_bytes: Optional[int] = None,
        src_ip: Optional[IPAddress | str] = None,
        initial_cwnd_segments: int = 2,
    ) -> None:
        self.layer = layer
        self.sim = layer.sim
        self.dst = IPAddress.parse(dst)
        self.dst_port = dst_port
        self.src_port = src_port
        self.src_ip = IPAddress.parse(src_ip) if src_ip is not None else None
        self.mss = mss
        self.segment_size_fn = segment_size_fn
        self.total_bytes = total_bytes
        layer.register(src_port, self)

        self.state = "CLOSED"
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = float(initial_cwnd_segments * mss)
        self.ssthresh = 64 * 1024.0
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0
        self.flight: List[_FlightRecord] = []
        #: records awaiting retransmission (go-back-N after an RTO)
        self._rexmit_pending: List[_FlightRecord] = []
        self.rto = self.INITIAL_RTO
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._timer: Optional[Event] = None
        self._next_payload: Optional[int] = None
        #: message mode (transport-channel striping): queued application
        #: messages, each entry [obj, total_size, remaining_bytes]
        self._msg_queue: Deque[list] = deque()
        self._message_mode = False
        #: invoked after ACK processing when message mode may accept more
        self.on_writable: Optional[Callable[[], None]] = None

        # stats
        self.segments_sent = 0
        self.bytes_sent = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.egress_drops = 0

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Open the connection (SYN) and start pumping data."""
        if self.state != "CLOSED":
            raise RuntimeError("sender already started")
        self.state = "SYN_SENT"
        self._transmit(
            TcpSegment(
                self.src_port, self.dst_port, seq=0, ack=0,
                flags=frozenset({FLAG_SYN}),
            )
        )
        self._arm_timer()

    @property
    def bytes_in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------ #
    # message mode (the paper's §2 "transport connection as a channel")

    def write_message(self, obj: Any, size: int) -> None:
        """Queue an application message of ``size`` bytes for the stream.

        Messages are packed into segments back to back; the receiver
        reconstructs boundaries from the chunk annotations, giving a
        reliable, FIFO *message* channel — usable as a striping channel.
        """
        if size <= 0:
            raise ValueError("message size must be positive")
        if self.segment_size_fn is not None:
            raise RuntimeError("message mode conflicts with segment_size_fn")
        self._message_mode = True
        self._msg_queue.append([obj, size, size])
        self.try_send()

    @property
    def queued_message_bytes(self) -> int:
        return sum(entry[2] for entry in self._msg_queue)

    @property
    def queued_messages(self) -> int:
        return len(self._msg_queue)

    def _payload_budget_left(self) -> bool:
        if self._message_mode:
            return bool(self._msg_queue)
        if self.total_bytes is None:
            return True
        return self.snd_nxt < self.total_bytes

    def _next_segment_size(self) -> int:
        if self._next_payload is None:
            if self.segment_size_fn is not None:
                size = int(self.segment_size_fn())
            else:
                size = self.mss
            size = max(1, min(size, self.mss))
            if self.total_bytes is not None:
                size = min(size, self.total_bytes - self.snd_nxt)
            self._next_payload = size
        return self._next_payload

    def try_send(self) -> None:
        """Send segments while the congestion window allows.

        Pending retransmissions (go-back-N after a timeout) take priority
        over new data; retransmitted bytes are already inside
        ``bytes_in_flight``, so the budget check uses a pipe estimate that
        counts only data at or beyond the first retransmission point.
        """
        if self.state != "ESTABLISHED":
            return
        while self._rexmit_pending:
            record = self._rexmit_pending[0]
            if record.end <= self.snd_una:
                self._rexmit_pending.pop(0)  # already acked meanwhile
                continue
            pipe = self._rexmit_pipe()
            if pipe + record.length > self.cwnd:
                return
            self._rexmit_pending.pop(0)
            self._retransmit(record)
        while self._payload_budget_left():
            if self.in_recovery:
                # Conservative recovery: no new data until the holes are
                # repaired (partial ACKs drive the retransmissions).
                break
            chunks: Optional[tuple] = None
            if self._message_mode:
                size, chunks = self._pack_message_segment()
            else:
                size = self._next_segment_size()
            if size <= 0:
                break
            if self.bytes_in_flight + size > self.cwnd:
                if self._message_mode:
                    self._unpack_message_segment(chunks)
                break
            self._next_payload = None
            record = _FlightRecord(
                self.snd_nxt, size, self.sim.now, chunks=chunks
            )
            self.flight.append(record)
            self.snd_nxt += size
            self._transmit(
                TcpSegment(
                    self.src_port, self.dst_port,
                    seq=record.seq, ack=0,
                    flags=frozenset({FLAG_ACK}),
                    payload_size=size,
                    chunks=chunks,
                )
            )
            self.segments_sent += 1
            self.bytes_sent += size
        if self.flight and self._timer is None:
            self._arm_timer()

    def _pack_message_segment(self) -> tuple:
        """Consume queued message bytes into one segment (up to MSS)."""
        chunks: List[tuple] = []
        size = 0
        while self._msg_queue and size < self.mss:
            entry = self._msg_queue[0]
            take = min(entry[2], self.mss - size)
            chunks.append((entry[0], take))
            entry[2] -= take
            size += take
            if entry[2] == 0:
                self._msg_queue.popleft()
        return size, tuple(chunks)

    def _unpack_message_segment(self, chunks: Optional[tuple]) -> None:
        """Put consumed chunks back (the window refused the segment)."""
        if not chunks:
            return
        for obj, nbytes in reversed(chunks):
            if self._msg_queue and self._msg_queue[0][0] is obj:
                self._msg_queue[0][2] += nbytes
            else:
                total = getattr(obj, "size", nbytes)
                self._msg_queue.appendleft([obj, total, nbytes])

    # ------------------------------------------------------------------ #
    # segment input

    def on_segment(self, segment: TcpSegment, src: IPAddress) -> None:
        if segment.has(FLAG_SYN) and segment.has(FLAG_ACK):
            if self.state == "SYN_SENT":
                self.state = "ESTABLISHED"
                self._cancel_timer()
                self.rto = self.INITIAL_RTO
                # complete handshake
                self._transmit(
                    TcpSegment(
                        self.src_port, self.dst_port, seq=0,
                        ack=0, flags=frozenset({FLAG_ACK}),
                    )
                )
                self.try_send()
            return
        if not segment.has(FLAG_ACK):
            return
        self._on_ack(segment.ack)

    def _on_ack(self, ack: int) -> None:
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            self._remove_acked(ack)
            self.dupacks = 0
            if self.in_recovery:
                if ack >= self.recover_point:
                    # Full ACK: deflate to ssthresh and leave recovery.
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # NewReno partial ACK: the next hole is known lost —
                    # retransmit it immediately instead of waiting for RTO.
                    self._retransmit_first()
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd += min(acked, self.mss)  # slow start
                else:
                    self.cwnd += (self.mss * self.mss) / self.cwnd
            self._cancel_timer()
            if self.flight:
                self._arm_timer()
            else:
                self.rto = max(self.MIN_RTO, self._computed_rto())
            self.try_send()
            if self.on_writable is not None:
                self.on_writable()
        elif ack == self.snd_una and self.flight:
            self.dupacks += 1
            if self.dupacks == self.DUPACK_THRESHOLD and not self.in_recovery:
                self._fast_retransmit()
        # acks below snd_una: stale, ignore (reordered ACK path)

    def _remove_acked(self, ack: int) -> None:
        kept: List[_FlightRecord] = []
        for record in self.flight:
            if record.end <= ack:
                if not record.retransmitted:
                    self._rtt_sample(self.sim.now - record.sent_time)
            else:
                kept.append(record)
        self.flight = kept

    # ------------------------------------------------------------------ #
    # loss recovery

    def _rexmit_pipe(self) -> int:
        """Unacked bytes believed in the network during go-back-N recovery."""
        pending = {id(r) for r in self._rexmit_pending}
        return sum(
            r.length
            for r in self.flight
            if id(r) not in pending and r.end > self.snd_una
        )

    def _fast_retransmit(self) -> None:
        self.fast_retransmits += 1
        flight = max(self.bytes_in_flight, self.mss)
        self.ssthresh = max(flight / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        self.in_recovery = True
        self.recover_point = self.snd_nxt
        self._retransmit_first()

    def _retransmit_first(self) -> None:
        if not self.flight:
            return
        self._retransmit(self.flight[0])

    def _retransmit(self, record: _FlightRecord) -> None:
        self.retransmits += 1
        record.retransmitted = True
        record.sent_time = self.sim.now
        self._transmit(
            TcpSegment(
                self.src_port, self.dst_port,
                seq=record.seq, ack=0,
                flags=frozenset({FLAG_ACK}),
                payload_size=record.length,
                chunks=record.chunks,
            )
        )

    def _on_timeout(self) -> None:
        self._timer = None
        if self.state == "SYN_SENT":
            self._transmit(
                TcpSegment(
                    self.src_port, self.dst_port, seq=0, ack=0,
                    flags=frozenset({FLAG_SYN}),
                )
            )
            self.rto = min(self.rto * 2, self.MAX_RTO)
            self._arm_timer()
            return
        if not self.flight:
            return
        self.timeouts += 1
        flight = max(self.bytes_in_flight, self.mss)
        self.ssthresh = max(flight / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self.dupacks = 0
        self.in_recovery = False
        # Go-back-N: everything unacked becomes eligible for retransmission
        # (BSD sets snd_nxt back to snd_una; we keep the original segment
        # boundaries and replay them as the window reopens).
        self._rexmit_pending = list(self.flight)
        self.try_send()  # retransmits the head within cwnd = 1 MSS
        self.rto = min(self.rto * 2, self.MAX_RTO)
        self._arm_timer()

    # ------------------------------------------------------------------ #
    # timers and RTT

    def _rtt_sample(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            assert self.rttvar is not None
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = max(self.MIN_RTO, min(self._computed_rto(), self.MAX_RTO))

    def _computed_rto(self) -> float:
        if self.srtt is None:
            return self.INITIAL_RTO
        assert self.rttvar is not None
        return self.srtt + 4 * self.rttvar

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(self.rto, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _transmit(self, segment: TcpSegment) -> None:
        ok = self.layer.send_segment(segment, self.dst, src=self.src_ip)
        if not ok:
            self.egress_drops += 1


class BulkReceiver:
    """The receiving endpoint: cumulative ACKs, out-of-order buffering.

    ``on_message`` (message mode) receives the application messages the
    sender queued with :meth:`BulkSender.write_message`, reconstructed in
    exact stream order from the chunk annotations.
    """

    def __init__(
        self,
        layer: TcpLayer,
        port: int,
        on_message: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.layer = layer
        self.sim = layer.sim
        self.port = port
        layer.register(port, self)
        self.on_message = on_message
        self._assembling: Any = None
        self._assembled = 0
        self.messages_delivered = 0
        self.rcv_nxt = 0
        self.ooo: Dict[int, tuple] = {}  # seq -> (length, chunks)
        self.established = False
        # stats
        self.bytes_delivered = 0
        self.segments_received = 0
        self.ooo_segments = 0
        self.duplicate_segments = 0
        self.acks_sent = 0
        self.max_seq_seen = -1
        self.reorder_events = 0
        self.peer: Optional[IPAddress] = None
        self.peer_port: Optional[int] = None

    def on_segment(self, segment: TcpSegment, src: IPAddress) -> None:
        self.peer = src
        self.peer_port = segment.src_port
        if segment.has(FLAG_SYN):
            self.established = True
            self._send_ack(src, segment.src_port, syn_ack=True)
            return
        if segment.payload_size <= 0:
            return  # bare ACK (handshake completion)
        self.segments_received += 1
        if segment.seq < self.max_seq_seen:
            self.reorder_events += 1
        self.max_seq_seen = max(self.max_seq_seen, segment.seq)

        if segment.seq == self.rcv_nxt:
            self.rcv_nxt += segment.payload_size
            self.bytes_delivered += segment.payload_size
            self._consume_chunks(segment.chunks)
            while self.rcv_nxt in self.ooo:
                length, chunks = self.ooo.pop(self.rcv_nxt)
                self.rcv_nxt += length
                self.bytes_delivered += length
                self._consume_chunks(chunks)
        elif segment.seq > self.rcv_nxt:
            self.ooo_segments += 1
            self.ooo.setdefault(
                segment.seq, (segment.payload_size, segment.chunks)
            )
        else:
            self.duplicate_segments += 1
        self._send_ack(src, segment.src_port)

    def _consume_chunks(self, chunks: Optional[tuple]) -> None:
        """Advance message reassembly with the in-order bytes just accepted."""
        if not chunks:
            return
        for obj, nbytes in chunks:
            if obj is not self._assembling:
                self._assembling = obj
                self._assembled = 0
            self._assembled += nbytes
            total = getattr(obj, "size", self._assembled)
            if self._assembled >= total:
                self._assembling = None
                self._assembled = 0
                self.messages_delivered += 1
                if self.on_message is not None:
                    self.on_message(obj)

    def _send_ack(self, dst: IPAddress, dst_port: int, syn_ack: bool = False) -> None:
        flags = frozenset({FLAG_SYN, FLAG_ACK}) if syn_ack else frozenset({FLAG_ACK})
        segment = TcpSegment(
            src_port=self.port, dst_port=dst_port,
            seq=0, ack=self.rcv_nxt, flags=flags,
        )
        self.acks_sent += 1
        self.layer.send_segment(segment, dst)
