"""Channel-health machinery: failure detection, lifecycle, stall watch.

Split out of :mod:`repro.transport.endpoint` by the synchronization-model
refactor: none of these classes depends on how the endpoint synchronizes
(markers, hashes, or headers), only on per-channel arrival/progress
signals, so they live below the sync-model layer.

* :class:`ChannelFailureDetector` — receiver-side silence watchdog.
* :class:`ChannelLifecycleManager` — the full
  ``active -> failed -> probing -> revived`` state machine with flap
  damping (PR 4).
* :class:`SenderHealthMonitor` — sender-side queue-stall and
  credit-starvation watch.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence


class ChannelFailureDetector:
    """Receiver-side dead-channel watchdog, transport-agnostic.

    Every ``check_interval`` seconds it compares per-channel arrival
    times; a channel that saw nothing for ``silence_threshold`` seconds
    while the others progressed is declared dead and reported through the
    bound failure callback — a session receiver reconfigures the sender,
    a plain pipeline writes the channel off so delivery keeps flowing.
    """

    def __init__(
        self,
        sim: Any,
        silence_threshold: float = 0.25,
        check_interval: float = 0.05,
    ) -> None:
        self.sim = sim
        self.silence_threshold = silence_threshold
        self.check_interval = check_interval
        self.receiver: Any = None
        self.last_arrival: List[float] = []
        self.failed: set = set()
        self.failures_reported: List[int] = []
        self._on_failure: Optional[Callable[[int], Any]] = None
        self._on_revival: Optional[Callable[[int], Any]] = None
        self._active: Optional[Callable[[], Sequence[int]]] = None
        self._started = False

    def bind(
        self,
        n_channels: int,
        on_failure: Callable[[int], Any],
        active_channels: Optional[Callable[[], Sequence[int]]] = None,
        on_revival: Optional[Callable[[int], Any]] = None,
    ) -> None:
        """Generic wiring: watch ``n_channels``, report via ``on_failure``.

        ``active_channels`` yields the channel set currently expected to
        carry traffic (a session's live subset); by default every channel
        not yet declared failed.  ``on_revival`` is stored for lifecycle
        subclasses; the fail-only detector never invokes it.
        """
        self.last_arrival = [0.0] * n_channels
        self._on_failure = on_failure
        self._on_revival = on_revival
        if active_channels is None:
            active_channels = lambda: [  # noqa: E731
                i for i in range(n_channels) if i not in self.failed
            ]
        self._active = active_channels

    def attach(self, receiver: Any) -> None:
        """Session-receiver wiring (compatibility surface).

        The receiver must expose ``n_ports``, ``request_drop_channel`` and
        ``session.config.active_channels``.
        """
        self.receiver = receiver
        self.bind(
            receiver.n_ports,
            receiver.request_drop_channel,
            lambda: receiver.session.config.active_channels,
        )

    def note_arrival(self, port_index: int) -> None:
        if not 0 <= port_index < len(self.last_arrival):
            # A negative index would silently alias last_arrival[-1] and an
            # oversized one would vanish — both are wiring bugs upstream.
            raise ValueError(
                f"arrival on port {port_index}, but the detector watches "
                f"{len(self.last_arrival)} channels (was bind() called?)"
            )
        self.last_arrival[port_index] = self.sim.now
        if not self._started:
            self._started = True
            self.sim.schedule(self.check_interval, self._check)

    def _check(self) -> None:
        if self._on_failure is None or self._active is None:
            return
        now = self.sim.now
        active = list(self._active())
        alive = [
            i
            for i in active
            if now - self.last_arrival[i] < self.silence_threshold
        ]
        if alive and len(alive) < len(active):
            for index in active:
                if index not in alive and index not in self.failed:
                    self.failed.add(index)
                    self.failures_reported.append(index)
                    self._on_failure(index)
        self.sim.schedule(self.check_interval, self._check)

    def note_suspect(self, channel: int) -> None:
        """An external signal suspects ``channel`` (ARQ max-retry
        escalation: a packet that keeps dying on one channel looks
        exactly like that channel dying).

        Declares the channel failed through the same path a silence
        detection would, once; lifecycle subclasses then run their
        normal probing/revival machinery on it.
        """
        if self._on_failure is None:
            raise ValueError(
                f"suspect on channel {channel}, but the detector is not "
                "bound (was bind() called?)"
            )
        if not 0 <= channel < len(self.last_arrival):
            raise ValueError(
                f"suspect on channel {channel}, but the detector watches "
                f"{len(self.last_arrival)} channels"
            )
        if channel in self.failed:
            return
        self.failed.add(channel)
        self.failures_reported.append(channel)
        self._on_failure(channel)


class ChannelLifecycleManager(ChannelFailureDetector):
    """Full channel lifecycle: ``active -> failed -> probing -> revived``.

    Generalizes the fail-only watchdog.  A failed channel that shows signs
    of life again (sender probes, or data arrivals from stale in-flight
    packets) moves to ``probing``; once it has produced
    ``revival_arrivals`` arrivals *and* its hold-down has elapsed it is
    declared ``revived`` — the bound revival callback re-admits it (a plain
    pipeline un-fails its resequencer; a session receiver acknowledges the
    sender's probes so the sender rejoins the channel via a RESET).

    Flap damping: each failure that follows a revival within
    ``flap_window`` seconds doubles the channel's hold-down (capped at
    ``max_down_time``), so an intermittent link is re-admitted ever more
    reluctantly instead of thrashing the bundle with resets.
    """

    #: lifecycle states, as stored in :attr:`state`
    ACTIVE = "active"
    FAILED = "failed"
    PROBING = "probing"
    REVIVED = "revived"

    def __init__(
        self,
        sim: Any,
        silence_threshold: float = 0.25,
        check_interval: float = 0.05,
        *,
        revival_arrivals: int = 2,
        min_down_time: float = 0.2,
        flap_window: float = 2.0,
        flap_factor: float = 2.0,
        max_down_time: float = 5.0,
    ) -> None:
        super().__init__(sim, silence_threshold, check_interval)
        if revival_arrivals < 1:
            raise ValueError("revival_arrivals must be >= 1")
        self.revival_arrivals = revival_arrivals
        self.min_down_time = min_down_time
        self.flap_window = flap_window
        self.flap_factor = flap_factor
        self.max_down_time = max_down_time
        self.state: List[str] = []
        self.revivals_reported: List[int] = []
        self.flap_counts: List[int] = []
        self._failed_at: List[float] = []
        self._life_seen: List[int] = []
        self._hold_down: List[float] = []
        self._revived_at: List[float] = []

    def bind(
        self,
        n_channels: int,
        on_failure: Callable[[int], Any],
        active_channels: Optional[Callable[[], Sequence[int]]] = None,
        on_revival: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self._user_on_failure = on_failure
        super().bind(
            n_channels, self._note_failure, active_channels, on_revival
        )
        self.state = [self.ACTIVE] * n_channels
        self.flap_counts = [0] * n_channels
        self._failed_at = [0.0] * n_channels
        self._life_seen = [0] * n_channels
        self._hold_down = [self.min_down_time] * n_channels
        self._revived_at = [float("-inf")] * n_channels

    def attach(self, receiver: Any) -> None:
        super().attach(receiver)
        # Let the session receiver consult us when sender probes arrive
        # (gating the ProbeAck behind hold-down + revival threshold) and
        # tell us when a rejoin RESET re-activates a channel.
        session = getattr(receiver, "session", None)
        if session is not None and hasattr(session, "lifecycle"):
            session.lifecycle = self

    def channel_state(self, channel: int) -> str:
        return self.state[channel]

    def hold_down(self, channel: int) -> float:
        """Current flap-damped hold-down of ``channel``, in seconds."""
        return self._hold_down[channel]

    # -- failure path -------------------------------------------------- #

    def _note_failure(self, channel: int) -> None:
        now = self.sim.now
        self.state[channel] = self.FAILED
        self._failed_at[channel] = now
        self._life_seen[channel] = 0
        if now - self._revived_at[channel] < self.flap_window:
            # Flapping: it died again right after we let it back in.
            self.flap_counts[channel] += 1
            self._hold_down[channel] = min(
                self._hold_down[channel] * self.flap_factor,
                self.max_down_time,
            )
        else:
            self._hold_down[channel] = self.min_down_time
        self._user_on_failure(channel)

    # -- revival path -------------------------------------------------- #

    def note_arrival(self, port_index: int) -> None:
        """Every physical arrival — data, marker, or probe — is a life sign.

        On a failed channel, arrivals move it to ``probing`` and count
        toward the revival threshold; revival itself fires here too, so a
        plain pipeline (no probes) still revives on returning data.
        """
        super().note_arrival(port_index)
        if self.state and self.state[port_index] in (
            self.FAILED,
            self.PROBING,
        ):
            self.state[port_index] = self.PROBING
            self._life_seen[port_index] += 1
            self._try_revive(port_index)

    def note_probe(self, port_index: int) -> bool:
        """Should a sender probe on ``port_index`` be acknowledged?

        Life signals are counted by :meth:`note_arrival` (the transport
        reports every arrival, probes included); this method only
        *evaluates* the channel's standing — and performs the revival
        transition when the threshold and hold-down have been cleared.
        Returns True when the probe should be acknowledged.
        """
        if not 0 <= port_index < len(self.state):
            raise ValueError(
                f"probe on port {port_index}, but the lifecycle manager "
                f"watches {len(self.state)} channels (was bind() called?)"
            )
        self.last_arrival[port_index] = self.sim.now
        if self.state[port_index] in (self.ACTIVE, self.REVIVED):
            return True
        return self._try_revive(port_index)

    def note_rejoin(self, active_channels: Sequence[int]) -> None:
        """A reconfiguration re-activated channels (rejoin RESET installed).

        Rearms silence detection for every re-admitted channel: clears the
        ``failed`` latch (so a second death is reported again) and resets
        its arrival clock (its ``last_arrival`` is stale from the outage,
        which would otherwise re-fail it on the next check).
        """
        now = self.sim.now
        for channel in active_channels:
            if channel in self.failed or self.state[channel] != self.ACTIVE:
                self.failed.discard(channel)
                self.last_arrival[channel] = now
                if self.state[channel] != self.REVIVED:
                    self._revived_at[channel] = now
                self.state[channel] = self.ACTIVE

    def _try_revive(self, channel: int) -> bool:
        now = self.sim.now
        if self._life_seen[channel] < self.revival_arrivals:
            return False
        if now - self._failed_at[channel] < self._hold_down[channel]:
            return False  # hysteresis: not convinced yet, keep damping
        self.state[channel] = self.REVIVED
        self.revivals_reported.append(channel)
        self._revived_at[channel] = now
        self.failed.discard(channel)
        if self._on_revival is not None:
            self._on_revival(channel)
        return True


class SenderHealthMonitor:
    """Sender-side channel health: queue-stall and credit-starvation watch.

    The receiver-side detector sees silence; the sender sees *backpressure*.
    Every ``check_interval`` seconds each port is examined: a port that is
    blocked (its transmit queue full, or its FCVC credit exhausted) and
    makes no drain progress for ``stall_timeout`` seconds while traffic is
    pending is declared stalled and reported through the bound callback —
    a session sender excludes the channel via a reconfiguration RESET
    without waiting for the receiver to notice the silence.
    """

    def __init__(
        self,
        sim: Any,
        stall_timeout: float = 0.25,
        check_interval: float = 0.05,
    ) -> None:
        self.sim = sim
        self.stall_timeout = stall_timeout
        self.check_interval = check_interval
        self.stalled: set = set()
        self.stalls_reported: List[int] = []
        self._ports: List[Any] = []
        self._on_stall: Optional[Callable[[int], Any]] = None
        self._credit: Any = None
        self._backlog: Callable[[], int] = lambda: 1
        self._last_progress: List[float] = []
        self._last_queue: List[int] = []
        self._last_drained: List[int] = []

    def bind(
        self,
        ports: Sequence[Any],
        on_stall: Callable[[int], Any],
        *,
        credit: Any = None,
        backlog_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        """Watch ``ports``; report stalled port indices via ``on_stall``.

        ``credit`` (a :class:`~repro.transport.credit.CreditSender`) adds
        credit starvation as a blocking condition; ``backlog_fn`` reports
        pending traffic (no backlog means an idle sender, never a stall).
        """
        self._ports = list(ports)
        self._on_stall = on_stall
        self._credit = credit
        if backlog_fn is not None:
            self._backlog = backlog_fn
        now = self.sim.now
        self._last_progress = [now] * len(self._ports)
        self._last_queue = [port.queue_length for port in self._ports]
        self._last_drained = [
            getattr(port, "drained", 0) for port in self._ports
        ]
        self.sim.schedule(self.check_interval, self._check)

    def clear(self, port_index: int) -> None:
        """Forget a stall (the channel was reset/revived); re-arm the watch."""
        self.stalled.discard(port_index)
        self._last_progress[port_index] = self.sim.now

    def _check(self) -> None:
        now = self.sim.now
        backlogged = self._backlog() > 0
        for i, port in enumerate(self._ports):
            qlen = port.queue_length
            blocked = not port.can_accept()
            if (
                self._credit is not None
                and self._credit.available(i) <= 0
            ):
                blocked = True
            drained = getattr(port, "drained", None)
            if drained is not None:
                # Transmission completions are the real progress signal: a
                # saturated queue sits at its limit between checks even
                # while frames flow through it.
                progressed = drained > self._last_drained[i]
                self._last_drained[i] = drained
            else:
                progressed = qlen < self._last_queue[i]
            self._last_queue[i] = qlen
            # Traffic is pending if the pipeline has backlog *or* this
            # port itself still holds undrained packets.
            if progressed or not blocked or not (backlogged or qlen > 0):
                self._last_progress[i] = now
            elif (
                i not in self.stalled
                and now - self._last_progress[i] >= self.stall_timeout
            ):
                self.stalled.add(i)
                self.stalls_reported.append(i)
                assert self._on_stall is not None
                self._on_stall(i)
        self.sim.schedule(self.check_interval, self._check)
