"""Proactive FEC recovery over the striped bundle (fec / hybrid modes).

The third recovery strategy next to quasi-FIFO resync and selective-repeat
ARQ: the sender groups every ``k`` submitted data packets into a *stripe
group*, encodes ``m`` parity packets over the group with a systematic
erasure code (:mod:`repro.core.fec`), and stripes the parity through the
same SRR kernel as data.  The receiver reconstructs up to ``m`` lost group
members locally — no retransmission, no extra RTT.

Layering (sender)::

    submit -> FecSender -> [ReliableSender (hybrid only)] -> striper
                  \\------- parity ----------------------/

``FecSender`` hands each data packet to its downstream *first* (in hybrid
mode that is :meth:`ReliableSender.submit`, which stamps ``rseq``
synchronously even when the window parks the packet), then serializes the
packet into a byte shard.  When the group reaches ``k`` shards — or a seal
timeout fires on a partially filled group — parity is encoded and
submitted through the pipeline's raw stripe path.  Parity deliberately
*bypasses* the ARQ layer: it is expendable redundancy, never
retransmitted, and carries no ``rseq``.  It does **not** bypass the
striper — parity must flow through ``assign_many`` like any burst so the
receiver's simulated SRR stays causally consistent and so placement
rotates across weighted channels exactly as the kernel's deficit counters
dictate (the memec ``StripeList`` discipline: no channel absorbs all
redundancy, and Theorem 3.2's envelope covers data + parity combined).

Layering (receiver)::

    sync model -> FecReceiver -> [ReliableReceiver (hybrid)] -> delivery
                              -> fseq resequencing (pure fec) -> delivery

Data packets pass straight through (hybrid: into the ARQ receiver, whose
``rseq`` cursor dedups late retransmits of packets FEC already repaired);
their shard bytes are cached until the group resolves.  Parity packets
carry the group geometry (base ``fseq``, member count, parity index) and
are consumed here.  As soon as ``missing <= surviving parity`` the group
decodes and the missing members are synthesized — fresh uids,
``synthesized=True`` (a :class:`~repro.core.packet.PacketPool` refuses
them), original ``seq``/``rseq``/payload restored bit-exact.

Unrecoverable groups (erasures exceed surviving parity at the group
timeout) resolve to ARQ in hybrid mode — the SACK holes are still open, so
the normal PR-5 machinery retransmits — and count toward an escalation
hook: ``escalate_after`` *consecutive* failed groups fire ``on_escalate``,
the bridge into the PR-4 lifecycle for persistent-loss regimes FEC cannot
absorb.  In pure fec mode the receiver resequences by ``fseq`` itself and
a gap-skip timer (same ``group_timeout_s``) abandons unrecoverable
positions, keeping delivery live under loss heavier than ``m`` covers.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from ..core.fec import FecCodec, FecDecodeError, make_codec
from ..core.packet import Codepoint, Packet, _packet_ids

__all__ = [
    "FecReceiver",
    "FecReceiverStats",
    "FecSender",
    "FecSenderStats",
    "PARITY_HEADER_BYTES",
    "ParityPacket",
    "packet_from_shard",
    "shard_for",
]


# --------------------------------------------------------------------- #
# shard serialization
#
# A shard is the byte image of one data packet: a fixed header (size,
# seq, rseq, payload length) plus the payload bytes.  Sender and receiver
# compute shards with the same function from the same fields, so the
# receiver's cached shards are bit-identical to what the sender encoded —
# the property the whole scheme rests on.  ``label``/``flow`` are
# simulation-side annotations and are not carried through reconstruction.

_SHARD_HEADER = struct.Struct("!IqqI")

#: accounting size of the per-parity-packet metadata (group, members,
#: index, nparity, shard_len — five u32/u16 fields plus codepoint tag)
PARITY_HEADER_BYTES = 24


def shard_for(packet: Any) -> bytes:
    """The byte shard encoding ``packet`` for parity arithmetic."""
    payload = packet.payload
    if payload is None:
        body = b""
    elif isinstance(payload, (bytes, bytearray, memoryview)):
        body = bytes(payload)
    else:
        raise TypeError(
            "FEC modes require bytes payloads (or None); got "
            f"{type(payload).__name__} — serialize upper-layer objects "
            "before submit"
        )
    seq = -1 if packet.seq is None else packet.seq
    rseq = -1 if packet.rseq is None else packet.rseq
    return _SHARD_HEADER.pack(packet.size, seq, rseq, len(body)) + body


def packet_from_shard(shard: bytes, fseq: int) -> Packet:
    """Rebuild the data packet a (possibly padded) shard encodes.

    The result is marked ``synthesized`` and carries a fresh ``uid`` —
    it is a new logical packet standing in for one that was lost.
    """
    size, seq, rseq, body_len = _SHARD_HEADER.unpack_from(shard)
    offset = _SHARD_HEADER.size
    body = bytes(shard[offset:offset + body_len])
    packet = Packet(
        size=size,
        seq=None if seq < 0 else seq,
        payload=body if body_len else None,
    )
    packet.rseq = None if rseq < 0 else rseq
    packet.fseq = fseq
    packet.synthesized = True
    return packet


@dataclass(slots=True)
class ParityPacket:
    """One parity shard for a stripe group.

    Distinguished from data by codepoint (like markers), so data packets
    stay unmodified.  ``group`` is the ``fseq`` of the group's first data
    packet; ``members`` the number of data shards actually sealed (short
    groups seal by timeout); ``index`` this shard's parity row; ``nparity``
    the group's total parity count; ``shard_len`` the padded shard length
    the group was encoded at.
    """

    group: int
    members: int
    index: int
    nparity: int
    shard_len: int
    payload: bytes
    size: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    codepoint: str = Codepoint.PARITY
    seq: Optional[int] = None
    rseq: Optional[int] = None
    fseq: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            self.size = self.shard_len + PARITY_HEADER_BYTES

    def __repr__(self) -> str:
        return (
            f"Parity(group={self.group}, {self.index + 1}/{self.nparity}, "
            f"k'={self.members}, {self.size}B)"
        )


# --------------------------------------------------------------------- #
# sender


@dataclass
class FecSenderStats:
    groups_sealed: int = 0
    count_sealed: int = 0
    timeout_sealed: int = 0
    data_packets: int = 0
    parity_packets: int = 0
    parity_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class FecSender:
    """Groups submitted data into stripe groups and emits parity.

    Args:
        downstream: per-packet data path (``ReliableSender.submit`` in
            hybrid mode, the pipeline's raw stripe in pure fec).  Called
            *before* the packet is absorbed into a group so ``rseq`` is
            already stamped when the shard is serialized.
        stripe_parity: batch submit for parity packets — the pipeline's
            raw ``_stripe_many``, bypassing ARQ but not the SRR kernel.
        k: data shards per group.
        m: parity shards per group.
        sim: discrete-event engine for the seal timeout (optional; without
            it partial groups seal only on :meth:`flush`).
        seal_timeout_s: how long a partial group may wait for more data
            before sealing short.
        codec: explicit :class:`~repro.core.fec.FecCodec` (overrides
            ``k``/``m``/``numpy``).
        numpy: codec vectorization selector (``False`` | ``True`` |
            ``"auto"``), as :func:`~repro.core.fec.make_codec`.
        downstream_many: optional burst data path (``submit_many``); falls
            back to per-packet ``downstream``.
    """

    def __init__(
        self,
        downstream: Callable[[Any], Any],
        stripe_parity: Callable[[Sequence[Any]], Any],
        *,
        k: int = 6,
        m: int = 2,
        sim: Any = None,
        seal_timeout_s: float = 0.01,
        codec: Optional[FecCodec] = None,
        numpy: Any = False,
        downstream_many: Optional[Callable[[Sequence[Any]], Any]] = None,
    ) -> None:
        self.codec = codec if codec is not None else make_codec(k, m, numpy=numpy)
        self.k = self.codec.k
        self.m = self.codec.m
        self._downstream = downstream
        self._downstream_many = downstream_many
        self._stripe_parity = stripe_parity
        self.sim = sim
        self.seal_timeout_s = seal_timeout_s
        self._next_fseq = 0
        self._group_base = 0
        self._shards: List[bytes] = []
        self._seal_timer: Any = None
        self.stats = FecSenderStats()

    # -- data path ----------------------------------------------------- #

    def submit(self, packet: Any) -> Any:
        """Stamp ``fseq``, forward downstream, absorb into the open group."""
        packet.fseq = self._next_fseq
        self._next_fseq += 1
        result = self._downstream(packet)
        self._absorb(packet)
        return result

    def submit_many(self, packets: Sequence[Any]) -> Any:
        """Burst variant: one downstream batch, then absorb in order."""
        for packet in packets:
            packet.fseq = self._next_fseq
            self._next_fseq += 1
        if self._downstream_many is not None:
            result = self._downstream_many(packets)
        else:
            result = [self._downstream(packet) for packet in packets]
        for packet in packets:
            self._absorb(packet)
        return result

    def _absorb(self, packet: Any) -> None:
        if not self._shards:
            self._group_base = packet.fseq
        self._shards.append(shard_for(packet))
        self.stats.data_packets += 1
        if len(self._shards) >= self.k:
            self._seal(by_timeout=False)
        elif self._seal_timer is None and self.sim is not None:
            self._seal_timer = self.sim.schedule(
                self.seal_timeout_s, self._on_seal_timeout
            )

    def _on_seal_timeout(self) -> None:
        self._seal_timer = None
        if self._shards:
            self._seal(by_timeout=True)

    def flush(self) -> None:
        """Seal the open partial group immediately (end of stream)."""
        if self._shards:
            self._seal(by_timeout=True)

    def _seal(self, *, by_timeout: bool) -> None:
        if self._seal_timer is not None:
            self._seal_timer.cancel()
            self._seal_timer = None
        shards = self._shards
        self._shards = []
        base = self._group_base
        length = max(len(shard) for shard in shards)
        padded = [
            shard if len(shard) == length else shard.ljust(length, b"\x00")
            for shard in shards
        ]
        parity_shards = self.codec.encode(padded)
        parity = [
            ParityPacket(
                group=base,
                members=len(shards),
                index=j,
                nparity=self.m,
                shard_len=length,
                payload=parity_shards[j],
            )
            for j in range(self.m)
        ]
        self.stats.groups_sealed += 1
        if by_timeout:
            self.stats.timeout_sealed += 1
        else:
            self.stats.count_sealed += 1
        self.stats.parity_packets += self.m
        self.stats.parity_bytes += sum(p.size for p in parity)
        self._stripe_parity(parity)


# --------------------------------------------------------------------- #
# receiver


@dataclass
class FecReceiverStats:
    data_packets: int = 0
    parity_packets: int = 0
    reconstructed: int = 0
    groups_resolved: int = 0
    groups_decoded: int = 0
    unrecoverable_groups: int = 0
    duplicate_packets: int = 0
    skipped: int = 0
    escalations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _Group:
    __slots__ = (
        "base", "members", "nparity", "shard_len", "parity", "timer",
        "resolved",
    )

    def __init__(
        self, base: int, members: int, nparity: int, shard_len: int
    ) -> None:
        self.base = base
        self.members = members
        self.nparity = nparity
        self.shard_len = shard_len
        self.parity: Dict[int, bytes] = {}
        self.timer: Any = None
        self.resolved = False


#: resolved groups retained (for late-parity dedup) before eviction
_RESOLVED_RETENTION = 512


class FecReceiver:
    """Reconstructs lost stripe-group members from parity.

    ``ordered=False`` (hybrid): every data packet — received or
    reconstructed — is passed straight to ``on_deliver`` (the ARQ
    receiver's ``push``), which owns ordering and dedup by ``rseq``.

    ``ordered=True`` (pure fec): this layer resequences by ``fseq``:
    packets buffer until their position is next, reconstructions slot
    into their gaps, and a gap-skip timer (``group_timeout_s``) abandons
    positions that stay unrecoverable so delivery never wedges.
    """

    def __init__(
        self,
        on_deliver: Callable[[Any], Any],
        *,
        k: int = 6,
        m: int = 2,
        codec: Optional[FecCodec] = None,
        numpy: Any = False,
        ordered: bool = True,
        sim: Any = None,
        group_timeout_s: float = 0.25,
        escalate_after: int = 3,
        on_escalate: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self.codec = codec if codec is not None else make_codec(k, m, numpy=numpy)
        self.on_deliver = on_deliver
        self.ordered = ordered
        self.sim = sim
        self.group_timeout_s = group_timeout_s
        self.escalate_after = escalate_after
        self.on_escalate = on_escalate
        self._shards: Dict[int, bytes] = {}
        self._groups: Dict[int, _Group] = {}
        self._base_of: Dict[int, int] = {}
        self._resolved_fifo: Deque[int] = deque()
        self._delivered_hw = -1  # highest fseq handed downstream (hybrid)
        self._consecutive_failures = 0
        # Hybrid mode caps orphan shards (groups whose parity never
        # arrives, so no timer ever covers them) to a sliding window of
        # recent positions; ARQ owns anything older.
        self._shard_log: Deque[int] = deque()
        self._shard_window = max(64, 16 * self.codec.k)
        # pure-fec resequencing state
        self._next_expected = 0
        self._pending: Dict[int, Any] = {}
        self._skip_timer: Any = None
        self.stats = FecReceiverStats()

    # -- ingress -------------------------------------------------------- #

    def on_packet(self, packet: Any) -> None:
        """Entry point: bound as the sync model's delivery callback."""
        if getattr(packet, "codepoint", None) == Codepoint.PARITY:
            self._on_parity(packet)
        else:
            self._on_data(packet)

    def _on_data(self, packet: Any) -> None:
        fseq = getattr(packet, "fseq", None)
        if fseq is None:
            # Not FEC-framed (mode mismatch or control leak): pass through.
            self.on_deliver(packet)
            return
        self.stats.data_packets += 1
        if self.ordered:
            if fseq < self._next_expected or fseq in self._pending:
                self.stats.duplicate_packets += 1
                return
        elif fseq in self._shards:
            # Hybrid duplicates (ARQ retransmit racing the original) still
            # flow downstream — the ARQ receiver owns rseq-level dedup —
            # but are not re-counted as new shards.
            self.stats.duplicate_packets += 1
            self.on_deliver(packet)
            return
        self._shards[fseq] = shard_for(packet)
        self._shard_log.append(fseq)
        self._prune_orphans()
        if self.ordered:
            self._pending[fseq] = packet
            self._drain()
        else:
            if fseq > self._delivered_hw:
                self._delivered_hw = fseq
            self.on_deliver(packet)
        base = self._base_of.get(fseq)
        if base is not None:
            self._try(self._groups[base])

    def _prune_orphans(self) -> None:
        # Shards are retained past delivery — parity always trails its
        # data, so a group can only decode if its delivered members'
        # shards are still cached.  The window bounds retention for
        # groups whose parity never arrives at all.
        log = self._shard_log
        cursor = self._next_expected if self.ordered else self._delivered_hw
        floor = cursor - self._shard_window
        while log and log[0] < floor:
            fseq = log.popleft()
            if fseq not in self._base_of:
                self._shards.pop(fseq, None)

    def _on_parity(self, parity: Any) -> None:
        self.stats.parity_packets += 1
        group = self._groups.get(parity.group)
        if group is None:
            group = _Group(
                parity.group, parity.members, parity.nparity, parity.shard_len
            )
            self._groups[parity.group] = group
            for fseq in range(group.base, group.base + group.members):
                self._base_of[fseq] = group.base
            if self.sim is not None:
                group.timer = self.sim.schedule(
                    self.group_timeout_s, self._on_group_timeout, group.base
                )
        elif group.resolved:
            return  # late sibling parity of an already-settled group
        group.parity[parity.index] = parity.payload
        self._try(group)

    # -- reconstruction ------------------------------------------------- #

    def _try(self, group: _Group) -> None:
        if group.resolved:
            return
        span = range(group.base, group.base + group.members)
        missing = [fseq for fseq in span if fseq not in self._shards]
        # Positions the resequencer already skipped (pure fec) can no
        # longer be delivered; they still count as erasures for the
        # decoder but are never synthesized.
        deliverable = (
            [f for f in missing if f >= self._next_expected]
            if self.ordered
            else missing
        )
        if not deliverable:
            self._resolve(group, failed=bool(missing))
            return
        if len(missing) > len(group.parity):
            return  # wait for more data or parity (or the timeout)
        data: List[Optional[bytes]] = []
        for fseq in span:
            shard = self._shards.get(fseq)
            if shard is not None and len(shard) < group.shard_len:
                shard = shard.ljust(group.shard_len, b"\x00")
            data.append(shard)
        parity: List[Optional[bytes]] = [
            group.parity.get(j) for j in range(group.nparity)
        ]
        try:
            decoded = self.codec.decode(data, parity)
        except FecDecodeError:  # pragma: no cover - guarded by the count check
            return
        self.stats.groups_decoded += 1
        for fseq in deliverable:
            packet = packet_from_shard(decoded[fseq - group.base], fseq)
            self.stats.reconstructed += 1
            if self.ordered:
                self._pending[fseq] = packet
            else:
                if fseq > self._delivered_hw:
                    self._delivered_hw = fseq
                self.on_deliver(packet)
        if self.ordered:
            self._drain()
        self._resolve(group, failed=False)

    def _resolve(self, group: _Group, *, failed: bool) -> None:
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        group.resolved = True
        for fseq in range(group.base, group.base + group.members):
            self._base_of.pop(fseq, None)
            self._shards.pop(fseq, None)
        group.parity.clear()
        self._resolved_fifo.append(group.base)
        while len(self._resolved_fifo) > _RESOLVED_RETENTION:
            evicted = self._resolved_fifo.popleft()
            stale = self._groups.get(evicted)
            if stale is not None and stale.resolved:
                del self._groups[evicted]
        self.stats.groups_resolved += 1
        if failed:
            self.stats.unrecoverable_groups += 1
            self._consecutive_failures += 1
            if (
                self.on_escalate is not None
                and self._consecutive_failures >= self.escalate_after
            ):
                self.stats.escalations += 1
                self._consecutive_failures = 0
                self.on_escalate(group.base)
        else:
            self._consecutive_failures = 0

    def _on_group_timeout(self, base: int) -> None:
        group = self._groups.get(base)
        if group is None or group.resolved:
            return
        group.timer = None
        # One last attempt (a racing arrival may have completed it) …
        self._try(group)
        if not group.resolved:
            # … otherwise give up: hybrid falls back to ARQ retransmission,
            # pure fec will gap-skip the dead positions.
            self._resolve(group, failed=True)

    # -- pure-fec resequencing ------------------------------------------ #

    def _drain(self) -> None:
        pending = self._pending
        self._drain_ready()
        if pending:
            if self._skip_timer is None and self.sim is not None:
                self._skip_timer = self.sim.schedule(
                    self.group_timeout_s, self._on_skip_timeout
                )
        elif self._skip_timer is not None:
            self._skip_timer.cancel()
            self._skip_timer = None

    def _on_skip_timeout(self) -> None:
        self._skip_timer = None
        # Sweep every position with no live repair path — its group
        # resolved as failed, or no parity for it was ever seen — until
        # delivery unblocks or a still-live group is reached (that group
        # gets its own timeout before the re-armed timer returns here).
        # Sweeping per-region rather than one gap per firing keeps the
        # drain time proportional to the number of *live* groups, not the
        # number of holes: under heavy burst loss the holes arrive far
        # faster than one per timeout period.
        pending = self._pending
        while pending and self._next_expected not in pending:
            fseq = self._next_expected
            base = self._base_of.get(fseq)
            if base is not None and not self._groups[base].resolved:
                break
            self._shards.pop(fseq, None)
            self.stats.skipped += 1
            self._next_expected += 1
            self._drain_ready()
        self._drain()

    def _drain_ready(self) -> None:
        """Deliver the run of pending packets at the cursor (no timers)."""
        pending = self._pending
        while self._next_expected in pending:
            packet = pending.pop(self._next_expected)
            self._next_expected += 1
            self.on_deliver(packet)
