"""The multi-tenant session fabric: per-flow fair queuing above the striper.

The paper's duality (Theorem 3.1) says fair queuing and load sharing are
the same ``(s0, f, g)`` algorithm run in opposite directions.  This module
runs it in *both* directions at once, stacked:

* **above** the striper, a :class:`FabricScheduler` runs weighted Deficit
  Round Robin across per-flow queues (the fair-queuing direction — DRR is
  the non-causal engine in :class:`repro.core.kernel.DRRKernel`, here in
  an active-list formulation that is O(1) amortized at 10k+ flows);
* **below**, the unchanged SRR striper spreads the merged stream across
  channels (the load-sharing direction).

So one bundle carries many flows: FQ across flows x SRR across channels.
The composition is loss-free in ordering terms — the bundle delivers the
*global* sender order, which contains each flow's order, so per-flow FIFO
needs no extra machinery (the same argument
:mod:`repro.experiments.multiflow` makes for TCP flows).

Weight policy: per-tenant weights come from the :class:`FlowTable`'s
tenant map.  Two of the related-work results motivate the shape of that
map: weighted fair packet scheduling gives each class a bandwidth share
proportional to its weight with a bounded per-visit deviation (the NoC
fair-packet-scheduling line of work), and logarithmic weight scaling keeps
a heavy tenant from starving light ones as its population grows (the
stochastic analysis of resource sharing with logarithmic weights) —
:func:`logarithmic_tenant_weights` implements that policy.

Backpressure is strictly per flow: each flow owns a bounded queue, and
:meth:`FabricScheduler.can_submit` goes False only for the flow whose
queue is full.  A stalled flow's surplus never reaches the downstream
ARQ window or the striper backlog, so it cannot head-of-line block its
siblings or leak shared window slots (the PR-5 interop requirement).

Fairness bound (the weighted-DRR analogue of Theorem 3.2): while a flow
stays backlogged, its serviced bytes after ``V`` completed visits differ
from ``V * quantum_i`` by less than one maximum packet — the deficit a
backlogged flow carries between visits is always smaller than its
head-of-line packet.  Property tests assert this bound simultaneously
with the per-channel Theorem 3.2 envelope below the striper.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)


def logarithmic_tenant_weights(
    populations: Mapping[Any, int], base: float = 2.0
) -> Dict[Any, float]:
    """Tenant weights growing logarithmically with tenant population.

    ``weight(t) = 1 + log_base(1 + n_t)``: a tenant with more flows gets a
    larger aggregate share, but sublinearly, so small tenants keep a
    usable floor — the regime the logarithmic-weights resource-sharing
    analysis shows is stable (see PAPERS.md).
    """
    if base <= 1.0:
        raise ValueError("base must be > 1")
    return {
        tenant: 1.0 + math.log(1 + max(0, int(count))) / math.log(base)
        for tenant, count in populations.items()
    }


class FlowState:
    """Per-flow scheduling state and statistics (one row of the table)."""

    __slots__ = (
        "flow_id", "tenant", "weight", "quantum", "queue", "deficit",
        "active", "visits", "submitted_packets", "submitted_bytes",
        "serviced_packets", "serviced_bytes", "refusals",
    )

    def __init__(
        self, flow_id: Any, weight: float, quantum: float, tenant: Any = None
    ) -> None:
        self.flow_id = flow_id
        self.tenant = tenant
        self.weight = weight
        #: DRR quantum: bytes of service credit banked per scheduler visit
        self.quantum = quantum
        self.queue: Deque[Any] = deque()
        self.deficit = 0.0
        self.active = False
        #: completed scheduler visits (the ``V`` of the fairness bound)
        self.visits = 0
        self.submitted_packets = 0
        self.submitted_bytes = 0
        self.serviced_packets = 0
        self.serviced_bytes = 0
        #: submissions refused because the flow's bounded queue was full
        self.refusals = 0

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:
        return (
            f"FlowState({self.flow_id!r}, w={self.weight}, "
            f"q={len(self.queue)}, sent={self.serviced_packets})"
        )


class FlowTable:
    """O(1) flow registry with per-tenant weight resolution.

    Args:
        tenant_weights: weight per tenant name; a flow registered under a
            tenant inherits its weight unless given one explicitly.
        default_weight: weight for flows with neither an explicit weight
            nor a weighted tenant.
        quantum_bytes: base DRR quantum; a flow's quantum is
            ``quantum_bytes * weight``.  For O(1)-amortized scheduling
            keep it >= the maximum packet size (Shreedhar & Varghese).
    """

    def __init__(
        self,
        tenant_weights: Optional[Mapping[Any, float]] = None,
        default_weight: float = 1.0,
        quantum_bytes: float = 1500.0,
    ) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        if quantum_bytes <= 0:
            raise ValueError("quantum_bytes must be positive")
        self.tenant_weights: Dict[Any, float] = dict(tenant_weights or {})
        self.default_weight = float(default_weight)
        self.quantum_bytes = float(quantum_bytes)
        self._flows: Dict[Any, FlowState] = {}

    def register(
        self,
        flow_id: Any,
        *,
        weight: Optional[float] = None,
        tenant: Any = None,
    ) -> FlowState:
        """Add a flow; weight resolves explicit > tenant > default."""
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id!r} is already registered")
        if weight is None:
            weight = self.tenant_weights.get(tenant, self.default_weight)
        if weight <= 0:
            raise ValueError("flow weight must be positive")
        flow = FlowState(
            flow_id, float(weight), self.quantum_bytes * float(weight), tenant
        )
        self._flows[flow_id] = flow
        return flow

    def get(self, flow_id: Any) -> Optional[FlowState]:
        return self._flows.get(flow_id)

    def __getitem__(self, flow_id: Any) -> FlowState:
        return self._flows[flow_id]

    def __contains__(self, flow_id: Any) -> bool:
        return flow_id in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowState]:
        return iter(self._flows.values())

    def remove(self, flow_id: Any) -> FlowState:
        """Drop a flow (its queued packets are discarded with it)."""
        flow = self._flows.pop(flow_id)
        flow.active = False
        return flow

    def tenant_totals(self) -> Dict[Any, int]:
        """Serviced bytes aggregated per tenant (weighted-share audits)."""
        totals: Dict[Any, int] = {}
        for flow in self._flows.values():
            totals[flow.tenant] = (
                totals.get(flow.tenant, 0) + flow.serviced_bytes
            )
        return totals


@dataclass
class FabricStats:
    packets_scheduled: int = 0
    bytes_scheduled: int = 0
    #: submissions refused across all flows (bounded per-flow queues)
    refusals: int = 0


@dataclass(frozen=True)
class FabricSnapshot:
    """Scheduling state only — flow queues are the caller's to preserve.

    Mirrors the kernel snapshots (:class:`repro.core.srr.SRRState`): the
    ``(ptr, deficits)`` pair of :class:`repro.core.kernel.DRRKernel`
    generalized to the active list — per-flow ``(deficit, visits)`` plus
    the active ring order and whether the head flow has already banked
    this visit's quantum.
    """

    flows: Tuple[Tuple[Any, float, int], ...]  # (flow_id, deficit, visits)
    active_order: Tuple[Any, ...]
    head_credited: bool


class FabricScheduler:
    """Weighted DRR across registered flows, feeding one striper below.

    The scheduler is the fair-queuing direction of the CFQ transform run
    above the load-sharing direction: packets submitted per flow wait in
    per-flow queues; :meth:`pump` merges them in weighted-DRR order into
    the ``downstream`` callable (typically a
    :class:`~repro.transport.endpoint.StripeSenderPipeline`'s submit
    path), but only while ``ready()`` holds — the hook through which the
    downstream ARQ window and striper backlog exert backpressure without
    ever holding fabric packets themselves.

    Active-list formulation (Shreedhar & Varghese): only backlogged flows
    are visited, so scheduling cost is O(1) amortized per packet
    regardless of how many of the 10k+ registered flows are idle.

    Args:
        table: the :class:`FlowTable` (one is created if omitted).
        flow_buffer_packets: per-flow queue bound; ``None`` = unbounded.
            A full flow refuses further submissions (``can_submit`` goes
            False for that flow only).
        auto_register: register unknown flow ids on first submit with
            table-default weight (experiments at fabric scale should not
            need 10k explicit register calls).
    """

    def __init__(
        self,
        table: Optional[FlowTable] = None,
        *,
        flow_buffer_packets: Optional[int] = 64,
        auto_register: bool = True,
    ) -> None:
        if flow_buffer_packets is not None and flow_buffer_packets < 1:
            raise ValueError("flow_buffer_packets must be >= 1 or None")
        self.table = table if table is not None else FlowTable()
        self.flow_buffer_packets = flow_buffer_packets
        self.auto_register = auto_register
        self.stats = FabricStats()
        self._active: Deque[FlowState] = deque()
        self._downstream: Optional[Callable[[Any], None]] = None
        self._ready: Optional[Callable[[], bool]] = None
        self._head_credited = False
        self._pumping = False

    # ------------------------------------------------------------------ #
    # wiring

    def bind(
        self,
        downstream: Callable[[Any], None],
        ready: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Connect the drain: ``downstream(packet)`` gated by ``ready()``."""
        self._downstream = downstream
        self._ready = ready

    def register(self, flow_id: Any, **kwargs: Any) -> FlowState:
        return self.table.register(flow_id, **kwargs)

    # ------------------------------------------------------------------ #
    # submission side

    def can_submit(self, flow_id: Any) -> bool:
        """Per-flow backpressure: False only while *this* flow's queue is
        full — a stalled sibling never shows through here."""
        flow = self.table.get(flow_id)
        if flow is None:
            return self.auto_register
        return (
            self.flow_buffer_packets is None
            or len(flow.queue) < self.flow_buffer_packets
        )

    def submit(self, flow_id: Any, packet: Any) -> bool:
        """Queue ``packet`` on its flow; returns False if refused (full).

        The packet's ``flow`` field is stamped with ``flow_id`` when unset,
        so receivers and experiments can demux per-flow without any
        fabric-side delivery machinery.
        """
        flow = self.table.get(flow_id)
        if flow is None:
            if not self.auto_register:
                raise KeyError(f"unknown flow {flow_id!r}")
            flow = self.table.register(flow_id)
        if (
            self.flow_buffer_packets is not None
            and len(flow.queue) >= self.flow_buffer_packets
        ):
            flow.refusals += 1
            self.stats.refusals += 1
            return False
        if getattr(packet, "flow", None) is None:
            try:
                packet.flow = flow_id
            except AttributeError:
                pass  # foreign packet types without a flow slot
        flow.queue.append(packet)
        flow.submitted_packets += 1
        flow.submitted_bytes += getattr(packet, "size", 0)
        if not flow.active:
            flow.active = True
            self._active.append(flow)
        self.pump()
        return True

    @property
    def backlog(self) -> int:
        """Packets waiting in per-flow queues (not yet handed downstream)."""
        return sum(len(flow.queue) for flow in self._active)

    @property
    def active_flows(self) -> int:
        return len(self._active)

    # ------------------------------------------------------------------ #
    # the weighted-DRR drain

    def _downstream_ready(self) -> bool:
        if self._downstream is None:
            return False
        return self._ready is None or self._ready()

    def pump(self) -> int:
        """Drain in weighted-DRR order while the downstream is ready.

        Semantics match :class:`repro.core.kernel.DRRKernel` over the
        backlogged flows: each visit banks the flow's quantum once, the
        flow sends while its head fits the deficit, an emptied flow
        forfeits its deficit and leaves the active list, a flow whose
        head no longer fits rotates to the tail carrying its deficit.
        Re-entrant calls (downstream submit can re-trigger port pumps)
        are folded into the outer drain.
        """
        if self._pumping:
            return 0
        self._pumping = True
        sent = 0
        try:
            active = self._active
            while active and self._downstream_ready():
                flow = active[0]
                if not self._head_credited:
                    flow.deficit += flow.quantum
                    self._head_credited = True
                queue = flow.queue
                while queue and getattr(queue[0], "size", 0) <= flow.deficit:
                    if not self._downstream_ready():
                        # Mid-visit pause: keep the head flow (and its
                        # banked quantum) in place so the resumed pump
                        # continues exactly where this one stopped.
                        return sent
                    packet = queue.popleft()
                    size = getattr(packet, "size", 0)
                    flow.deficit -= size
                    flow.serviced_packets += 1
                    flow.serviced_bytes += size
                    self.stats.packets_scheduled += 1
                    self.stats.bytes_scheduled += size
                    sent += 1
                    self._downstream(packet)
                # The visit is over: empty flows forfeit their deficit and
                # deactivate; backlogged flows rotate to the tail with the
                # remainder (always < their head packet's size).
                self._head_credited = False
                flow.visits += 1
                active.popleft()
                if queue:
                    active.append(flow)
                else:
                    flow.deficit = 0.0
                    flow.active = False
        finally:
            self._pumping = False
        return sent

    # ------------------------------------------------------------------ #
    # snapshot / restore (session resets, duality tests)

    def snapshot(self) -> FabricSnapshot:
        return FabricSnapshot(
            flows=tuple(
                (f.flow_id, f.deficit, f.visits) for f in self.table
            ),
            active_order=tuple(f.flow_id for f in self._active),
            head_credited=self._head_credited,
        )

    def restore(self, snapshot: FabricSnapshot) -> None:
        """Reinstall scheduling state over the *current* flow queues."""
        for flow_id, deficit, visits in snapshot.flows:
            flow = self.table.get(flow_id)
            if flow is None:
                raise ValueError(f"snapshot names unknown flow {flow_id!r}")
            flow.deficit = deficit
            flow.visits = visits
        for flow in self.table:
            flow.active = False
        order: List[FlowState] = []
        for flow_id in snapshot.active_order:
            flow = self.table[flow_id]
            flow.active = True
            order.append(flow)
        self._active = deque(order)
        self._head_credited = snapshot.head_credited


__all__ = [
    "FabricScheduler",
    "FabricSnapshot",
    "FabricStats",
    "FlowState",
    "FlowTable",
    "logarithmic_tenant_weights",
]
