"""Fast-path transport striping: batched pump over direct channel ports.

The slow (reference) path of :mod:`repro.transport.socket_striping` walks
every packet through the full UDP/IP/Ethernet stack — socket ``sendto``,
routing lookup, ARP check, Ethernet encapsulation — and pays one engine
event plus one Python callback chain per packet per hop.  All of that
plumbing is *synchronous in simulated time*: it adds framing bytes but no
delay.  The fast path therefore strips it away:

* :class:`FastChannelPort` talks to a :class:`~repro.sim.channel.Channel`
  directly and accounts for the framing the stack would have added via the
  channel's ``size_of`` hook (:func:`wire_size`), so wire timing is
  bit-identical to the reference path.
* :class:`~repro.transport.endpoint.FastStriper` (re-exported here)
  replaces the per-packet choose/send/notify loop with a batched pump:
  snapshot the SRR kernel, assign a whole chunk of the input queue with
  :meth:`~repro.core.kernel.SRRKernel.assign_many`, cut the chunk at the
  first head-of-line block or marker emission point, and hand each channel
  its packets as one burst (:meth:`~repro.sim.channel.Channel.send_burst`).
* :class:`FastStripedSender` / :class:`FastStripedReceiver` are thin
  adapters over the shared endpoint pipelines
  (:class:`~repro.transport.endpoint.StripeSenderPipeline` /
  :class:`~repro.transport.endpoint.StripeReceiverPipeline`): the port
  capabilities select the batched pump automatically, and the surface
  (ports with ``sent_data``/``sent_markers``, ``submit_packet``,
  ``backlog``, per-channel arrival handlers) matches the striped-socket
  stack, so the experiment harness can swap them in behind a ``fast=True``
  flag.

Determinism contract: for any configuration the harness builds, the fast
path produces the *identical delivery sequence* as the reference path, and
for loss-free runs the identical ``(time, seq)`` delivery records — the
property tests in ``tests/properties/test_fast_path_equivalence.py`` check
both.  The batched pump reconstructs marker-position crossings from the
``assign_many`` channel vector; if the pointer trajectory cannot be
reconstructed exactly (a deep-overdraw multi-channel hop, only possible
when a packet exceeds the smallest quantum), it falls back to the exact
per-packet pump for that chunk.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.cfq import CausalFQ
from repro.core.packet import SackInfo, is_marker
from repro.core.striper import MarkerPolicy
from repro.net.ethernet import ETHERNET_MIN_PAYLOAD, ETHERNET_OVERHEAD
from repro.net.ip import IP_HEADER_BYTES
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.transport.endpoint import (
    _UNBOUNDED,
    FastStriper,
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.reliability import AckPacket
from repro.transport.udp import UDP_HEADER_BYTES

__all__ = [
    "FastAckPort",
    "FastChannelPort",
    "FastStripedReceiver",
    "FastStripedSender",
    "FastStriper",
    "wire_fast_ack_path",
    "wire_size",
]


_WIRE_HEADERS = IP_HEADER_BYTES + UDP_HEADER_BYTES
_WIRE_MIN = ETHERNET_MIN_PAYLOAD
_WIRE_OVERHEAD = ETHERNET_OVERHEAD


def wire_size(packet: Any) -> int:
    """Ethernet wire bytes for a transport payload sent via UDP/IP.

    Exactly what the reference path's encapsulation chain computes:
    UDP header + IP header + Ethernet framing (with minimum-payload
    padding) — the arithmetic of :func:`ethernet_wire_size`, inlined
    because this runs once per wire packet on the fast path.  Installing
    this as a fast channel's ``size_of`` makes the direct-to-channel
    path time-identical to the full-stack path.
    """
    payload = _WIRE_HEADERS + packet.size
    if payload < _WIRE_MIN:
        payload = _WIRE_MIN
    return payload + _WIRE_OVERHEAD


class FastChannelPort:
    """Striper port writing straight into a simulated channel."""

    __slots__ = ("channel", "sent_data", "sent_markers")

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.sent_data = 0
        self.sent_markers = 0

    def send(self, packet: Any, force: bool = False) -> bool:
        if is_marker(packet):
            self.sent_markers += 1
            return self.channel.send(packet, force=True)
        self.sent_data += 1
        return self.channel.send(packet, force)

    def send_burst(self, packets: Sequence[Any]) -> None:
        self.sent_data += len(packets)
        self.channel.send_burst(packets)

    def can_accept(self) -> bool:
        return self.channel.can_accept()

    def free_capacity(self) -> int:
        """Transmit-queue slots a non-forced send could still fill."""
        channel = self.channel
        limit = channel.queue_limit
        if limit is None:
            return _UNBOUNDED
        free = limit - len(channel._queue)
        return free if free > 0 else 0

    @property
    def queue_length(self) -> int:
        return self.channel.queue_length


class FastAckPort:
    """Reverse-path ack transmitter writing straight into a channel.

    The reference stack sends each :class:`AckPacket` as a UDP datagram on
    the dedicated ack flow — one ``sendto``, a routing lookup, Ethernet
    encapsulation, all with zero simulated delay.  The fast counterpart
    enqueues the ack directly on the reverse channel (``force=True``, like
    the reference ``sendto`` on the control flow), with :func:`wire_size`
    as the channel's ``size_of`` so serialization timing is identical.
    """

    __slots__ = ("channel", "acks_sent")

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.acks_sent = 0

    def send_sack(self, sack: SackInfo) -> None:
        self.acks_sent += 1
        self.channel.send(AckPacket(sack=sack), force=True)


def wire_fast_ack_path(channel: Channel, sender: Any) -> FastAckPort:
    """Wire ``channel`` as the fast reverse ack path into ``sender``.

    Installs :func:`wire_size` as the channel's ``size_of`` (matching the
    reference ack flow's UDP/IP/Ethernet framing), enables the channel's
    fast mode, and points its delivery callback at the sender's ack input
    with the same SACK filter the reference datagram handler applies.
    Returns the :class:`FastAckPort` whose :meth:`~FastAckPort.send_sack`
    the receiver should use as its ``send_ack``.
    """
    channel.size_of = wire_size
    channel.fast = True

    def deliver(packet: Any) -> None:
        if getattr(packet, "sack", None) is not None:
            sender.on_ack(packet)

    channel.on_deliver = deliver
    return FastAckPort(channel)


class FastStripedSender(StripeSenderPipeline):
    """Drop-in fast replacement for ``StripedSocketSender``.

    Same submission surface and per-port counters, but packets go straight
    to the channels through :class:`FastChannelPort`, whose burst support
    makes the shared pipeline pick the batched
    :class:`~repro.transport.endpoint.FastStriper`.  No credit flow
    control — the FCVC experiments measure per-packet control-plane
    behaviour and stay on the reference path.
    """

    def __init__(
        self,
        sim: Simulator,
        channels: Sequence[Channel],
        algorithm: CausalFQ,
        marker_policy: Optional[MarkerPolicy] = None,
        reliability: str = "quasi_fifo",
        reliability_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            [FastChannelPort(channel) for channel in channels],
            algorithm,
            marker_policy=marker_policy,
            sim=sim,
            reliability=reliability,
            reliability_options=reliability_options,
        )

    def stats(self) -> Dict[str, Any]:
        """Fast-path perf counters: batched pump plus (if any) ARQ stats."""
        stats: Dict[str, Any] = dict(self.striper.stats())
        if self.reliable is not None:
            arq = self.reliable.stats
            stats["burst_submits"] = arq.burst_submits
            stats["sack_scans"] = arq.sack_scans
            stats["fast_retransmissions"] = arq.fast_retransmissions
            stats["batched_retransmissions"] = arq.batched_retransmissions
        return stats


class FastStripedReceiver(StripeReceiverPipeline):
    """Drop-in fast replacement for ``StripedSocketReceiver``.

    Channel arrivals are plain transport payloads (no datagram wrapper);
    :meth:`~repro.transport.endpoint.StripeReceiverPipeline.channel_handler`
    builds the per-channel callback to install as the channel's
    ``on_deliver``.  The resequencing modes and the physical buffer-cap
    drop rule come from the shared pipeline and match the reference
    receiver exactly.
    """

    def __init__(
        self,
        sim: Simulator,
        n_channels: int,
        algorithm: CausalFQ,
        mode: str = "marker",
        on_message: Optional[Callable[[Any], None]] = None,
        buffer_packets: Optional[int] = None,
        reliability: str = "quasi_fifo",
        send_ack: Optional[Callable[[Any], None]] = None,
        reliability_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            n_channels,
            algorithm,
            mode=mode,
            on_message=on_message,
            buffer_packets=buffer_packets,
            sim=sim,
            reliability=reliability,
            send_ack=send_ack,
            reliability_options=reliability_options,
        )
