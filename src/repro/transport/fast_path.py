"""Fast-path transport striping: batched pump over direct channel ports.

The slow (reference) path of :mod:`repro.transport.socket_striping` walks
every packet through the full UDP/IP/Ethernet stack — socket ``sendto``,
routing lookup, ARP check, Ethernet encapsulation — and pays one engine
event plus one Python callback chain per packet per hop.  All of that
plumbing is *synchronous in simulated time*: it adds framing bytes but no
delay.  The fast path therefore strips it away:

* :class:`FastChannelPort` talks to a :class:`~repro.sim.channel.Channel`
  directly and accounts for the framing the stack would have added via the
  channel's ``size_of`` hook (:func:`wire_size`), so wire timing is
  bit-identical to the reference path.
* :class:`FastStriper` replaces the per-packet choose/send/notify loop with
  a batched pump: snapshot the SRR kernel, assign a whole chunk of the
  input queue with :meth:`~repro.core.kernel.SRRKernel.assign_many`, cut
  the chunk at the first head-of-line block or marker emission point, and
  hand each channel its packets as one burst
  (:meth:`~repro.sim.channel.Channel.send_burst`).
* :class:`FastStripedSender` / :class:`FastStripedReceiver` mirror the
  striped-socket surface (ports with ``sent_data``/``sent_markers``,
  ``submit_packet``, ``backlog``, per-channel arrival handlers feeding the
  same resequencers), so the experiment harness can swap them in behind a
  ``fast=True`` flag.

Determinism contract: for any configuration the harness builds, the fast
path produces the *identical delivery sequence* as the reference path, and
for loss-free runs the identical ``(time, seq)`` delivery records — the
property tests in ``tests/properties/test_fast_path_equivalence.py`` check
both.  The batched pump reconstructs marker-position crossings from the
``assign_many`` channel vector; if the pointer trajectory cannot be
reconstructed exactly (a deep-overdraw multi-channel hop, only possible
when a packet exceeds the smallest quantum), it falls back to the exact
per-packet pump for that chunk.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.cfq import CausalFQ
from repro.core.markers import SRRReceiver
from repro.core.packet import Packet, is_marker
from repro.core.resequencer import NullResequencer, Resequencer
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer
from repro.net.ethernet import ethernet_wire_size
from repro.net.ip import IP_HEADER_BYTES
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.transport.udp import UDP_HEADER_BYTES

#: A value safely larger than any queue limit, used for unbounded queues.
_UNBOUNDED = 1 << 30

#: Input backlogs below this run the per-packet pump: snapshotting and
#: scanning the batch machinery costs more than it saves for a couple of
#: packets (the common case for per-submit pumps of a closed-loop source).
_BATCH_MIN = 4


def wire_size(packet: Any) -> int:
    """Ethernet wire bytes for a transport payload sent via UDP/IP.

    Exactly what the reference path's encapsulation chain computes:
    UDP header + IP header + Ethernet framing (with minimum-payload
    padding).  Installing this as a fast channel's ``size_of`` makes the
    direct-to-channel path time-identical to the full-stack path.
    """
    return ethernet_wire_size(IP_HEADER_BYTES + UDP_HEADER_BYTES + packet.size)


class FastChannelPort:
    """Striper port writing straight into a simulated channel."""

    __slots__ = ("channel", "sent_data", "sent_markers")

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.sent_data = 0
        self.sent_markers = 0

    def send(self, packet: Any, force: bool = False) -> bool:
        if is_marker(packet):
            self.sent_markers += 1
            return self.channel.send(packet, force=True)
        self.sent_data += 1
        return self.channel.send(packet, force)

    def send_burst(self, packets: Sequence[Any]) -> None:
        self.sent_data += len(packets)
        self.channel.send_burst(packets)

    def can_accept(self) -> bool:
        return self.channel.can_accept()

    def free_capacity(self) -> int:
        """Transmit-queue slots a non-forced send could still fill."""
        channel = self.channel
        limit = channel.queue_limit
        if limit is None:
            return _UNBOUNDED
        free = limit - len(channel._queue)
        return free if free > 0 else 0

    @property
    def queue_length(self) -> int:
        return self.channel.queue_length


class FastStriper(Striper):
    """A :class:`~repro.core.striper.Striper` with a batched pump.

    Semantically identical to the base per-packet pump for SRR-family
    policies — same channel assignments (the kernel is causal), same
    per-channel packet order, same marker emission points — but the kernel
    is advanced with one ``assign_many`` per chunk and each channel
    receives its packets as one burst.  Non-SRR policies, enabled tracers,
    and unreconstructable pointer trajectories fall back to the exact base
    pump.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._min_quantum: Optional[float] = None
        if self._kernel is not None:
            self._min_quantum = min(self._kernel.quanta)

    def pump(self) -> int:
        kernel = self._kernel
        if kernel is None or self.tracer.enabled:
            return super().pump()
        if self._initial_markers_pending:
            self._initial_markers_pending = False
            self._emit_markers()
        queue = self.input_queue
        if not queue:
            return 0
        if len(queue) < _BATCH_MIN:
            return super().pump()
        ports = self.ports
        n = kernel.n_channels
        markers = self._markers_enabled
        position = interval = 0
        if markers:
            policy = self.marker_policy
            position = policy.position % n
            interval = policy.interval_rounds
        sent_total = 0
        while queue:
            free = [port.free_capacity() for port in ports]
            if free[kernel.ptr] <= 0:
                break  # head-of-line: causality forbids sending elsewhere
            budget = 0
            for f in free:
                budget += f
            backlog = len(queue)
            chunk = budget if budget < backlog else backlog
            sizes = [p.size for p in islice(queue, chunk)]
            snapshot = kernel.snapshot()
            chans = kernel.assign_many(sizes)
            end_ptr = kernel.ptr
            # Longest admissible prefix under per-channel free slots.  The
            # first packet is always admissible (free[chans[0]] > 0 was
            # just checked), so q >= 1 and the loop makes progress.
            q = chunk
            for i in range(chunk):
                c = chans[i]
                f = free[c]
                if f <= 0:
                    q = i
                    break
                free[c] = f - 1
            emit = False
            if markers:
                # Walk the pointer trajectory packet by packet: chans[i+1]
                # (or the post-chunk pointer) is the live pointer after
                # packet i.  Each single-channel advance is one potential
                # marker-position crossing; a multi-channel hop (deep
                # overdraw) cannot be reconstructed from the channel
                # vector alone, so it falls back to the per-packet pump.
                crossings = self._crossings_seen
                ptr = chans[0]
                stop = q
                for i in range(q):
                    nxt = chans[i + 1] if i + 1 < chunk else end_ptr
                    if nxt == ptr:
                        continue
                    step = nxt - ptr
                    if step != 1 and step != 1 - n:
                        kernel.restore(snapshot)
                        return sent_total + super().pump()
                    ptr = nxt
                    if nxt == position:
                        crossings += 1
                        if crossings % interval == 0:
                            # Cut after the crossing packet so the marker
                            # batch lands exactly where the per-packet
                            # pump would put it.
                            stop = i + 1
                            emit = True
                            break
                self._crossings_seen = crossings
                q = stop
            if q < chunk:
                kernel.restore(snapshot)
                kernel.assign_many(sizes[:q])
            bursts: Dict[int, List[Any]] = {}
            bytes_sent = 0
            for i in range(q):
                packet = queue.popleft()
                bytes_sent += sizes[i]
                c = chans[i]
                burst = bursts.get(c)
                if burst is None:
                    bursts[c] = [packet]
                else:
                    burst.append(packet)
            for c, burst in bursts.items():
                ports[c].send_burst(burst)
            self.packets_sent += q
            self.bytes_sent += bytes_sent
            sent_total += q
            if emit:
                self._emit_markers()
        return sent_total


class FastStripedSender:
    """Drop-in fast replacement for ``StripedSocketSender``.

    Same submission surface and per-port counters, but packets go straight
    to the channels through :class:`FastChannelPort` and the batched
    :class:`FastStriper`.  No credit flow control — the FCVC experiments
    measure per-packet control-plane behaviour and stay on the reference
    path.
    """

    def __init__(
        self,
        sim: Simulator,
        channels: Sequence[Channel],
        algorithm: CausalFQ,
        marker_policy: Optional[MarkerPolicy] = None,
    ) -> None:
        self.sim = sim
        self.ports: List[FastChannelPort] = [
            FastChannelPort(channel) for channel in channels
        ]
        sharer = TransformedLoadSharer(algorithm)
        self.striper = FastStriper(sharer, self.ports, marker_policy)
        self.messages_submitted = 0

    def send_message(self, size: int, payload: Any = None) -> Packet:
        packet = Packet(size=size, seq=self.messages_submitted, payload=payload)
        self.messages_submitted += 1
        self.striper.submit(packet)
        return packet

    def submit_packet(self, packet: Packet) -> None:
        self.messages_submitted += 1
        self.striper.submit(packet)

    @property
    def backlog(self) -> int:
        return self.striper.backlog

    def pump(self) -> int:
        return self.striper.pump()


class FastStripedReceiver:
    """Drop-in fast replacement for ``StripedSocketReceiver``.

    Channel arrivals are plain transport payloads (no datagram wrapper);
    :meth:`channel_handler` builds the per-channel callback to install as
    the channel's ``on_deliver``.  The resequencing modes and the physical
    buffer-cap drop rule match the reference receiver exactly.
    """

    def __init__(
        self,
        sim: Simulator,
        n_channels: int,
        algorithm: CausalFQ,
        mode: str = "marker",
        on_message: Optional[Callable[[Packet], None]] = None,
        buffer_packets: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.on_message = on_message
        self.buffer_packets = buffer_packets
        self.buffer_drops = 0
        self.delivered: List[Packet] = []

        if mode == "marker":
            if not isinstance(algorithm, SRR):
                raise ValueError("marker mode requires an SRR-family algorithm")
            self.resequencer: Any = SRRReceiver(
                algorithm, on_deliver=self._deliver, clock=lambda: sim.now
            )
        elif mode == "plain":
            self.resequencer = Resequencer(algorithm, on_deliver=self._deliver)
        elif mode == "none":
            self.resequencer = NullResequencer(
                n_channels, on_deliver=self._deliver
            )
        else:
            raise ValueError(f"unknown mode {mode!r}")

        self._pushed_data: List[int] = [0] * n_channels

    def channel_handler(self, index: int) -> Callable[[Any], None]:
        """The ``on_deliver`` callback for channel ``index``."""
        push = self.resequencer.push
        if self.buffer_packets is None:
            pushed = self._pushed_data

            def handle(packet: Any) -> None:
                if not is_marker(packet):
                    pushed[index] += 1
                push(index, packet)

        else:

            def handle(packet: Any) -> None:
                if not is_marker(packet):
                    if self._buffered_data(index) >= self.buffer_packets:
                        self.buffer_drops += 1
                        return
                    self._pushed_data[index] += 1
                push(index, packet)

        return handle

    def _buffered_data(self, index: int) -> int:
        buffers = getattr(self.resequencer, "buffers", None)
        if buffers is None:
            return 0
        return sum(1 for p in buffers[index] if not is_marker(p))

    def _deliver(self, packet: Packet) -> None:
        self.delivered.append(packet)
        if self.on_message is not None:
            self.on_message(packet)
