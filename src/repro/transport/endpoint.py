"""The transport-agnostic striping endpoint layer.

Every transport stack in this package — UDP sockets, session-managed UDP,
TCP connections, the direct-to-channel fast path, duplex sessions — used
to carry its own copy of the same machinery: a stripe pump feeding channel
ports, marker placement, credit hooks, a per-channel receive buffer with a
drop rule, logical reception through a resequencer, and (sometimes) a
dead-channel watchdog.  This module is the single copy.

* :class:`ChannelPort` — the protocol a transport must implement per
  striped channel: ``send`` / ``can_accept`` / ``queue_length``, plus
  optional ``send_burst`` + ``free_capacity`` (enables the batched fast
  pump), ``close``, and an ``on_unblocked`` callback slot.
* :class:`StripeSenderPipeline` — kernel-driven stripe pump over any port
  list: marker placement via :class:`~repro.core.striper.MarkerPolicy`,
  the batched :class:`FastStriper` when the ports support bursts, FCVC
  credit integration, keepalive markers, and packet-wrapping disciplines
  (MPPP headers, BONDING frames).
* :class:`StripeReceiverPipeline` — per-channel buffering with the
  physical buffer-cap drop rule, logical reception via
  :func:`~repro.core.resequencer.make_resequencer` (marker resync per
  condition C1 in marker mode), piggybacked-credit extraction, credit
  issuance, and pluggable :class:`ChannelFailureDetector` support.
* :func:`make_discipline` / :func:`resolve_discipline` — one registry for
  every striping policy in the repo (SRR family and the five section-2.1
  baselines), so any ``(s0, f, g)`` scheme plugs into any transport.

The module deliberately imports nothing from :mod:`repro.net`,
:mod:`repro.sim`, or the concrete transports: a pipeline only sees ports
and (optionally) a duck-typed event scheduler, which is what makes the
same code run over UDP sockets, TCP streams, raw simulated channels, or
the in-memory list ports the offline tests use.
"""

from __future__ import annotations

from itertools import islice
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.cfq import CausalFQ
from repro.core.markers import (
    MarkerDecodeError,
    decode_marker,
    piggybacked_credit,
    piggybacked_sack,
)
from repro.core.packet import Packet, is_marker
from repro.core.resequencer import make_resequencer
from repro.core.striper import MarkerPolicy, Striper
from repro.core.transform import LoadSharer, TransformedLoadSharer
from repro.sim.trace import NULL_TRACER, Tracer
from repro.transport.reliability import (
    RELIABILITY_MODES,
    ReliableReceiver,
    ReliableSender,
)

#: A value safely larger than any queue limit, used for unbounded queues.
_UNBOUNDED = 1 << 30

#: Input backlogs below this run the per-packet pump: snapshotting and
#: scanning the batch machinery costs more than it saves for a couple of
#: packets (the common case for per-submit pumps of a closed-loop source).
_BATCH_MIN = 4

_MISSING = object()


@runtime_checkable
class ChannelPort(Protocol):
    """What the endpoint layer needs from one striped channel.

    Required surface::

        send(packet, force=False) -> bool   # enqueue for transmission
        can_accept() -> bool                # queue space for one more?
        queue_length -> int                 # packets queued (depth policies)

    Optional surface, detected by attribute presence:

    * ``send_burst(packets)`` + ``free_capacity() -> int`` — enables the
      batched fast pump (:class:`FastStriper`).
    * ``close()`` — release the underlying transport resource.
    * ``on_unblocked`` — a slot the pipeline fills with its pump so the
      port can resume a stalled sender (ARP resolution, credit arrival).
    """

    def send(self, packet: Any, force: bool = False) -> bool: ...

    def can_accept(self) -> bool: ...

    @property
    def queue_length(self) -> int: ...


# --------------------------------------------------------------------- #
# discipline registry: any (s0, f, g) scheme -> any transport


def _make_srr(n: int, **options: Any) -> LoadSharer:
    from repro.core.srr import SRR

    quanta = options.get("quanta")
    if quanta is None:
        quanta = [float(options.get("quantum", 1500.0))] * n
    return TransformedLoadSharer(
        SRR(quanta, count_packets=options.get("count_packets", False))
    )


def _make_rr(n: int, **options: Any) -> LoadSharer:
    from repro.core.srr import make_rr

    return TransformedLoadSharer(make_rr(n))


def _make_grr(n: int, **options: Any) -> LoadSharer:
    from repro.core.srr import make_grr

    weights = options.get("weights")
    if weights is None:
        weights = [1.0] * n
    return TransformedLoadSharer(make_grr(weights))


def _make_sqf(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.sqf import ShortestQueueFirst

    return ShortestQueueFirst(n)


def _make_random(n: int, **options: Any) -> LoadSharer:
    import random

    from repro.baselines.random_selection import RandomSelection

    return RandomSelection(n, random.Random(options.get("seed", 0)))


def _make_hash(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.address_hash import AddressHashing

    return AddressHashing(n)


def _make_mppp(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.mppp import MPPP_HEADER_BYTES, MpppDiscipline

    return MpppDiscipline(
        n, header_bytes=options.get("header_bytes", MPPP_HEADER_BYTES)
    )


def _make_bonding(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.bonding import BondingDiscipline

    return BondingDiscipline(n, frame_bytes=options.get("frame_bytes", 512))


#: Named striping disciplines: factory(n_channels, **options) -> LoadSharer.
DISCIPLINES: Dict[str, Callable[..., LoadSharer]] = {
    "srr": _make_srr,
    "rr": _make_rr,
    "grr": _make_grr,
    "sqf": _make_sqf,
    "random_selection": _make_random,
    "random": _make_random,
    "address_hash": _make_hash,
    "hash": _make_hash,
    "mppp": _make_mppp,
    "bonding": _make_bonding,
}


def make_discipline(name: str, n_channels: int, **options: Any) -> LoadSharer:
    """Build a named striping discipline for ``n_channels`` channels.

    Names: ``srr`` (quanta/quantum/count_packets options), ``rr``, ``grr``
    (weights), ``sqf``, ``random_selection``/``random`` (seed),
    ``address_hash``/``hash``, ``mppp`` (header_bytes), ``bonding``
    (frame_bytes).
    """
    factory = DISCIPLINES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown discipline {name!r}; known: {sorted(set(DISCIPLINES))}"
        )
    return factory(n_channels, **options)


def resolve_discipline(
    spec: Any, n_channels: int, **options: Any
) -> LoadSharer:
    """Normalize any striping-policy spec to a :class:`LoadSharer`.

    Accepts a discipline name (see :func:`make_discipline`), a
    :class:`~repro.core.cfq.CausalFQ` algorithm (wrapped via the paper's
    transformation), or any ready-made load sharer (two-phase
    ``choose``/``notify_sent`` object).
    """
    if isinstance(spec, str):
        sharer = make_discipline(spec, n_channels, **options)
    elif isinstance(spec, CausalFQ):
        sharer = TransformedLoadSharer(spec)
    elif isinstance(spec, LoadSharer) or (
        hasattr(spec, "choose") and hasattr(spec, "notify_sent")
    ):
        sharer = spec
    else:
        raise TypeError(f"cannot use {type(spec).__name__} as a discipline")
    if sharer.n_channels != n_channels:
        raise ValueError(
            f"policy expects {sharer.n_channels} channels, got {n_channels}"
        )
    return sharer


def receiver_mode_for(spec: Any, markers: bool = False) -> str:
    """The resequencing mode matching a sender-side discipline.

    Disciplines that bring their own receiver half declare it via a
    ``receiver_mode`` attribute (MPPP, BONDING).  Simulatable (causal)
    policies get logical reception — ``"marker"`` when the sender emits
    markers, ``"plain"`` otherwise.  Non-causal policies cannot be
    simulated at all, so they fall back to physical arrival order.
    """
    mode = getattr(spec, "receiver_mode", None)
    if mode is not None:
        return mode
    if isinstance(spec, CausalFQ) or getattr(spec, "simulatable", False):
        return "marker" if markers else "plain"
    return "none"


# --------------------------------------------------------------------- #
# sender side


class FastStriper(Striper):
    """A :class:`~repro.core.striper.Striper` with a batched pump.

    Semantically identical to the base per-packet pump for SRR-family
    policies — same channel assignments (the kernel is causal), same
    per-channel packet order, same marker emission points — but the kernel
    is advanced with one ``assign_many`` per chunk and each channel
    receives its packets as one burst.  Requires ports with
    ``send_burst``/``free_capacity``.  Non-SRR policies, enabled tracers,
    and unreconstructable pointer trajectories fall back to the exact base
    pump.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._min_quantum: Optional[float] = None
        if self._kernel is not None:
            self._min_quantum = min(self._kernel.quanta)
        #: pump calls that engaged the batch machinery
        self.batched_pumps = 0
        #: data packets sent through batched chunks
        self.batched_packets = 0
        #: pump calls (or mid-pump bailouts) routed to the per-packet pump
        self.fallback_pumps = 0

    def stats(self) -> Dict[str, int]:
        """Cheap perf counters for the batched pump."""
        return {
            "batched_pumps": self.batched_pumps,
            "batched_packets": self.batched_packets,
            "fallback_pumps": self.fallback_pumps,
        }

    def pump(self) -> int:
        kernel = self._kernel
        if kernel is None or self.tracer.enabled:
            self.fallback_pumps += 1
            return super().pump()
        if self._initial_markers_pending:
            self._initial_markers_pending = False
            self._emit_markers()
        queue = self.input_queue
        if not queue:
            return 0
        if len(queue) < _BATCH_MIN:
            self.fallback_pumps += 1
            return super().pump()
        ports = self.ports
        n = kernel.n_channels
        markers = self._markers_enabled
        position = interval = 0
        if markers:
            policy = self.marker_policy
            position = policy.position % n
            interval = policy.interval_rounds
        sent_total = 0
        while queue:
            free = [port.free_capacity() for port in ports]
            if free[kernel.ptr] <= 0:
                break  # head-of-line: causality forbids sending elsewhere
            budget = 0
            for f in free:
                budget += f
            backlog = len(queue)
            chunk = budget if budget < backlog else backlog
            sizes = [p.size for p in islice(queue, chunk)]
            snapshot = kernel.snapshot()
            chans = kernel.assign_many(sizes)
            end_ptr = kernel.ptr
            # Longest admissible prefix under per-channel free slots.  The
            # first packet is always admissible (free[chans[0]] > 0 was
            # just checked), so q >= 1 and the loop makes progress.
            q = chunk
            for i in range(chunk):
                c = chans[i]
                f = free[c]
                if f <= 0:
                    q = i
                    break
                free[c] = f - 1
            emit = False
            if markers:
                # Walk the pointer trajectory packet by packet: chans[i+1]
                # (or the post-chunk pointer) is the live pointer after
                # packet i.  Each single-channel advance is one potential
                # marker-position crossing; a multi-channel hop (deep
                # overdraw) cannot be reconstructed from the channel
                # vector alone, so it falls back to the per-packet pump.
                crossings = self._crossings_seen
                ptr = chans[0]
                stop = q
                for i in range(q):
                    nxt = chans[i + 1] if i + 1 < chunk else end_ptr
                    if nxt == ptr:
                        continue
                    step = nxt - ptr
                    if step != 1 and step != 1 - n:
                        kernel.restore(snapshot)
                        self.fallback_pumps += 1
                        return sent_total + super().pump()
                    ptr = nxt
                    if nxt == position:
                        crossings += 1
                        if crossings % interval == 0:
                            # Cut after the crossing packet so the marker
                            # batch lands exactly where the per-packet
                            # pump would put it.
                            stop = i + 1
                            emit = True
                            break
                self._crossings_seen = crossings
                q = stop
            if q < chunk:
                kernel.restore(snapshot)
                kernel.assign_many(sizes[:q])
            bursts: Dict[int, List[Any]] = {}
            bytes_sent = 0
            for i in range(q):
                packet = queue.popleft()
                bytes_sent += sizes[i]
                c = chans[i]
                burst = bursts.get(c)
                if burst is None:
                    bursts[c] = [packet]
                else:
                    burst.append(packet)
            for c, burst in bursts.items():
                ports[c].send_burst(burst)
            self.packets_sent += q
            self.bytes_sent += bytes_sent
            sent_total += q
            self.batched_packets += q
            if emit:
                self._emit_markers()
        self.batched_pumps += 1
        return sent_total


class _RecordingPort:
    """A :class:`ChannelPort` proxy reporting data transmissions.

    Reliable mode needs to know *when* and *on which channel* each
    sequenced packet actually left the striper (RTT sampling, per-channel
    retransmission accounting, channel-suspect escalation).  The proxy
    intercepts ``send`` and reports sequenced data packets to the
    reliability layer; everything else forwards to the wrapped port, so
    transports cannot tell the difference.
    """

    def __init__(
        self,
        inner: Any,
        index: int,
        note_sent: Callable[[int, Any], None],
        note_burst: Optional[Callable[[int, List[Any]], None]] = None,
    ) -> None:
        self._inner = inner
        self._index = index
        self._note_sent = note_sent
        self._note_burst = note_burst
        #: cumulative data bytes actually transmitted through this port
        #: (fairness-envelope accounting: includes retransmissions)
        self.data_bytes_sent = 0

    def send(self, packet: Any, force: bool = False) -> bool:
        ok = self._inner.send(packet, force=force)
        if ok and not is_marker(packet):
            self.data_bytes_sent += packet.size
            if getattr(packet, "rseq", None) is not None:
                self._note_sent(self._index, packet)
        return ok

    def can_accept(self) -> bool:
        return self._inner.can_accept()

    @property
    def queue_length(self) -> int:
        return self._inner.queue_length

    @property
    def on_unblocked(self) -> Any:
        # Forward the resume slot so the pipeline's slot-filling and the
        # port's own stall hooks (ARP, credit) see one shared callback.
        return self._inner.on_unblocked

    @on_unblocked.setter
    def on_unblocked(self, fn: Any) -> None:
        self._inner.on_unblocked = fn

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _RecordingBurstPort(_RecordingPort):
    """Recording proxy for burst-capable ports (keeps the fast pump).

    When a ``note_burst`` callback is wired, a whole burst's sequenced
    packets are reported to the ARQ layer in one call (one clock read, one
    timer check) instead of one call per packet; reporting still happens
    *before* the inner ``send_burst``, exactly like the per-packet proxy
    reports before returning from ``send``.
    """

    def send_burst(self, packets: Sequence[Any]) -> None:
        note_burst = self._note_burst
        if note_burst is not None:
            sequenced: List[Any] = []
            for packet in packets:
                if not is_marker(packet):
                    self.data_bytes_sent += packet.size
                    if getattr(packet, "rseq", None) is not None:
                        sequenced.append(packet)
            if sequenced:
                note_burst(self._index, sequenced)
        else:
            for packet in packets:
                if not is_marker(packet):
                    self.data_bytes_sent += packet.size
                    if getattr(packet, "rseq", None) is not None:
                        self._note_sent(self._index, packet)
        self._inner.send_burst(packets)

    def free_capacity(self) -> int:
        return self._inner.free_capacity()


def _wrap_recording_ports(
    ports: Sequence[Any],
    note_sent: Callable[[int, Any], None],
    note_burst: Optional[Callable[[int, List[Any]], None]] = None,
) -> List[Any]:
    return [
        (
            _RecordingBurstPort(port, i, note_sent, note_burst)
            if hasattr(port, "send_burst") and hasattr(port, "free_capacity")
            else _RecordingPort(port, i, note_sent)
        )
        for i, port in enumerate(ports)
    ]


class StripeSenderPipeline:
    """The one striping send pump, over any transport's channel ports.

    Args:
        ports: one :class:`ChannelPort` per channel.
        discipline: anything :func:`resolve_discipline` accepts — a name,
            a :class:`~repro.core.cfq.CausalFQ`, or a load sharer.
        marker_policy: marker emission policy (SRR-family only).
        marker_decorator / on_marker: per-marker hooks (credit piggyback).
        credit: optional FCVC :class:`~repro.transport.credit.CreditSender`;
            its ``on_unblocked`` is pointed at the pump.
        sim: event scheduler (``schedule(delay, fn)``/``now``) — required
            only for keepalive markers.
        marker_keepalive_s: if set, force a marker batch whenever no marker
            was emitted for this long (stalled/idle senders must keep the
            receiver — and piggybacked credits — refreshed).
        fast: force the batched (True) or per-packet (False) pump; by
            default the batched pump is used when every port supports
            ``send_burst``/``free_capacity``.
        reliability: service level — ``"best_effort"`` / ``"quasi_fifo"``
            (the default; both leave the submit path untouched) or
            ``"reliable"``, which sequences every submitted packet
            through a :class:`~repro.transport.reliability.ReliableSender`
            (selective-repeat ARQ; requires ``sim``).
        reliability_options: keyword arguments forwarded to
            :class:`~repro.transport.reliability.ReliableSender`
            (``window_packets``, ``max_retries``,
            ``on_channel_suspect``, ...).
        discipline_options: forwarded to :func:`make_discipline` when
            ``discipline`` is a name.
        fabric: optional :class:`~repro.transport.fabric.FabricScheduler`
            mounted above the submit path (equivalent to calling
            :meth:`attach_fabric` after construction): flow-addressed
            submission (``submit(flow_id, packet)``) with per-flow
            weighted-DRR scheduling and per-flow backpressure.
    """

    def __init__(
        self,
        ports: Sequence[ChannelPort],
        discipline: Any,
        *,
        marker_policy: Optional[MarkerPolicy] = None,
        marker_decorator: Optional[Callable[[int, Any], None]] = None,
        on_marker: Optional[Callable[[int, Any], None]] = None,
        credit: Any = None,
        sim: Any = None,
        marker_keepalive_s: Optional[float] = None,
        fast: Optional[bool] = None,
        tracer: Tracer = NULL_TRACER,
        clock: Optional[Callable[[], float]] = None,
        reliability: str = "quasi_fifo",
        reliability_options: Optional[Dict[str, Any]] = None,
        discipline_options: Optional[Dict[str, Any]] = None,
        fabric: Any = None,
    ) -> None:
        if reliability not in RELIABILITY_MODES:
            raise ValueError(
                f"unknown reliability mode {reliability!r}; "
                f"known: {RELIABILITY_MODES}"
            )
        self.reliability = reliability
        self.reliable: Optional[ReliableSender] = None
        self.ports: List[Any] = list(ports)
        self.sim = sim
        sharer = resolve_discipline(
            discipline, len(self.ports), **(discipline_options or {})
        )
        self.sharer = sharer
        #: discipline-supplied packet transformation (MPPP headers,
        #: BONDING frames); None for the paper's no-modification schemes.
        self._wrap = getattr(sharer, "wrap_packet", None)
        if reliability == "reliable":
            if sim is None:
                raise ValueError("reliable mode needs an event scheduler")
            if self._wrap is not None:
                raise ValueError(
                    "reliable mode needs a non-transforming discipline "
                    "(MPPP/BONDING fragment packets below the ARQ layer)"
                )
            # Recording proxies report actual transmissions (channel +
            # time) back to the ARQ layer; the striper stays oblivious.
            self.ports = _wrap_recording_ports(
                self.ports,
                lambda c, p: self.reliable.note_sent(c, p),
                lambda c, ps: self.reliable.note_burst(c, ps),
            )
            arq_options = dict(reliability_options or {})
            arq_options.setdefault("submit_many", self._stripe_many)
            self.reliable = ReliableSender(self._stripe, sim, **arq_options)
        if fast is None:
            fast = all(
                hasattr(port, "send_burst") and hasattr(port, "free_capacity")
                for port in self.ports
            )
        if clock is None and sim is not None:
            clock = lambda: sim.now  # noqa: E731
        striper_cls = FastStriper if fast else Striper
        self.striper = striper_cls(
            sharer,
            self.ports,
            marker_policy,
            on_marker=on_marker,
            marker_decorator=marker_decorator,
            tracer=tracer,
            clock=clock,
        )
        self.credit = credit
        if credit is not None:
            credit.on_unblocked = self._pump
        for port in self.ports:
            # Fill empty resume slots; ports without the slot (or with one
            # already claimed) are left alone.
            if getattr(port, "on_unblocked", _MISSING) is None:
                port.on_unblocked = self._pump
        self.messages_submitted = 0
        self._closed = False
        self.fabric: Any = None
        self._fabric_backlog_limit = 0
        if fabric is not None:
            self.attach_fabric(fabric)
        self._keepalive_s = marker_keepalive_s
        self._markers_at_last_tick = 0
        if marker_keepalive_s is not None:
            if marker_policy is None:
                raise ValueError("keepalive markers need a marker policy")
            if sim is None:
                raise ValueError("keepalive markers need an event scheduler")
            sim.schedule(marker_keepalive_s, self._keepalive_tick)

    # ------------------------------------------------------------------ #
    # multi-flow fabric mount

    def attach_fabric(
        self, fabric: Any, *, backlog_limit: Optional[int] = None
    ) -> Any:
        """Mount a flow-layer scheduler (FQ across flows) on this pipeline.

        ``fabric`` is duck-typed (``bind``/``submit``/``can_submit``/
        ``pump``), normally a
        :class:`~repro.transport.fabric.FabricScheduler`.  It drains into
        the pipeline's ordinary submit path — through the ARQ layer in
        reliable mode — but only while the pipeline is ready: reliable
        window open and striper input queue below ``backlog_limit``
        (default ``4 × n_channels``).  Backlog therefore waits in
        per-flow queues where the weighted DRR arbitrates it, instead of
        congealing into the shared FIFO below, and every transport
        adapter built on this pipeline gets multi-flow submission with
        no adapter-side flow logic.
        """
        if backlog_limit is None:
            backlog_limit = 4 * len(self.ports)
        self.fabric = fabric
        self._fabric_backlog_limit = backlog_limit
        fabric.bind(self._submit, ready=self._fabric_ready)
        if self.reliable is not None:
            # A draining ARQ window reopens the fabric gate: chain the
            # fabric pump behind any callback the owner already installed.
            chained = self.reliable.on_window_open

            def _window_open() -> None:
                if chained is not None:
                    chained()
                fabric.pump()

            self.reliable.on_window_open = _window_open
        return fabric

    def _fabric_ready(self) -> bool:
        if self.reliable is not None and not self.reliable.can_submit():
            return False
        return self.striper.backlog < self._fabric_backlog_limit

    def submit(self, flow_id: Any, packet: Packet) -> bool:
        """Flow-addressed submission: queue ``packet`` on ``flow_id``.

        Requires a mounted fabric (``fabric=`` or :meth:`attach_fabric`).
        Returns False when the flow's bounded queue refused the packet.
        """
        if self.fabric is None:
            raise RuntimeError(
                "flow-addressed submit requires a fabric "
                "(pass fabric= or call attach_fabric())"
            )
        self.messages_submitted += 1
        return self.fabric.submit(flow_id, packet)

    def send_message(
        self, size: int, payload: Any = None, flow_id: Any = None
    ) -> Packet:
        """Submit one application message of ``size`` bytes for striping."""
        packet = Packet(size=size, seq=self.messages_submitted, payload=payload)
        if flow_id is not None:
            self.submit(flow_id, packet)
            return packet
        self.messages_submitted += 1
        self._submit(packet)
        return packet

    def submit_packet(self, packet: Packet, flow_id: Any = None) -> None:
        """Submit a caller-constructed packet (e.g. video trace packets)."""
        if flow_id is not None:
            self.submit(flow_id, packet)
            return
        self.messages_submitted += 1
        self._submit(packet)

    def submit_packets(self, packets: Sequence[Packet]) -> None:
        """Submit a burst of caller-constructed packets in one call.

        Behavior-identical to calling :meth:`submit_packet` per packet
        (same order, same instant), but the whole burst flows through the
        ARQ layer and the striper as batches: one rseq-stamping pass, one
        pump.  The direct (non-fabric) submit path only.
        """
        self.messages_submitted += len(packets)
        self._submit_many(packets)

    def _submit(self, packet: Any) -> None:
        if self.reliable is not None:
            self.reliable.submit(packet)
        else:
            self._stripe(packet)

    def _submit_many(self, packets: Sequence[Any]) -> None:
        if self.reliable is not None:
            self.reliable.submit_many(list(packets))
        else:
            self._stripe_many(packets)

    def _stripe(self, packet: Any) -> None:
        if self._wrap is not None:
            for unit in self._wrap(packet):
                self.striper.submit(unit)
        else:
            self.striper.submit(packet)

    def _stripe_many(self, packets: Sequence[Any]) -> None:
        if self._wrap is not None:
            for packet in packets:
                for unit in self._wrap(packet):
                    self.striper.submit(unit)
        else:
            self.striper.submit_many(packets)

    def can_submit(self, flow_id: Any = None) -> bool:
        """Backpressure signal: False while a reliable window is full.

        With ``flow_id``, per-flow backpressure instead: False only while
        that flow's bounded fabric queue is full (a stalled sibling flow
        or a full shared window does not show through).
        """
        if flow_id is not None:
            if self.fabric is None:
                return False
            return self.fabric.can_submit(flow_id)
        return self.reliable is None or self.reliable.can_submit()

    def on_ack(self, ack: Any) -> None:
        """Feed a reverse-path acknowledgment to the reliability layer.

        Accepts an :class:`~repro.transport.reliability.AckPacket`, a
        bare :class:`~repro.core.packet.SackInfo`, or anything carrying
        a ``sack`` attribute (a SACK-bearing reverse marker).
        """
        if self.reliable is not None:
            self.reliable.on_ack(ack)

    def flush(self) -> None:
        """Flush discipline-buffered residue (a partial BONDING frame)."""
        flush = getattr(self.sharer, "flush", None)
        if flush is None:
            return
        unit = flush()
        if unit is not None:
            self.striper.submit(unit)

    @property
    def backlog(self) -> int:
        return self.striper.backlog

    def pump(self) -> int:
        sent = self.striper.pump()
        if self.fabric is not None:
            self.fabric.pump()
        return sent

    def _pump(self) -> None:
        self.striper.pump()
        if self.fabric is not None:
            # Freed port/credit capacity may have reopened the fabric
            # gate; refill the striper from the per-flow queues.
            self.fabric.pump()

    def close(self) -> None:
        self._closed = True
        for port in self.ports:
            close = getattr(port, "close", None)
            if close is not None:
                close()

    def _keepalive_tick(self) -> None:
        if self._closed:
            # A finished endpoint must stop generating sim events (and must
            # not force markers into closed ports).
            return
        if self.striper.markers_sent == self._markers_at_last_tick:
            self.striper.force_marker_batch()
        self._markers_at_last_tick = self.striper.markers_sent
        self.sim.schedule(self._keepalive_s, self._keepalive_tick)


# --------------------------------------------------------------------- #
# receiver side


class ChannelFailureDetector:
    """Receiver-side dead-channel watchdog, transport-agnostic.

    Every ``check_interval`` seconds it compares per-channel arrival
    times; a channel that saw nothing for ``silence_threshold`` seconds
    while the others progressed is declared dead and reported through the
    bound failure callback — a session receiver reconfigures the sender,
    a plain pipeline writes the channel off so delivery keeps flowing.
    """

    def __init__(
        self,
        sim: Any,
        silence_threshold: float = 0.25,
        check_interval: float = 0.05,
    ) -> None:
        self.sim = sim
        self.silence_threshold = silence_threshold
        self.check_interval = check_interval
        self.receiver: Any = None
        self.last_arrival: List[float] = []
        self.failed: set = set()
        self.failures_reported: List[int] = []
        self._on_failure: Optional[Callable[[int], Any]] = None
        self._on_revival: Optional[Callable[[int], Any]] = None
        self._active: Optional[Callable[[], Sequence[int]]] = None
        self._started = False

    def bind(
        self,
        n_channels: int,
        on_failure: Callable[[int], Any],
        active_channels: Optional[Callable[[], Sequence[int]]] = None,
        on_revival: Optional[Callable[[int], Any]] = None,
    ) -> None:
        """Generic wiring: watch ``n_channels``, report via ``on_failure``.

        ``active_channels`` yields the channel set currently expected to
        carry traffic (a session's live subset); by default every channel
        not yet declared failed.  ``on_revival`` is stored for lifecycle
        subclasses; the fail-only detector never invokes it.
        """
        self.last_arrival = [0.0] * n_channels
        self._on_failure = on_failure
        self._on_revival = on_revival
        if active_channels is None:
            active_channels = lambda: [  # noqa: E731
                i for i in range(n_channels) if i not in self.failed
            ]
        self._active = active_channels

    def attach(self, receiver: Any) -> None:
        """Session-receiver wiring (compatibility surface).

        The receiver must expose ``n_ports``, ``request_drop_channel`` and
        ``session.config.active_channels``.
        """
        self.receiver = receiver
        self.bind(
            receiver.n_ports,
            receiver.request_drop_channel,
            lambda: receiver.session.config.active_channels,
        )

    def note_arrival(self, port_index: int) -> None:
        if not 0 <= port_index < len(self.last_arrival):
            # A negative index would silently alias last_arrival[-1] and an
            # oversized one would vanish — both are wiring bugs upstream.
            raise ValueError(
                f"arrival on port {port_index}, but the detector watches "
                f"{len(self.last_arrival)} channels (was bind() called?)"
            )
        self.last_arrival[port_index] = self.sim.now
        if not self._started:
            self._started = True
            self.sim.schedule(self.check_interval, self._check)

    def _check(self) -> None:
        if self._on_failure is None or self._active is None:
            return
        now = self.sim.now
        active = list(self._active())
        alive = [
            i
            for i in active
            if now - self.last_arrival[i] < self.silence_threshold
        ]
        if alive and len(alive) < len(active):
            for index in active:
                if index not in alive and index not in self.failed:
                    self.failed.add(index)
                    self.failures_reported.append(index)
                    self._on_failure(index)
        self.sim.schedule(self.check_interval, self._check)

    def note_suspect(self, channel: int) -> None:
        """An external signal suspects ``channel`` (ARQ max-retry
        escalation: a packet that keeps dying on one channel looks
        exactly like that channel dying).

        Declares the channel failed through the same path a silence
        detection would, once; lifecycle subclasses then run their
        normal probing/revival machinery on it.
        """
        if self._on_failure is None:
            raise ValueError(
                f"suspect on channel {channel}, but the detector is not "
                "bound (was bind() called?)"
            )
        if not 0 <= channel < len(self.last_arrival):
            raise ValueError(
                f"suspect on channel {channel}, but the detector watches "
                f"{len(self.last_arrival)} channels"
            )
        if channel in self.failed:
            return
        self.failed.add(channel)
        self.failures_reported.append(channel)
        self._on_failure(channel)


class ChannelLifecycleManager(ChannelFailureDetector):
    """Full channel lifecycle: ``active -> failed -> probing -> revived``.

    Generalizes the fail-only watchdog.  A failed channel that shows signs
    of life again (sender probes, or data arrivals from stale in-flight
    packets) moves to ``probing``; once it has produced
    ``revival_arrivals`` arrivals *and* its hold-down has elapsed it is
    declared ``revived`` — the bound revival callback re-admits it (a plain
    pipeline un-fails its resequencer; a session receiver acknowledges the
    sender's probes so the sender rejoins the channel via a RESET).

    Flap damping: each failure that follows a revival within
    ``flap_window`` seconds doubles the channel's hold-down (capped at
    ``max_down_time``), so an intermittent link is re-admitted ever more
    reluctantly instead of thrashing the bundle with resets.
    """

    #: lifecycle states, as stored in :attr:`state`
    ACTIVE = "active"
    FAILED = "failed"
    PROBING = "probing"
    REVIVED = "revived"

    def __init__(
        self,
        sim: Any,
        silence_threshold: float = 0.25,
        check_interval: float = 0.05,
        *,
        revival_arrivals: int = 2,
        min_down_time: float = 0.2,
        flap_window: float = 2.0,
        flap_factor: float = 2.0,
        max_down_time: float = 5.0,
    ) -> None:
        super().__init__(sim, silence_threshold, check_interval)
        if revival_arrivals < 1:
            raise ValueError("revival_arrivals must be >= 1")
        self.revival_arrivals = revival_arrivals
        self.min_down_time = min_down_time
        self.flap_window = flap_window
        self.flap_factor = flap_factor
        self.max_down_time = max_down_time
        self.state: List[str] = []
        self.revivals_reported: List[int] = []
        self.flap_counts: List[int] = []
        self._failed_at: List[float] = []
        self._life_seen: List[int] = []
        self._hold_down: List[float] = []
        self._revived_at: List[float] = []

    def bind(
        self,
        n_channels: int,
        on_failure: Callable[[int], Any],
        active_channels: Optional[Callable[[], Sequence[int]]] = None,
        on_revival: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self._user_on_failure = on_failure
        super().bind(
            n_channels, self._note_failure, active_channels, on_revival
        )
        self.state = [self.ACTIVE] * n_channels
        self.flap_counts = [0] * n_channels
        self._failed_at = [0.0] * n_channels
        self._life_seen = [0] * n_channels
        self._hold_down = [self.min_down_time] * n_channels
        self._revived_at = [float("-inf")] * n_channels

    def attach(self, receiver: Any) -> None:
        super().attach(receiver)
        # Let the session receiver consult us when sender probes arrive
        # (gating the ProbeAck behind hold-down + revival threshold) and
        # tell us when a rejoin RESET re-activates a channel.
        session = getattr(receiver, "session", None)
        if session is not None and hasattr(session, "lifecycle"):
            session.lifecycle = self

    def channel_state(self, channel: int) -> str:
        return self.state[channel]

    def hold_down(self, channel: int) -> float:
        """Current flap-damped hold-down of ``channel``, in seconds."""
        return self._hold_down[channel]

    # -- failure path -------------------------------------------------- #

    def _note_failure(self, channel: int) -> None:
        now = self.sim.now
        self.state[channel] = self.FAILED
        self._failed_at[channel] = now
        self._life_seen[channel] = 0
        if now - self._revived_at[channel] < self.flap_window:
            # Flapping: it died again right after we let it back in.
            self.flap_counts[channel] += 1
            self._hold_down[channel] = min(
                self._hold_down[channel] * self.flap_factor,
                self.max_down_time,
            )
        else:
            self._hold_down[channel] = self.min_down_time
        self._user_on_failure(channel)

    # -- revival path -------------------------------------------------- #

    def note_arrival(self, port_index: int) -> None:
        """Every physical arrival — data, marker, or probe — is a life sign.

        On a failed channel, arrivals move it to ``probing`` and count
        toward the revival threshold; revival itself fires here too, so a
        plain pipeline (no probes) still revives on returning data.
        """
        super().note_arrival(port_index)
        if self.state and self.state[port_index] in (
            self.FAILED,
            self.PROBING,
        ):
            self.state[port_index] = self.PROBING
            self._life_seen[port_index] += 1
            self._try_revive(port_index)

    def note_probe(self, port_index: int) -> bool:
        """Should a sender probe on ``port_index`` be acknowledged?

        Life signals are counted by :meth:`note_arrival` (the transport
        reports every arrival, probes included); this method only
        *evaluates* the channel's standing — and performs the revival
        transition when the threshold and hold-down have been cleared.
        Returns True when the probe should be acknowledged.
        """
        if not 0 <= port_index < len(self.state):
            raise ValueError(
                f"probe on port {port_index}, but the lifecycle manager "
                f"watches {len(self.state)} channels (was bind() called?)"
            )
        self.last_arrival[port_index] = self.sim.now
        if self.state[port_index] in (self.ACTIVE, self.REVIVED):
            return True
        return self._try_revive(port_index)

    def note_rejoin(self, active_channels: Sequence[int]) -> None:
        """A reconfiguration re-activated channels (rejoin RESET installed).

        Rearms silence detection for every re-admitted channel: clears the
        ``failed`` latch (so a second death is reported again) and resets
        its arrival clock (its ``last_arrival`` is stale from the outage,
        which would otherwise re-fail it on the next check).
        """
        now = self.sim.now
        for channel in active_channels:
            if channel in self.failed or self.state[channel] != self.ACTIVE:
                self.failed.discard(channel)
                self.last_arrival[channel] = now
                if self.state[channel] != self.REVIVED:
                    self._revived_at[channel] = now
                self.state[channel] = self.ACTIVE

    def _try_revive(self, channel: int) -> bool:
        now = self.sim.now
        if self._life_seen[channel] < self.revival_arrivals:
            return False
        if now - self._failed_at[channel] < self._hold_down[channel]:
            return False  # hysteresis: not convinced yet, keep damping
        self.state[channel] = self.REVIVED
        self.revivals_reported.append(channel)
        self._revived_at[channel] = now
        self.failed.discard(channel)
        if self._on_revival is not None:
            self._on_revival(channel)
        return True


class SenderHealthMonitor:
    """Sender-side channel health: queue-stall and credit-starvation watch.

    The receiver-side detector sees silence; the sender sees *backpressure*.
    Every ``check_interval`` seconds each port is examined: a port that is
    blocked (its transmit queue full, or its FCVC credit exhausted) and
    makes no drain progress for ``stall_timeout`` seconds while traffic is
    pending is declared stalled and reported through the bound callback —
    a session sender excludes the channel via a reconfiguration RESET
    without waiting for the receiver to notice the silence.
    """

    def __init__(
        self,
        sim: Any,
        stall_timeout: float = 0.25,
        check_interval: float = 0.05,
    ) -> None:
        self.sim = sim
        self.stall_timeout = stall_timeout
        self.check_interval = check_interval
        self.stalled: set = set()
        self.stalls_reported: List[int] = []
        self._ports: List[Any] = []
        self._on_stall: Optional[Callable[[int], Any]] = None
        self._credit: Any = None
        self._backlog: Callable[[], int] = lambda: 1
        self._last_progress: List[float] = []
        self._last_queue: List[int] = []
        self._last_drained: List[int] = []

    def bind(
        self,
        ports: Sequence[Any],
        on_stall: Callable[[int], Any],
        *,
        credit: Any = None,
        backlog_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        """Watch ``ports``; report stalled port indices via ``on_stall``.

        ``credit`` (a :class:`~repro.transport.credit.CreditSender`) adds
        credit starvation as a blocking condition; ``backlog_fn`` reports
        pending traffic (no backlog means an idle sender, never a stall).
        """
        self._ports = list(ports)
        self._on_stall = on_stall
        self._credit = credit
        if backlog_fn is not None:
            self._backlog = backlog_fn
        now = self.sim.now
        self._last_progress = [now] * len(self._ports)
        self._last_queue = [port.queue_length for port in self._ports]
        self._last_drained = [
            getattr(port, "drained", 0) for port in self._ports
        ]
        self.sim.schedule(self.check_interval, self._check)

    def clear(self, port_index: int) -> None:
        """Forget a stall (the channel was reset/revived); re-arm the watch."""
        self.stalled.discard(port_index)
        self._last_progress[port_index] = self.sim.now

    def _check(self) -> None:
        now = self.sim.now
        backlogged = self._backlog() > 0
        for i, port in enumerate(self._ports):
            qlen = port.queue_length
            blocked = not port.can_accept()
            if (
                self._credit is not None
                and self._credit.available(i) <= 0
            ):
                blocked = True
            drained = getattr(port, "drained", None)
            if drained is not None:
                # Transmission completions are the real progress signal: a
                # saturated queue sits at its limit between checks even
                # while frames flow through it.
                progressed = drained > self._last_drained[i]
                self._last_drained[i] = drained
            else:
                progressed = qlen < self._last_queue[i]
            self._last_queue[i] = qlen
            # Traffic is pending if the pipeline has backlog *or* this
            # port itself still holds undrained packets.
            if progressed or not blocked or not (backlogged or qlen > 0):
                self._last_progress[i] = now
            elif (
                i not in self.stalled
                and now - self._last_progress[i] >= self.stall_timeout
            ):
                self.stalled.add(i)
                self.stalls_reported.append(i)
                assert self._on_stall is not None
                self._on_stall(i)
        self.sim.schedule(self.check_interval, self._check)


class StripeReceiverPipeline:
    """The one striped-receive pump, over any transport's arrivals.

    Arrivals enter via :meth:`push` (or the per-channel closures from
    :meth:`channel_handler`); the pipeline applies the physical buffer-cap
    drop rule, extracts piggybacked credits from markers, feeds the
    resequencer built by
    :func:`~repro.core.resequencer.make_resequencer`, and reports
    consumption to the FCVC credit layer.

    Args:
        n_channels: striped channel count.
        algorithm: the sender's CFQ algorithm (simulated for logical
            reception); None for modes that need none.
        mode: resequencing mode (``marker``/``plain``/``none``/``mppp``/
            ``bonding``).
        on_message: callback for in-order application messages.
        buffer_packets: per-channel physical buffer cap; data arrivals
            beyond it are dropped (counted) — the loss credit flow
            control eliminates.
        credit: optional :class:`~repro.transport.credit.CreditReceiver`
            notified as buffered packets are consumed.
        failure_detector: optional :class:`ChannelFailureDetector`; it is
            bound to :meth:`fail_channel`, so plain pipelines survive a
            dead channel (delivery degrades to quasi-FIFO with gaps
            instead of stalling forever).
        sim: event scheduler, used for the marker-receiver clock and the
            MPPP gap timeout.
        reliability: service level — ``"best_effort"`` / ``"quasi_fifo"``
            deliver the resequencer output as-is (the default);
            ``"reliable"`` runs it through a
            :class:`~repro.transport.reliability.ReliableReceiver`
            (exactly-once, in-order, acks on the reverse path).
        send_ack: reliable mode's ack transmitter, ``fn(SackInfo)``.
        reliability_options: keyword arguments forwarded to
            :class:`~repro.transport.reliability.ReliableReceiver`.
    """

    def __init__(
        self,
        n_channels: int,
        algorithm: Optional[CausalFQ] = None,
        *,
        mode: str = "marker",
        on_message: Optional[Callable[[Any], None]] = None,
        buffer_packets: Optional[int] = None,
        credit: Any = None,
        failure_detector: Optional[ChannelFailureDetector] = None,
        clock: Optional[Callable[[], float]] = None,
        sim: Any = None,
        reliability: str = "quasi_fifo",
        send_ack: Optional[Callable[[Any], None]] = None,
        reliability_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if reliability not in RELIABILITY_MODES:
            raise ValueError(
                f"unknown reliability mode {reliability!r}; "
                f"known: {RELIABILITY_MODES}"
            )
        self.n_channels = n_channels
        self.sim = sim
        self.on_message = on_message
        self.buffer_packets = buffer_packets
        self.buffer_drops = 0
        self.delivered: List[Any] = []
        #: keep every delivered packet in :attr:`delivered` (the default).
        #: Packet-pool harnesses switch this off: a retained reference
        #: would alias the recycled object's next life.
        self.retain_delivered = True
        #: invoked as fn(channel, credit) when a piggybacked credit rides
        #: an arriving marker (the reverse direction's flow-control state).
        self.credit_sink: Optional[Callable[[int, int], None]] = None
        #: invoked as fn(SackInfo) when a piggybacked SACK rides an
        #: arriving marker (acks for the reverse direction's sender).
        self.sack_sink: Optional[Callable[[Any], None]] = None
        #: undecodable marker frames dropped by :meth:`push_wire`
        self.marker_decode_errors = 0
        self.reliability = reliability
        self.reliable: Optional[ReliableReceiver] = None
        if reliability == "reliable":
            self.reliable = ReliableReceiver(
                self._deliver_final,
                send_ack=send_ack,
                sim=sim,
                **(reliability_options or {}),
            )
        self.credit = credit
        if clock is None and sim is not None:
            clock = lambda: sim.now  # noqa: E731
        # Bind the resequencer's delivery callback directly to its
        # destination (ARQ receiver or final delivery) — one less call
        # per delivered packet; ``reliable`` is fixed at construction.
        self.resequencer = make_resequencer(
            algorithm,
            mode,
            n_channels=n_channels,
            on_deliver=(
                self.reliable.push if self.reliable is not None
                else self._deliver_final
            ),
            clock=clock,
            sim=sim,
        )
        self._pushed_data: List[int] = [0] * n_channels
        self._credited: List[int] = [0] * n_channels
        self.failed_channels: set = set()
        self.failure_detector = failure_detector
        if failure_detector is not None:
            failure_detector.bind(
                n_channels, self.fail_channel, on_revival=self.revive_channel
            )

    # ------------------------------------------------------------------ #

    def push(self, channel: int, packet: Any) -> List[Any]:
        """Physical arrival of ``packet`` on ``channel``.

        Returns the application packets delivered in logical order as a
        result (also passed to ``on_message``).
        """
        detector = self.failure_detector
        if detector is not None:
            detector.note_arrival(channel)
        if not is_marker(packet):
            if (
                self.buffer_packets is not None
                and self._buffered_data(channel) >= self.buffer_packets
            ):
                self.buffer_drops += 1
                return []
            self._pushed_data[channel] += 1
        else:
            piggyback = piggybacked_credit(packet)
            if piggyback is not None and self.credit_sink is not None:
                self.credit_sink(*piggyback)
            sack = piggybacked_sack(packet)
            if sack is not None and self.sack_sink is not None:
                self.sack_sink(sack)
        out = self.resequencer.push(channel, packet)
        if self.credit is not None:
            self._issue_credits()
        return out

    def push_wire(self, channel: int, data: bytes) -> List[Any]:
        """Physical arrival of an *encoded marker frame* on ``channel``.

        Decodes via :func:`~repro.core.markers.decode_marker`; malformed
        frames (truncated, oversized, corrupt) are counted in
        :attr:`marker_decode_errors` and dropped instead of surfacing
        struct errors into the arrival path.
        """
        try:
            marker = decode_marker(data)
        except MarkerDecodeError:
            self.marker_decode_errors += 1
            return []
        return self.push(channel, marker)

    def channel_handler(self, index: int) -> Callable[[Any], None]:
        """A per-channel arrival callback (for transports that demux)."""
        if (
            self.buffer_packets is None
            and self.credit is None
            and self.failure_detector is None
            and self.sack_sink is None
        ):
            # Hot path (the fast transport): no drop rule, no credits, no
            # watchdog — skip their per-packet checks entirely.  Reliable
            # mode rides along fine: the ARQ receiver hangs off the
            # resequencer's delivery callback, not off this arrival path.
            push = self.resequencer.push
            pushed = self._pushed_data

            def handle(packet: Any) -> None:
                if not is_marker(packet):
                    pushed[index] += 1
                push(index, packet)

            return handle

        def handle(packet: Any) -> None:
            self.push(index, packet)

        return handle

    def fail_channel(self, channel: int) -> List[Any]:
        """Declare a channel dead so delivery does not block on it."""
        if channel in self.failed_channels:
            return []
        self.failed_channels.add(channel)
        fail = getattr(self.resequencer, "fail_channel", None)
        if fail is None:
            return []
        return fail(channel)

    def revive_channel(self, channel: int) -> None:
        """Welcome a failed channel back into the bundle.

        The resequencer stops assuming its packets lost; in marker mode the
        next marker on the channel resyncs its simulated state (condition
        C1), so delivery re-aligns without a session reset.
        """
        if channel not in self.failed_channels:
            return
        self.failed_channels.discard(channel)
        revive = getattr(self.resequencer, "revive_channel", None)
        if revive is not None:
            revive(channel)

    # ------------------------------------------------------------------ #

    def _buffered_data(self, index: int) -> int:
        """Data packets currently buffered on a channel (markers excluded)."""
        buffers = getattr(self.resequencer, "buffers", None)
        if buffers is None:
            return 0
        return sum(1 for p in buffers[index] if not is_marker(p))

    def _issue_credits(self) -> None:
        """Report newly consumed packets on every channel to the credit layer.

        Consumed = pushed into the channel buffer minus still buffered; a
        single push can unblock deliveries on *other* channels, so all
        channels are re-examined.
        """
        credit = self.credit
        assert credit is not None
        for index in range(len(self._pushed_data)):
            consumed = self._pushed_data[index] - self._buffered_data(index)
            while self._credited[index] < consumed:
                self._credited[index] += 1
                credit.on_consumed(index)

    def _deliver(self, packet: Any) -> None:
        """Resequencer output: quasi-FIFO stream (still with loss gaps)."""
        if self.reliable is not None:
            self.reliable.push(packet)
        else:
            self._deliver_final(packet)

    def _deliver_final(self, packet: Any) -> None:
        if self.retain_delivered:
            self.delivered.append(packet)
        if self.on_message is not None:
            self.on_message(packet)
