"""The transport-agnostic striping endpoint layer.

Every transport stack in this package — UDP sockets, session-managed UDP,
TCP connections, the direct-to-channel fast path, duplex sessions — used
to carry its own copy of the same machinery: a stripe pump feeding channel
ports, marker placement, credit hooks, a per-channel receive buffer with a
drop rule, logical reception through a resequencer, and (sometimes) a
dead-channel watchdog.  This module is the single copy.

* :class:`ChannelPort` — the protocol a transport must implement per
  striped channel: ``send`` / ``can_accept`` / ``queue_length``, plus
  optional ``send_burst`` + ``free_capacity`` (enables the batched fast
  pump), ``close``, and an ``on_unblocked`` callback slot.
* :class:`StripeSenderPipeline` — kernel-driven stripe pump over any port
  list: the batched :class:`FastStriper` when the ports support bursts,
  FCVC credit integration, and packet-wrapping disciplines (MPPP headers,
  BONDING frames).
* :class:`StripeReceiverPipeline` — per-channel buffering with the
  physical buffer-cap drop rule, plus everything order-related delegated
  to the discipline's synchronization model.

How sender and receiver agree on order is **not** this module's business
any more: each pipeline owns a
:class:`~repro.transport.sync_model.SynchronizationModel` (marker
placement/keepalive and simulated-sender reception for the paper's
schemes, direct delivery for marker-free hash schemes, header reception
for MPPP/BONDING), built from the discipline registry's ``sync_model``
axis (:mod:`repro.transport.discipline`).  Channel-health machinery
(failure detection, lifecycle, stall watch) lives in
:mod:`repro.transport.health`.  Both are re-exported here for
compatibility.

The module deliberately imports nothing from :mod:`repro.net`,
:mod:`repro.sim`, or the concrete transports: a pipeline only sees ports
and (optionally) a duck-typed event scheduler, which is what makes the
same code run over UDP sockets, TCP streams, raw simulated channels, or
the in-memory list ports the offline tests use.
"""

from __future__ import annotations

from itertools import islice
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.cfq import CausalFQ
from repro.core.packet import Packet, is_marker
from repro.core.striper import MarkerPolicy, Striper
from repro.sim.trace import NULL_TRACER, Tracer
from repro.transport.discipline import (
    DISCIPLINES,
    SYNC_MODELS,
    make_discipline,
    receiver_mode_for,
    resolve_discipline,
    sync_model_for,
)
from repro.transport.health import (
    ChannelFailureDetector,
    ChannelLifecycleManager,
    SenderHealthMonitor,
)
from repro.transport.fec import FecReceiver, FecSender
from repro.transport.reliability import (
    RELIABILITY_MODES,
    ReliableReceiver,
    ReliableSender,
    arq_enabled,
    fec_enabled,
)
from repro.transport.sync_model import (
    HashSyncModel,
    HeaderSyncModel,
    MarkerSyncModel,
    SynchronizationModel,
    make_sync_model,
)

__all__ = [
    "DISCIPLINES",
    "SYNC_MODELS",
    "ChannelFailureDetector",
    "ChannelLifecycleManager",
    "ChannelPort",
    "FastStriper",
    "HashSyncModel",
    "HeaderSyncModel",
    "MarkerSyncModel",
    "SenderHealthMonitor",
    "StripeReceiverPipeline",
    "StripeSenderPipeline",
    "SynchronizationModel",
    "make_discipline",
    "make_sync_model",
    "receiver_mode_for",
    "resolve_discipline",
    "sync_model_for",
]

#: A value safely larger than any queue limit, used for unbounded queues.
_UNBOUNDED = 1 << 30

#: Input backlogs below this run the per-packet pump: snapshotting and
#: scanning the batch machinery costs more than it saves for a couple of
#: packets (the common case for per-submit pumps of a closed-loop source).
_BATCH_MIN = 4

_MISSING = object()


@runtime_checkable
class ChannelPort(Protocol):
    """What the endpoint layer needs from one striped channel.

    Required surface::

        send(packet, force=False) -> bool   # enqueue for transmission
        can_accept() -> bool                # queue space for one more?
        queue_length -> int                 # packets queued (depth policies)

    Optional surface, detected by attribute presence:

    * ``send_burst(packets)`` + ``free_capacity() -> int`` — enables the
      batched fast pump (:class:`FastStriper`).
    * ``close()`` — release the underlying transport resource.
    * ``on_unblocked`` — a slot the pipeline fills with its pump so the
      port can resume a stalled sender (ARP resolution, credit arrival).
    """

    def send(self, packet: Any, force: bool = False) -> bool: ...

    def can_accept(self) -> bool: ...

    @property
    def queue_length(self) -> int: ...


# --------------------------------------------------------------------- #
# sender side


class FastStriper(Striper):
    """A :class:`~repro.core.striper.Striper` with a batched pump.

    Semantically identical to the base per-packet pump for SRR-family
    policies — same channel assignments (the kernel is causal), same
    per-channel packet order, same marker emission points — but the kernel
    is advanced with one ``assign_many`` per chunk and each channel
    receives its packets as one burst.  Requires ports with
    ``send_burst``/``free_capacity``.  Non-SRR policies, enabled tracers,
    and unreconstructable pointer trajectories fall back to the exact base
    pump.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._min_quantum: Optional[float] = None
        if self._kernel is not None:
            self._min_quantum = min(self._kernel.quanta)
        #: pump calls that engaged the batch machinery
        self.batched_pumps = 0
        #: data packets sent through batched chunks
        self.batched_packets = 0
        #: pump calls (or mid-pump bailouts) routed to the per-packet pump
        self.fallback_pumps = 0

    def stats(self) -> Dict[str, int]:
        """Cheap perf counters for the batched pump."""
        return {
            "batched_pumps": self.batched_pumps,
            "batched_packets": self.batched_packets,
            "fallback_pumps": self.fallback_pumps,
        }

    def pump(self) -> int:
        kernel = self._kernel
        if kernel is None or self.tracer.enabled:
            self.fallback_pumps += 1
            return super().pump()
        if self._initial_markers_pending:
            self._initial_markers_pending = False
            self._emit_markers()
        queue = self.input_queue
        if not queue:
            return 0
        if len(queue) < _BATCH_MIN:
            self.fallback_pumps += 1
            return super().pump()
        ports = self.ports
        n = kernel.n_channels
        markers = self._markers_enabled
        position = interval = 0
        if markers:
            policy = self.marker_policy
            position = policy.position % n
            interval = policy.interval_rounds
        sent_total = 0
        while queue:
            free = [port.free_capacity() for port in ports]
            if free[kernel.ptr] <= 0:
                break  # head-of-line: causality forbids sending elsewhere
            budget = 0
            for f in free:
                budget += f
            backlog = len(queue)
            chunk = budget if budget < backlog else backlog
            sizes = [p.size for p in islice(queue, chunk)]
            snapshot = kernel.snapshot()
            chans = kernel.assign_many(sizes)
            end_ptr = kernel.ptr
            # Longest admissible prefix under per-channel free slots.  The
            # first packet is always admissible (free[chans[0]] > 0 was
            # just checked), so q >= 1 and the loop makes progress.
            q = chunk
            for i in range(chunk):
                c = chans[i]
                f = free[c]
                if f <= 0:
                    q = i
                    break
                free[c] = f - 1
            emit = False
            if markers:
                # Walk the pointer trajectory packet by packet: chans[i+1]
                # (or the post-chunk pointer) is the live pointer after
                # packet i.  Each single-channel advance is one potential
                # marker-position crossing; a multi-channel hop (deep
                # overdraw) cannot be reconstructed from the channel
                # vector alone, so it falls back to the per-packet pump.
                crossings = self._crossings_seen
                ptr = chans[0]
                stop = q
                for i in range(q):
                    nxt = chans[i + 1] if i + 1 < chunk else end_ptr
                    if nxt == ptr:
                        continue
                    step = nxt - ptr
                    if step != 1 and step != 1 - n:
                        kernel.restore(snapshot)
                        self.fallback_pumps += 1
                        return sent_total + super().pump()
                    ptr = nxt
                    if nxt == position:
                        crossings += 1
                        if crossings % interval == 0:
                            # Cut after the crossing packet so the marker
                            # batch lands exactly where the per-packet
                            # pump would put it.
                            stop = i + 1
                            emit = True
                            break
                self._crossings_seen = crossings
                q = stop
            if q < chunk:
                kernel.restore(snapshot)
                kernel.assign_many(sizes[:q])
            bursts: Dict[int, List[Any]] = {}
            bytes_sent = 0
            for i in range(q):
                packet = queue.popleft()
                bytes_sent += sizes[i]
                c = chans[i]
                burst = bursts.get(c)
                if burst is None:
                    bursts[c] = [packet]
                else:
                    burst.append(packet)
            for c, burst in bursts.items():
                ports[c].send_burst(burst)
            self.packets_sent += q
            self.bytes_sent += bytes_sent
            sent_total += q
            self.batched_packets += q
            if emit:
                self._emit_markers()
        self.batched_pumps += 1
        return sent_total


class _RecordingPort:
    """A :class:`ChannelPort` proxy reporting data transmissions.

    Reliable mode needs to know *when* and *on which channel* each
    sequenced packet actually left the striper (RTT sampling, per-channel
    retransmission accounting, channel-suspect escalation).  The proxy
    intercepts ``send`` and reports sequenced data packets to the
    reliability layer; everything else forwards to the wrapped port, so
    transports cannot tell the difference.
    """

    def __init__(
        self,
        inner: Any,
        index: int,
        note_sent: Callable[[int, Any], None],
        note_burst: Optional[Callable[[int, List[Any]], None]] = None,
    ) -> None:
        self._inner = inner
        self._index = index
        self._note_sent = note_sent
        self._note_burst = note_burst
        #: cumulative data bytes actually transmitted through this port
        #: (fairness-envelope accounting: includes retransmissions)
        self.data_bytes_sent = 0

    def send(self, packet: Any, force: bool = False) -> bool:
        ok = self._inner.send(packet, force=force)
        if ok and not is_marker(packet):
            self.data_bytes_sent += packet.size
            if getattr(packet, "rseq", None) is not None:
                self._note_sent(self._index, packet)
        return ok

    def can_accept(self) -> bool:
        return self._inner.can_accept()

    @property
    def queue_length(self) -> int:
        return self._inner.queue_length

    @property
    def on_unblocked(self) -> Any:
        # Forward the resume slot so the pipeline's slot-filling and the
        # port's own stall hooks (ARP, credit) see one shared callback.
        return self._inner.on_unblocked

    @on_unblocked.setter
    def on_unblocked(self, fn: Any) -> None:
        self._inner.on_unblocked = fn

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _RecordingBurstPort(_RecordingPort):
    """Recording proxy for burst-capable ports (keeps the fast pump).

    When a ``note_burst`` callback is wired, a whole burst's sequenced
    packets are reported to the ARQ layer in one call (one clock read, one
    timer check) instead of one call per packet; reporting still happens
    *before* the inner ``send_burst``, exactly like the per-packet proxy
    reports before returning from ``send``.
    """

    def send_burst(self, packets: Sequence[Any]) -> None:
        note_burst = self._note_burst
        if note_burst is not None:
            sequenced: List[Any] = []
            for packet in packets:
                if not is_marker(packet):
                    self.data_bytes_sent += packet.size
                    if getattr(packet, "rseq", None) is not None:
                        sequenced.append(packet)
            if sequenced:
                note_burst(self._index, sequenced)
        else:
            for packet in packets:
                if not is_marker(packet):
                    self.data_bytes_sent += packet.size
                    if getattr(packet, "rseq", None) is not None:
                        self._note_sent(self._index, packet)
        self._inner.send_burst(packets)

    def free_capacity(self) -> int:
        return self._inner.free_capacity()


def _wrap_recording_ports(
    ports: Sequence[Any],
    note_sent: Callable[[int, Any], None],
    note_burst: Optional[Callable[[int, List[Any]], None]] = None,
) -> List[Any]:
    return [
        (
            _RecordingBurstPort(port, i, note_sent, note_burst)
            if hasattr(port, "send_burst") and hasattr(port, "free_capacity")
            else _RecordingPort(port, i, note_sent)
        )
        for i, port in enumerate(ports)
    ]


class StripeSenderPipeline:
    """The one striping send pump, over any transport's channel ports.

    Args:
        ports: one :class:`ChannelPort` per channel.
        discipline: anything :func:`resolve_discipline` accepts — a name,
            a :class:`~repro.core.cfq.CausalFQ`, or a load sharer.
        marker_policy: marker emission policy (marker-synchronized
            disciplines only; marker-free disciplines reject one).
        marker_decorator / on_marker: per-marker hooks (credit piggyback).
        credit: optional FCVC :class:`~repro.transport.credit.CreditSender`;
            its ``on_unblocked`` is pointed at the pump.
        sim: event scheduler (``schedule(delay, fn)``/``now``) — required
            only for keepalive markers.
        marker_keepalive_s: if set, force a marker batch whenever no marker
            was emitted for this long (stalled/idle senders must keep the
            receiver — and piggybacked credits — refreshed).
        fast: force the batched (True) or per-packet (False) pump; by
            default the batched pump is used when every port supports
            ``send_burst``/``free_capacity``.
        reliability: service level — ``"best_effort"`` / ``"quasi_fifo"``
            (the default; both leave the submit path untouched),
            ``"reliable"``, which sequences every submitted packet
            through a :class:`~repro.transport.reliability.ReliableSender`
            (selective-repeat ARQ; requires ``sim``), ``"fec"``, which
            mounts a :class:`~repro.transport.fec.FecSender` (proactive
            erasure-coded recovery, parity striped through the same SRR
            kernel), or ``"hybrid"`` (FEC above ARQ: reconstruction
            first, retransmission backstop).
        reliability_options: keyword arguments forwarded to
            :class:`~repro.transport.reliability.ReliableSender`
            (``window_packets``, ``max_retries``,
            ``on_channel_suspect``, ...).  FEC knobs ride under the
            ``"fec"`` key — a dict forwarded to
            :class:`~repro.transport.fec.FecSender` (``k``, ``m``,
            ``seal_timeout_s``, ``numpy``, ...) — so transport adapters
            forwarding ``reliability_options`` support every mode
            unchanged.
        discipline_options: forwarded to :func:`make_discipline` when
            ``discipline`` is a name.
        fabric: optional :class:`~repro.transport.fabric.FabricScheduler`
            mounted above the submit path (equivalent to calling
            :meth:`attach_fabric` after construction): flow-addressed
            submission (``submit(flow_id, packet)``) with per-flow
            weighted-DRR scheduling and per-flow backpressure.
    """

    def __init__(
        self,
        ports: Sequence[ChannelPort],
        discipline: Any,
        *,
        marker_policy: Optional[MarkerPolicy] = None,
        marker_decorator: Optional[Callable[[int, Any], None]] = None,
        on_marker: Optional[Callable[[int, Any], None]] = None,
        credit: Any = None,
        sim: Any = None,
        marker_keepalive_s: Optional[float] = None,
        fast: Optional[bool] = None,
        tracer: Tracer = NULL_TRACER,
        clock: Optional[Callable[[], float]] = None,
        reliability: str = "quasi_fifo",
        reliability_options: Optional[Dict[str, Any]] = None,
        discipline_options: Optional[Dict[str, Any]] = None,
        fabric: Any = None,
    ) -> None:
        if reliability not in RELIABILITY_MODES:
            raise ValueError(
                f"unknown reliability mode {reliability!r}; "
                f"known: {RELIABILITY_MODES}"
            )
        self.reliability = reliability
        self.reliable: Optional[ReliableSender] = None
        self.ports: List[Any] = list(ports)
        self.sim = sim
        sharer = resolve_discipline(
            discipline, len(self.ports), **(discipline_options or {})
        )
        self.sharer = sharer
        # The discipline's synchronization model, sender half: custody of
        # the marker policy (rejected outright by marker-free models) and
        # the keepalive refresh.  Marker *mechanics* stay in the striper —
        # the model decides whether they are armed at all.
        family = sync_model_for(sharer, markers=marker_policy is not None)
        if family == "hash":
            self.sync: Any = HashSyncModel(
                len(self.ports), marker_policy=marker_policy
            )
        elif family == "header":
            self.sync = HeaderSyncModel(marker_policy=marker_policy)
        else:
            self.sync = MarkerSyncModel(marker_policy=marker_policy)
        #: discipline-supplied packet transformation (MPPP headers,
        #: BONDING frames); None for the paper's no-modification schemes.
        self._wrap = getattr(sharer, "wrap_packet", None)
        arq = arq_enabled(reliability)
        fec = fec_enabled(reliability)
        self.fec: Optional[FecSender] = None
        if arq or fec:
            if arq and sim is None:
                raise ValueError(f"{reliability} mode needs an event scheduler")
            if self._wrap is not None:
                raise ValueError(
                    f"{reliability} mode needs a non-transforming discipline "
                    "(MPPP/BONDING fragment packets below the recovery layer)"
                )
            # Recording proxies report actual transmissions (channel +
            # time) back to the ARQ layer; the striper stays oblivious.
            # Pure fec wraps too, for the envelope byte accounting — its
            # packets carry no rseq, so the ARQ hooks never fire.
            self.ports = _wrap_recording_ports(
                self.ports,
                lambda c, p: self.reliable.note_sent(c, p),
                lambda c, ps: self.reliable.note_burst(c, ps),
            )
        options = dict(reliability_options or {})
        fec_options = dict(options.pop("fec", None) or {})
        if arq:
            options.setdefault("submit_many", self._stripe_many)
            self.reliable = ReliableSender(self._stripe, sim, **options)
        if fec:
            # FEC sits above ARQ: the downstream stamps rseq (hybrid)
            # before the shard is serialized, and parity bypasses the
            # retransmission buffer — it is expendable redundancy — but
            # still stripes through the kernel's rotated placement.
            self.fec = FecSender(
                self.reliable.submit if arq else self._stripe,
                self._stripe_many,
                sim=sim,
                downstream_many=(
                    self.reliable.submit_many if arq else self._stripe_many
                ),
                **fec_options,
            )
        if fast is None:
            fast = all(
                hasattr(port, "send_burst") and hasattr(port, "free_capacity")
                for port in self.ports
            )
        if clock is None and sim is not None:
            clock = lambda: sim.now  # noqa: E731
        striper_cls = FastStriper if fast else Striper
        self.striper = striper_cls(
            sharer,
            self.ports,
            self.sync.marker_policy,
            on_marker=on_marker,
            marker_decorator=marker_decorator,
            tracer=tracer,
            clock=clock,
        )
        # Models that must see traffic before striping opt in; no current
        # model does, so the submit paths stay branch-free by default.
        self._sync_observer = (
            self.sync.on_submit_burst
            if getattr(self.sync, "observes_submissions", False)
            else None
        )
        self.credit = credit
        if credit is not None:
            credit.on_unblocked = self._pump
        for port in self.ports:
            # Fill empty resume slots; ports without the slot (or with one
            # already claimed) are left alone.
            if getattr(port, "on_unblocked", _MISSING) is None:
                port.on_unblocked = self._pump
        self.messages_submitted = 0
        self._closed = False
        self.fabric: Any = None
        self._fabric_backlog_limit = 0
        if fabric is not None:
            self.attach_fabric(fabric)
        if marker_keepalive_s is not None:
            self.sync.start_keepalive(self.striper, sim, marker_keepalive_s)

    # ------------------------------------------------------------------ #
    # multi-flow fabric mount

    def attach_fabric(
        self, fabric: Any, *, backlog_limit: Optional[int] = None
    ) -> Any:
        """Mount a flow-layer scheduler (FQ across flows) on this pipeline.

        ``fabric`` is duck-typed (``bind``/``submit``/``can_submit``/
        ``pump``), normally a
        :class:`~repro.transport.fabric.FabricScheduler`.  It drains into
        the pipeline's ordinary submit path — through the ARQ layer in
        reliable mode — but only while the pipeline is ready: reliable
        window open and striper input queue below ``backlog_limit``
        (default ``4 × n_channels``).  Backlog therefore waits in
        per-flow queues where the weighted DRR arbitrates it, instead of
        congealing into the shared FIFO below, and every transport
        adapter built on this pipeline gets multi-flow submission with
        no adapter-side flow logic.
        """
        if backlog_limit is None:
            backlog_limit = 4 * len(self.ports)
        self.fabric = fabric
        self._fabric_backlog_limit = backlog_limit
        fabric.bind(self._submit, ready=self._fabric_ready)
        if self.reliable is not None:
            # A draining ARQ window reopens the fabric gate: chain the
            # fabric pump behind any callback the owner already installed.
            chained = self.reliable.on_window_open

            def _window_open() -> None:
                if chained is not None:
                    chained()
                fabric.pump()

            self.reliable.on_window_open = _window_open
        return fabric

    def _fabric_ready(self) -> bool:
        if self.reliable is not None and not self.reliable.can_submit():
            return False
        return self.striper.backlog < self._fabric_backlog_limit

    def submit(self, flow_id: Any, packet: Packet) -> bool:
        """Flow-addressed submission: queue ``packet`` on ``flow_id``.

        Requires a mounted fabric (``fabric=`` or :meth:`attach_fabric`).
        Returns False when the flow's bounded queue refused the packet.
        """
        if self.fabric is None:
            raise RuntimeError(
                "flow-addressed submit requires a fabric "
                "(pass fabric= or call attach_fabric())"
            )
        self.messages_submitted += 1
        return self.fabric.submit(flow_id, packet)

    def send_message(
        self, size: int, payload: Any = None, flow_id: Any = None
    ) -> Packet:
        """Submit one application message of ``size`` bytes for striping."""
        packet = Packet(size=size, seq=self.messages_submitted, payload=payload)
        if flow_id is not None:
            packet.flow = flow_id
            self.submit(flow_id, packet)
            return packet
        self.messages_submitted += 1
        self._submit(packet)
        return packet

    def submit_packet(self, packet: Packet, flow_id: Any = None) -> None:
        """Submit a caller-constructed packet (e.g. video trace packets)."""
        if flow_id is not None:
            self.submit(flow_id, packet)
            return
        self.messages_submitted += 1
        self._submit(packet)

    def submit_packets(self, packets: Sequence[Packet]) -> None:
        """Submit a burst of caller-constructed packets in one call.

        Behavior-identical to calling :meth:`submit_packet` per packet
        (same order, same instant), but the whole burst flows through the
        ARQ layer and the striper as batches: one rseq-stamping pass, one
        pump.  The direct (non-fabric) submit path only.
        """
        self.messages_submitted += len(packets)
        self._submit_many(packets)

    def _submit(self, packet: Any) -> None:
        if self._sync_observer is not None:
            self._sync_observer((packet,))
        if self.fec is not None:
            self.fec.submit(packet)
        elif self.reliable is not None:
            self.reliable.submit(packet)
        else:
            self._stripe(packet)

    def _submit_many(self, packets: Sequence[Any]) -> None:
        if self._sync_observer is not None:
            self._sync_observer(packets)
        if self.fec is not None:
            self.fec.submit_many(list(packets))
        elif self.reliable is not None:
            self.reliable.submit_many(list(packets))
        else:
            self._stripe_many(packets)

    def _stripe(self, packet: Any) -> None:
        if self._wrap is not None:
            for unit in self._wrap(packet):
                self.striper.submit(unit)
        else:
            self.striper.submit(packet)

    def _stripe_many(self, packets: Sequence[Any]) -> None:
        if self._wrap is not None:
            for packet in packets:
                for unit in self._wrap(packet):
                    self.striper.submit(unit)
        else:
            self.striper.submit_many(packets)

    def can_submit(self, flow_id: Any = None) -> bool:
        """Backpressure signal: False while a reliable window is full.

        With ``flow_id``, per-flow backpressure instead: False only while
        that flow's bounded fabric queue is full (a stalled sibling flow
        or a full shared window does not show through).
        """
        if flow_id is not None:
            if self.fabric is None:
                return False
            return self.fabric.can_submit(flow_id)
        return self.reliable is None or self.reliable.can_submit()

    def on_ack(self, ack: Any) -> None:
        """Feed a reverse-path acknowledgment to the reliability layer.

        Accepts an :class:`~repro.transport.reliability.AckPacket`, a
        bare :class:`~repro.core.packet.SackInfo`, or anything carrying
        a ``sack`` attribute (a SACK-bearing reverse marker).
        """
        if self.reliable is not None:
            self.reliable.on_ack(ack)

    def flush(self) -> None:
        """Flush buffered residue (a partial BONDING frame or FEC group)."""
        if self.fec is not None:
            self.fec.flush()
        flush = getattr(self.sharer, "flush", None)
        if flush is None:
            return
        unit = flush()
        if unit is not None:
            self.striper.submit(unit)

    @property
    def backlog(self) -> int:
        return self.striper.backlog

    def pump(self) -> int:
        sent = self.striper.pump()
        if self.fabric is not None:
            self.fabric.pump()
        return sent

    def _pump(self) -> None:
        self.striper.pump()
        if self.fabric is not None:
            # Freed port/credit capacity may have reopened the fabric
            # gate; refill the striper from the per-flow queues.
            self.fabric.pump()

    def close(self) -> None:
        if self.fec is not None and not self._closed:
            self.fec.flush()
        self._closed = True
        self.sync.stop()
        for port in self.ports:
            close = getattr(port, "close", None)
            if close is not None:
                close()


# --------------------------------------------------------------------- #
# receiver side


class StripeReceiverPipeline:
    """The one striped-receive pump, over any transport's arrivals.

    Arrivals enter via :meth:`push` (or the per-channel closures from
    :meth:`channel_handler`); the pipeline applies the physical buffer-cap
    drop rule and reports consumption to the FCVC credit layer.  Ordering
    is the synchronization model's job: the discipline's model
    (:func:`~repro.transport.sync_model.make_sync_model`) builds the
    reception engine, handles marker arrivals (piggybacked credit/SACK
    extraction, condition-C1 resync) or — for marker-free disciplines —
    delivers at arrival with no resequencer and no marker-decode path
    allocated at all.

    Args:
        n_channels: striped channel count.
        algorithm: the sender's CFQ algorithm (simulated for logical
            reception); None for modes that need none.
        mode: resequencing mode (``marker``/``plain``/``none``/``direct``/
            ``mppp``/``bonding``), normally from
            :func:`~repro.transport.discipline.receiver_mode_for`.
        on_message: callback for in-order application messages.
        buffer_packets: per-channel physical buffer cap; data arrivals
            beyond it are dropped (counted) — the loss credit flow
            control eliminates.
        credit: optional :class:`~repro.transport.credit.CreditReceiver`
            notified as buffered packets are consumed.
        failure_detector: optional :class:`ChannelFailureDetector`; it is
            bound to :meth:`fail_channel`, so plain pipelines survive a
            dead channel (delivery degrades to quasi-FIFO with gaps
            instead of stalling forever).
        sim: event scheduler, used for the marker-receiver clock and the
            MPPP gap timeout.
        reliability: service level — ``"best_effort"`` / ``"quasi_fifo"``
            deliver the resequencer output as-is (the default);
            ``"reliable"`` runs it through a
            :class:`~repro.transport.reliability.ReliableReceiver`
            (exactly-once, in-order, acks on the reverse path);
            ``"fec"`` mounts a :class:`~repro.transport.fec.FecReceiver`
            that reconstructs lost group members from parity and
            resequences by FEC group number (no reverse traffic at all);
            ``"hybrid"`` stacks both — FEC repairs first, the ARQ
            backstop retransmits what parity could not cover.
        send_ack: reliable/hybrid mode's ack transmitter, ``fn(SackInfo)``.
        reliability_options: keyword arguments forwarded to
            :class:`~repro.transport.reliability.ReliableReceiver`; FEC
            knobs ride under the ``"fec"`` key (a dict forwarded to
            :class:`~repro.transport.fec.FecReceiver`: ``k``, ``m``,
            ``group_timeout_s``, ``on_escalate``, ...), mirroring the
            sender pipeline.
    """

    def __init__(
        self,
        n_channels: int,
        algorithm: Optional[CausalFQ] = None,
        *,
        mode: str = "marker",
        on_message: Optional[Callable[[Any], None]] = None,
        buffer_packets: Optional[int] = None,
        credit: Any = None,
        failure_detector: Optional[ChannelFailureDetector] = None,
        clock: Optional[Callable[[], float]] = None,
        sim: Any = None,
        reliability: str = "quasi_fifo",
        send_ack: Optional[Callable[[Any], None]] = None,
        reliability_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if reliability not in RELIABILITY_MODES:
            raise ValueError(
                f"unknown reliability mode {reliability!r}; "
                f"known: {RELIABILITY_MODES}"
            )
        self.n_channels = n_channels
        self.sim = sim
        self.on_message = on_message
        self.buffer_packets = buffer_packets
        self.buffer_drops = 0
        self.delivered: List[Any] = []
        #: keep every delivered packet in :attr:`delivered` (the default).
        #: Packet-pool harnesses switch this off: a retained reference
        #: would alias the recycled object's next life.
        self.retain_delivered = True
        self.reliability = reliability
        self.reliable: Optional[ReliableReceiver] = None
        self.fec: Optional[FecReceiver] = None
        options = dict(reliability_options or {})
        fec_options = dict(options.pop("fec", None) or {})
        if arq_enabled(reliability):
            self.reliable = ReliableReceiver(
                self._deliver_final,
                send_ack=send_ack,
                sim=sim,
                **options,
            )
        # Delivery chain: sync model -> [FecReceiver] -> [ReliableReceiver]
        # -> final.  In hybrid mode the FEC layer passes packets through to
        # the ARQ receiver (which owns rseq ordering/dedup) and fills its
        # holes with reconstructions; in pure fec it resequences by fseq
        # itself.
        final_sink = (
            self.reliable.push if self.reliable is not None
            else self._deliver_final
        )
        if fec_enabled(reliability):
            self.fec = FecReceiver(
                final_sink,
                ordered=self.reliable is None,
                sim=sim,
                **fec_options,
            )
        self.credit = credit
        if clock is None and sim is not None:
            clock = lambda: sim.now  # noqa: E731
        # The synchronization model binds the reception engine's delivery
        # callback directly to its destination (FEC layer, ARQ receiver,
        # or final delivery) — one less call per delivered packet; the
        # chain is fixed at construction.
        self.sync = make_sync_model(
            mode,
            algorithm,
            n_channels=n_channels,
            on_deliver=(
                self.fec.on_packet if self.fec is not None else final_sink
            ),
            clock=clock,
            sim=sim,
        )
        #: the reception engine (compatibility name: every harness and
        #: test reads ``receiver.resequencer``); for marker-free models a
        #: zero-buffer :class:`~repro.core.resequencer.DirectReception`.
        self.resequencer = self.sync.receiver
        self._pushed_data: List[int] = [0] * n_channels
        self._credited: List[int] = [0] * n_channels
        self.failed_channels: set = set()
        self.failure_detector = failure_detector
        if failure_detector is not None:
            failure_detector.bind(
                n_channels, self.fail_channel, on_revival=self.revive_channel
            )

    # -- synchronization-model state forwarded for the transports ------ #

    @property
    def credit_sink(self) -> Optional[Callable[[int, int], None]]:
        return self.sync.credit_sink

    @credit_sink.setter
    def credit_sink(self, fn: Optional[Callable[[int, int], None]]) -> None:
        self.sync.credit_sink = fn

    @property
    def sack_sink(self) -> Optional[Callable[[Any], None]]:
        return self.sync.sack_sink

    @sack_sink.setter
    def sack_sink(self, fn: Optional[Callable[[Any], None]]) -> None:
        self.sync.sack_sink = fn

    @property
    def marker_decode_errors(self) -> int:
        return self.sync.marker_decode_errors

    def receiver_state(self) -> Dict[str, Any]:
        """The synchronization model's introspectable receiver state."""
        return self.sync.receiver_state()

    # ------------------------------------------------------------------ #

    def push(self, channel: int, packet: Any) -> List[Any]:
        """Physical arrival of ``packet`` on ``channel``.

        Returns the application packets delivered in logical order as a
        result (also passed to ``on_message``).
        """
        detector = self.failure_detector
        if detector is not None:
            detector.note_arrival(channel)
        if type(packet) is bytes:
            # A raw wire frame (e.g. a marker whose bytes were corrupted
            # in flight and delivered anyway): route through the codec,
            # which counts malformed frames instead of raising.
            return self.push_wire(channel, packet)
        if not is_marker(packet):
            if (
                self.buffer_packets is not None
                and self._buffered_data(channel) >= self.buffer_packets
            ):
                self.buffer_drops += 1
                return []
            self._pushed_data[channel] += 1
            out = self.resequencer.push(channel, packet)
        else:
            out = self.sync.on_marker(channel, packet)
        if self.credit is not None:
            self._issue_credits()
        return out

    def push_wire(self, channel: int, data: bytes) -> List[Any]:
        """Physical arrival of an *encoded marker frame* on ``channel``.

        The synchronization model owns the codec: marker models decode
        (malformed frames counted in :attr:`marker_decode_errors` and
        dropped instead of surfacing struct errors into the arrival
        path); marker-free models count the stray frame and drop it
        without ever touching the codec.
        """
        marker = self.sync.decode_wire(data)
        if marker is None:
            return []
        return self.push(channel, marker)

    def channel_handler(self, index: int) -> Callable[[Any], None]:
        """A per-channel arrival callback (for transports that demux)."""
        if (
            self.buffer_packets is None
            and self.credit is None
            and self.failure_detector is None
            and self.sack_sink is None
        ):
            # Hot path (the fast transport): no drop rule, no credits, no
            # watchdog — skip their per-packet checks entirely.  Reliable
            # mode rides along fine: the ARQ receiver hangs off the
            # resequencer's delivery callback, not off this arrival path.
            push = self.resequencer.push
            pushed = self._pushed_data

            def handle(packet: Any) -> None:
                if type(packet) is bytes:
                    # Corrupted-in-flight wire frame: codec path counts
                    # and drops it (cheap C-level type check keeps the
                    # hot loop unburdened).
                    self.push_wire(index, packet)
                    return
                if not is_marker(packet):
                    pushed[index] += 1
                push(index, packet)

            return handle

        def handle(packet: Any) -> None:
            self.push(index, packet)

        return handle

    def fail_channel(self, channel: int) -> List[Any]:
        """Declare a channel dead so delivery does not block on it."""
        if channel in self.failed_channels:
            return []
        self.failed_channels.add(channel)
        fail = getattr(self.resequencer, "fail_channel", None)
        if fail is None:
            return []
        return fail(channel)

    def revive_channel(self, channel: int) -> None:
        """Welcome a failed channel back into the bundle.

        The resequencer stops assuming its packets lost; in marker mode the
        next marker on the channel resyncs its simulated state (condition
        C1), so delivery re-aligns without a session reset.
        """
        if channel not in self.failed_channels:
            return
        self.failed_channels.discard(channel)
        revive = getattr(self.resequencer, "revive_channel", None)
        if revive is not None:
            revive(channel)

    # ------------------------------------------------------------------ #

    def _buffered_data(self, index: int) -> int:
        """Data packets currently buffered on a channel (markers excluded)."""
        buffers = getattr(self.resequencer, "buffers", None)
        if buffers is None:
            return 0
        return sum(1 for p in buffers[index] if not is_marker(p))

    def _issue_credits(self) -> None:
        """Report newly consumed packets on every channel to the credit layer.

        Consumed = pushed into the channel buffer minus still buffered; a
        single push can unblock deliveries on *other* channels, so all
        channels are re-examined.
        """
        credit = self.credit
        assert credit is not None
        for index in range(len(self._pushed_data)):
            consumed = self._pushed_data[index] - self._buffered_data(index)
            while self._credited[index] < consumed:
                self._credited[index] += 1
                credit.on_consumed(index)

    def _deliver(self, packet: Any) -> None:
        """Resequencer output: quasi-FIFO stream (still with loss gaps)."""
        if self.fec is not None:
            self.fec.on_packet(packet)
        elif self.reliable is not None:
            self.reliable.push(packet)
        else:
            self._deliver_final(packet)

    def _deliver_final(self, packet: Any) -> None:
        if self.retain_delivered:
            self.delivered.append(packet)
        if self.on_message is not None:
            self.on_message(packet)
