"""Synchronization models: how striping endpoints agree on packet order.

Through PR 7 the endpoint pipelines hard-coded one answer — the paper's
answer — to the question "how does the receiver reconstruct sender
order?": simulate the sender, resynchronize with a marker stream, and
piggyback credits/SACKs on the markers.  Sprinklers
(:mod:`repro.core.sprinklers`) answers the question differently — pin
each flow to a stripe so physical arrival order *is* delivery order —
and needs none of that machinery.  This module makes the answer an
explicit, pluggable object.

A synchronization model owns everything order-related that used to be
interleaved through :class:`~repro.transport.endpoint.StripeSenderPipeline`
and :class:`~repro.transport.endpoint.StripeReceiverPipeline`:

* sender half — marker-policy custody, keepalive marker refresh
  (:meth:`~MarkerSyncModel.start_keepalive`), and the
  :meth:`~SynchronizationModel.on_submit_burst` observation hook;
* receiver half — the reception engine
  (:func:`~repro.core.resequencer.make_resequencer` binding, which for
  marker mode carries the lag-flush rule inside
  :class:`~repro.core.markers.SRRReceiver`), marker arrival handling with
  credit/SACK piggyback extraction (:meth:`~MarkerSyncModel.on_marker`),
  the wire-frame decode path (:meth:`~MarkerSyncModel.decode_wire`), and
  ``receiver_state`` / ``snapshot`` / ``restore``.

Three families exist (see
:func:`~repro.transport.discipline.sync_model_for`):

* :class:`MarkerSyncModel` — the paper: simulated-sender reception
  (modes ``marker``/``plain``/``none``) with the marker codec wired.
* :class:`HashSyncModel` — marker-free (mode ``direct``): no resequencer,
  no marker decode, no credit piggyback; wire frames that look like
  markers are counted as strays and dropped *undecoded*.
* :class:`HeaderSyncModel` — disciplines carrying explicit sequence
  state in every packet (MPPP, BONDING); the discipline's own receiver
  half does the work, the pipeline plumbing matches the marker family.

The split is what the regression suite leans on: a hash-synchronized
receiver provably makes **zero marker-codec calls** and allocates **zero
resequencer buffers** (``tests/transport/test_sync_model.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence

from repro.core.markers import (
    MarkerDecodeError,
    decode_marker,
    piggybacked_credit,
    piggybacked_sack,
)
from repro.core.resequencer import make_resequencer

__all__ = [
    "HashSyncModel",
    "HeaderSyncModel",
    "MarkerSyncModel",
    "SynchronizationModel",
    "make_sync_model",
]


class SynchronizationModel(Protocol):
    """What the endpoint pipelines need from a synchronization model.

    The surface is deliberately small so a marker-free model can implement
    it with constants and no-ops; everything marker-specific (policy
    custody, keepalive, piggyback sinks) lives on
    :class:`MarkerSyncModel` alone and the pipelines only touch it behind
    ``kind == "marker"`` / attribute checks.
    """

    #: family name: ``"marker"`` / ``"hash"`` / ``"header"``
    kind: str
    #: True when the receive path must be able to decode marker frames
    marker_codec: bool
    #: the reception engine (``push``/``drain``), or a direct-delivery sink
    receiver: Any

    def on_submit_burst(self, packets: Sequence[Any]) -> None:
        """Observe a submitted burst (sender side).

        No current model needs it — marker placement is driven by the
        striper's round crossings, hash models by per-packet flow keys —
        but it is the designated hook for models that must see traffic
        before striping (e.g. an FEC model batching parity groups).
        """
        ...

    def on_channel_deliver(self, channel: int, packet: Any) -> List[Any]:
        """A physical arrival, data or control; returns delivered packets."""
        ...

    def decode_wire(self, data: bytes) -> Optional[Any]:
        """Decode a control wire frame, or None when it must be dropped."""
        ...

    def receiver_state(self) -> Dict[str, Any]:
        """Introspectable receiver-side state (memory, sync counters)."""
        ...

    def snapshot(self) -> Any:
        """Capture resumable synchronization state (None when stateless)."""
        ...

    def restore(self, state: Any) -> None:
        """Install a previously captured synchronization state."""
        ...


class MarkerSyncModel:
    """The paper's model: simulated-sender reception + marker resync.

    One instance serves one pipeline end.  A receiver pipeline constructs
    it with an ``on_deliver`` callback and gets the bound reception engine
    (:attr:`receiver`), the piggyback extraction path and the marker wire
    codec; a sender pipeline constructs it bare and uses the marker-policy
    custody plus :meth:`start_keepalive`.
    """

    kind = "marker"
    marker_codec = True

    def __init__(
        self,
        algorithm: Any = None,
        mode: str = "marker",
        *,
        n_channels: Optional[int] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        clock: Optional[Callable[[], float]] = None,
        sim: Any = None,
        marker_policy: Any = None,
    ) -> None:
        self.mode = mode
        self.marker_policy = marker_policy
        self.receiver: Any = None
        if on_deliver is not None or n_channels is not None:
            self.receiver = make_resequencer(
                algorithm,
                mode,
                n_channels=n_channels,
                on_deliver=on_deliver,
                clock=clock,
                sim=sim,
            )
        #: invoked as fn(channel, credit) when a piggybacked credit rides
        #: an arriving marker (the reverse direction's flow-control state).
        self.credit_sink: Optional[Callable[[int, int], None]] = None
        #: invoked as fn(SackInfo) when a piggybacked SACK rides an
        #: arriving marker (acks for the reverse direction's sender).
        self.sack_sink: Optional[Callable[[Any], None]] = None
        #: undecodable marker frames dropped by :meth:`decode_wire`
        self.marker_decode_errors = 0
        # -- sender-half keepalive state (armed by start_keepalive) ----- #
        self._keepalive_striper: Any = None
        self._keepalive_sim: Any = None
        self._keepalive_s: Optional[float] = None
        self._markers_at_last_tick = 0
        self._stopped = False

    # ------------------------------------------------------------------ #
    # sender half

    def on_submit_burst(self, packets: Sequence[Any]) -> None:
        """Marker placement keys off striper round crossings, not bursts."""

    def start_keepalive(
        self, striper: Any, sim: Any, interval_s: float
    ) -> None:
        """Arm keepalive markers: force a batch whenever ``interval_s``
        passes without one (stalled/idle senders must keep the receiver —
        and piggybacked credits — refreshed)."""
        if self.marker_policy is None:
            raise ValueError("keepalive markers need a marker policy")
        if sim is None:
            raise ValueError("keepalive markers need an event scheduler")
        self._keepalive_striper = striper
        self._keepalive_sim = sim
        self._keepalive_s = interval_s
        self._markers_at_last_tick = 0
        sim.schedule(interval_s, self._keepalive_tick)

    def stop(self) -> None:
        """The owning pipeline closed; cease generating sim events."""
        self._stopped = True

    def _keepalive_tick(self) -> None:
        if self._stopped:
            # A finished endpoint must stop generating sim events (and must
            # not force markers into closed ports).
            return
        striper = self._keepalive_striper
        if striper.markers_sent == self._markers_at_last_tick:
            striper.force_marker_batch()
        self._markers_at_last_tick = striper.markers_sent
        self._keepalive_sim.schedule(self._keepalive_s, self._keepalive_tick)

    # ------------------------------------------------------------------ #
    # receiver half

    def on_marker(self, channel: int, packet: Any) -> List[Any]:
        """An arriving marker: extract piggybacked state, then resync."""
        piggyback = piggybacked_credit(packet)
        if piggyback is not None and self.credit_sink is not None:
            self.credit_sink(*piggyback)
        sack = piggybacked_sack(packet)
        if sack is not None and self.sack_sink is not None:
            self.sack_sink(sack)
        return self.receiver.push(channel, packet)

    def on_channel_deliver(self, channel: int, packet: Any) -> List[Any]:
        from repro.core.packet import is_marker

        if is_marker(packet):
            return self.on_marker(channel, packet)
        return self.receiver.push(channel, packet)

    def decode_wire(self, data: bytes) -> Optional[Any]:
        """Decode an encoded marker frame; malformed frames (truncated,
        oversized, corrupt) are counted in :attr:`marker_decode_errors`
        and dropped instead of surfacing struct errors into the arrival
        path."""
        try:
            return decode_marker(data)
        except MarkerDecodeError:
            self.marker_decode_errors += 1
            return None

    def receiver_state(self) -> Dict[str, Any]:
        receiver = self.receiver
        state: Dict[str, Any] = {
            "sync_model": self.kind,
            "mode": self.mode,
            "buffered": getattr(receiver, "buffered", 0),
            "max_buffered": getattr(receiver, "max_buffered", 0),
            "delivered": getattr(receiver, "delivered", 0),
            "marker_decode_errors": self.marker_decode_errors,
        }
        stats = getattr(receiver, "stats", None)
        if stats is not None:
            state["markers_received"] = getattr(stats, "markers_received", 0)
            # SRRReceiver keeps its high-water mark on the stats block.
            state["max_buffered"] = max(
                state["max_buffered"], getattr(stats, "max_buffered", 0)
            )
        return state

    def snapshot(self) -> Any:
        snap = getattr(self.receiver, "snapshot", None)
        return snap() if snap is not None else None

    def restore(self, state: Any) -> None:
        if state is None:
            return
        adopt = getattr(self.receiver, "adopt_snapshot", None)
        if adopt is not None:
            adopt(state)
            return
        restore = getattr(self.receiver, "restore", None)
        if restore is not None:
            restore(state)


class HeaderSyncModel(MarkerSyncModel):
    """Per-packet-header synchronization (MPPP, BONDING).

    The discipline's own receiver half (sequence-number resequencing,
    frame alignment) does the ordering; pipeline plumbing is the marker
    family's, minus markers — none ever arrive, so the piggyback and
    codec paths are inert.
    """

    kind = "header"


class HashSyncModel:
    """Marker-free synchronization (address hashing, Sprinklers).

    Per-flow channel pinning means physical arrival order is delivery
    order: no resequencer is allocated
    (:class:`~repro.core.resequencer.DirectReception` delivers at arrival
    with structurally zero buffering), no marker is ever decoded (stray
    control frames are counted and dropped *before* the codec), and there
    is no synchronization state to snapshot.
    """

    kind = "hash"
    marker_codec = False

    def __init__(
        self,
        n_channels: int,
        *,
        on_deliver: Optional[Callable[[Any], None]] = None,
        marker_policy: Any = None,
    ) -> None:
        from repro.core.resequencer import DirectReception

        # A marker policy handed to a marker-free model is a configuration
        # mismatch the caller should hear about: the markers would burn
        # wire bytes no receiver interprets.
        if marker_policy is not None:
            raise ValueError(
                "marker-free (hash-synchronized) disciplines take no "
                "marker policy"
            )
        self.marker_policy = None
        self.receiver = DirectReception(n_channels, on_deliver=on_deliver)
        #: piggyback sinks exist for surface parity but never fire —
        #: credits and SACKs ride markers, which this model never decodes.
        self.credit_sink: Optional[Callable[[int, int], None]] = None
        self.sack_sink: Optional[Callable[[Any], None]] = None
        self.marker_decode_errors = 0
        #: wire frames that reached the (nonexistent) marker path
        self.stray_wire_frames = 0

    def on_submit_burst(self, packets: Sequence[Any]) -> None:
        """Stripe assignment is per-flow state in the discipline itself."""

    def start_keepalive(self, striper: Any, sim: Any, interval_s: float):
        raise ValueError(
            "keepalive markers are meaningless without a marker stream "
            "(hash-synchronized discipline)"
        )

    def stop(self) -> None:
        """Nothing scheduled, nothing to stop."""

    def on_channel_deliver(self, channel: int, packet: Any) -> List[Any]:
        return self.receiver.push(channel, packet)

    def on_marker(self, channel: int, packet: Any) -> List[Any]:
        """A stray already-decoded marker object (in-memory transports)."""
        return self.receiver.push(channel, packet)  # counted as stray

    def decode_wire(self, data: bytes) -> Optional[Any]:
        """No marker path exists: count the stray frame, never decode it."""
        self.stray_wire_frames += 1
        return None

    def receiver_state(self) -> Dict[str, Any]:
        return {
            "sync_model": self.kind,
            "mode": "direct",
            "buffered": 0,
            "max_buffered": 0,
            "delivered": self.receiver.delivered,
            "stray_markers": self.receiver.stray_markers,
            "stray_wire_frames": self.stray_wire_frames,
        }

    def snapshot(self) -> Any:
        return None

    def restore(self, state: Any) -> None:
        if state is not None:
            raise ValueError(
                "hash-synchronized receivers are stateless; nothing to "
                f"restore (got {state!r})"
            )


_MODEL_BY_MODE = {
    "marker": MarkerSyncModel,
    "plain": MarkerSyncModel,
    "none": MarkerSyncModel,
    "mppp": HeaderSyncModel,
    "bonding": HeaderSyncModel,
}


def make_sync_model(
    mode: str,
    algorithm: Any = None,
    *,
    n_channels: int,
    on_deliver: Optional[Callable[[Any], None]] = None,
    clock: Optional[Callable[[], float]] = None,
    sim: Any = None,
    marker_policy: Any = None,
) -> Any:
    """Build the synchronization model matching a receiver ``mode``.

    The mode comes from
    :func:`~repro.transport.discipline.receiver_mode_for`; ``"direct"``
    yields a :class:`HashSyncModel`, everything else one of the
    resequencer-backed families.
    """
    if mode == "direct":
        return HashSyncModel(
            n_channels, on_deliver=on_deliver, marker_policy=marker_policy
        )
    model_cls = _MODEL_BY_MODE.get(mode)
    if model_cls is None:
        raise ValueError(f"unknown receiver mode {mode!r}")
    return model_cls(
        algorithm,
        mode,
        n_channels=n_channels,
        on_deliver=on_deliver,
        clock=clock,
        sim=sim,
        marker_policy=marker_policy,
    )
