"""Session-managed striping over UDP: resets, reconfiguration, stabilization.

Wraps :mod:`repro.core.session` around the UDP channel machinery of
:mod:`repro.transport.socket_striping`: data, markers, and in-band RESETs
travel per striped channel; ACKs and reset requests ride a dedicated
reverse control flow.  The stripe/resequence pumps live in the session
objects (:mod:`repro.core.session`) — these classes only adapt them to
UDP sockets, reusing the shared :class:`UdpChannelPort` and the endpoint
layer's :class:`~repro.transport.endpoint.ChannelFailureDetector`
(re-exported here), whose ``attach`` wiring asks the sender to
reconfigure without a silent channel.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.packet import Packet
from repro.core.session import (
    ChannelProber,
    LocalChecker,
    StripeConfig,
    StripeReceiverSession,
    StripeSenderSession,
)
from repro.core.striper import MarkerPolicy
from repro.net.addresses import IPAddress
from repro.net.stack import Stack
from repro.sim.engine import Simulator
from repro.transport.endpoint import (
    ChannelFailureDetector,
    ChannelLifecycleManager,
    SenderHealthMonitor,
    _wrap_recording_ports,
)
from repro.transport.fec import FecReceiver, FecSender
from repro.transport.reliability import (
    RELIABILITY_MODES,
    AckPacket,
    ReliableReceiver,
    ReliableSender,
    arq_enabled,
    fec_enabled,
)
from repro.transport.socket_striping import UdpChannelPort, _udp_layer_for

__all__ = [
    "ChannelFailureDetector",
    "ChannelLifecycleManager",
    "ChannelProber",
    "SenderHealthMonitor",
    "SessionSocketReceiver",
    "SessionSocketSender",
]


class SessionSocketSender:
    """A resettable striped-UDP sender.

    Args:
        sim / stack: host context.
        destinations: per-channel ``(dst_ip, dst_port)`` (the full port
            set; the config's ``active_channels`` picks the live subset).
        config: initial striping configuration.
        marker_policy: markers per epoch (needed by the LocalChecker).
        control_port: local UDP port where ACKs / reset requests arrive.
        health_monitor: optional :class:`SenderHealthMonitor`; a stalled
            channel (wedged queue / starved credit) is excluded via a
            reconfiguration reset without waiting for receiver silence.
        enable_prober: create a :class:`~repro.core.session.ChannelProber`
            so excluded channels are probed with exponential backoff and
            rejoined (fresh quanta via RESET) once they answer.
        prober_options: forwarded to the prober's constructor.
        discipline: optional registry discipline name replacing the
            paper's SRR in every epoch's striper (the receiver must be
            built with the same name).  Marker-free disciplines
            (``sprinklers``, ``address_hash``) drop the marker policy —
            nothing at the far end would decode it.
        discipline_options: forwarded to ``make_discipline``.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: Stack,
        destinations: Sequence[Tuple[str, int]],
        config: StripeConfig,
        marker_policy: Optional[MarkerPolicy] = None,
        control_port: int = 6900,
        health_monitor: Optional[SenderHealthMonitor] = None,
        enable_prober: bool = False,
        prober_options: Optional[dict] = None,
        reliability: str = "quasi_fifo",
        reliability_options: Optional[dict] = None,
        fabric: Any = None,
        discipline: Optional[str] = None,
        discipline_options: Optional[dict] = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.udp = _udp_layer_for(stack)
        self.ports: List[Any] = []
        for index, (dst_ip, dst_port) in enumerate(destinations):
            socket = self.udp.bind()
            self.ports.append(
                UdpChannelPort(
                    socket, IPAddress.parse(dst_ip), dst_port,
                    src_ip=None, channel_index=index, credit_sender=None,
                )
            )
        if reliability not in RELIABILITY_MODES:
            raise ValueError(
                f"unknown reliability mode {reliability!r}; "
                f"known: {RELIABILITY_MODES}"
            )
        self.reliability = reliability
        self.reliable: Optional[ReliableSender] = None
        self.fec: Optional[FecSender] = None
        if arq_enabled(reliability):
            # Recording proxies keep their *full-set* index, which is the
            # channel id resets and exclusions speak — escalation maps a
            # suspect packet straight onto session.exclude_channel.
            self.ports = _wrap_recording_ports(
                self.ports, lambda c, p: self.reliable.note_sent(c, p)
            )
        striper_factory = None
        if discipline is not None:
            from repro.core.striper import Striper
            from repro.transport.discipline import (
                make_discipline,
                receiver_mode_for,
            )

            options = dict(discipline_options or {})
            probe = make_discipline(discipline, len(self.ports), **options)
            if hasattr(probe, "wrap_packet"):
                raise ValueError(
                    f"session transport cannot run {discipline!r}: the "
                    "epoch striper moves whole packets, not fragments"
                )
            if receiver_mode_for(probe) != "marker":
                marker_policy = None  # nothing at the far end decodes them

            def striper_factory(cfg: StripeConfig, active: List[Any]):
                return Striper(
                    make_discipline(discipline, len(active), **options),
                    active,
                    marker_policy,
                )

        self.session = StripeSenderSession(
            sim, self.ports, config, marker_policy=marker_policy,
            striper_factory=striper_factory,
        )
        options = dict(reliability_options or {})
        fec_options = dict(options.pop("fec", None) or {})
        if arq_enabled(reliability):
            options.setdefault("on_channel_suspect", self._on_suspect)
            self.reliable = ReliableSender(
                self.session.submit, sim, **options
            )
            self.session.on_ack = self.reliable.on_ack
        if fec_enabled(reliability):
            # The session exposes a per-packet submit only; parity rides
            # the same path (striped by the epoch's kernel, never through
            # the ARQ retransmit buffer).
            self.fec = FecSender(
                self.reliable.submit
                if self.reliable is not None
                else self.session.submit,
                self._stripe_parity,
                sim=sim,
                **fec_options,
            )
        for port in self.ports:
            port.on_unblocked = self.pump
        self.udp.bind(control_port, on_datagram=self._on_control)
        self.messages_submitted = 0
        self.health_monitor = health_monitor
        if health_monitor is not None:
            health_monitor.bind(
                self.ports, self._on_stall, backlog_fn=lambda: self.backlog
            )
        # Chain before the prober so its reset hook wraps ours.
        self.session.on_reset_complete = self._on_reset_complete
        self.prober: Optional[ChannelProber] = None
        if enable_prober:
            self.prober = ChannelProber(
                sim, self.session, **(prober_options or {})
            )
        self.fabric: Any = None
        if fabric is not None:
            self.attach_fabric(fabric)

    def attach_fabric(
        self, fabric: Any, *, backlog_limit: Optional[int] = None
    ) -> Any:
        """Mount a flow-layer scheduler above the session's submit path.

        The fabric drains through the reliable window when one exists
        (so ARQ sequencing covers fabric traffic) and is gated on the
        window besides the session's own RUNNING/backlog conditions; a
        draining window re-pumps the fabric via ``on_window_open``.
        """
        self.fabric = fabric
        downstream = extra_ready = None
        if self.reliable is not None:
            downstream = self.reliable.submit
            extra_ready = self.reliable.can_submit
            chained = self.reliable.on_window_open

            def _window_open() -> None:
                if chained is not None:
                    chained()
                fabric.pump()

            self.reliable.on_window_open = _window_open
        self.session.attach_fabric(
            fabric,
            downstream=downstream,
            backlog_limit=backlog_limit,
            extra_ready=extra_ready,
        )
        return fabric

    def submit(self, flow_id: Any, packet: Packet) -> bool:
        """Flow-addressed submission (requires :meth:`attach_fabric`)."""
        if self.fabric is None:
            raise RuntimeError(
                "flow-addressed submit requires a fabric "
                "(pass fabric= or call attach_fabric())"
            )
        self.messages_submitted += 1
        return self.fabric.submit(flow_id, packet)

    def send_message(
        self, size: int, payload: Any = None, flow_id: Any = None
    ) -> Packet:
        packet = Packet(size=size, seq=self.messages_submitted, payload=payload)
        self.submit_packet(packet, flow_id=flow_id)
        return packet

    def submit_packet(self, packet: Packet, flow_id: Any = None) -> None:
        if flow_id is not None:
            self.submit(flow_id, packet)
            return
        self.messages_submitted += 1
        if self.fec is not None:
            self.fec.submit(packet)
        elif self.reliable is not None:
            self.reliable.submit(packet)
        else:
            self.session.submit(packet)

    def _stripe_parity(self, parity: Sequence[Any]) -> None:
        for packet in parity:
            self.session.submit(packet)

    def flush(self) -> None:
        """Seal a partial FEC group immediately (end of stream)."""
        if self.fec is not None:
            self.fec.flush()

    def can_submit(self, flow_id: Any = None) -> bool:
        """Backpressure signal: False while a reliable window is full.

        With ``flow_id``: per-flow backpressure — False only while that
        flow's bounded fabric queue is full.
        """
        if flow_id is not None:
            if self.fabric is None:
                return False
            return self.fabric.can_submit(flow_id)
        return self.reliable is None or self.reliable.can_submit()

    def _on_suspect(self, port_index: int) -> None:
        """ARQ escalation: a packet kept dying on this channel.

        ``exclude_channel`` itself declines non-actionable requests
        (already resetting, inactive, or the last surviving channel).
        """
        self.session.exclude_channel(port_index)

    @property
    def backlog(self) -> int:
        return self.session.striper.backlog + len(
            self.session._pending_during_reset
        )

    def pump(self) -> int:
        return self.session.pump()

    def _on_control(self, datagram: Any, src: IPAddress) -> None:
        self.session.on_control(datagram.payload)

    def _on_stall(self, port_index: int) -> None:
        self.session.exclude_channel(port_index)

    def _on_reset_complete(self, epoch: int) -> None:
        if self.health_monitor is not None:
            # Re-arm the stall watch for every channel the new epoch
            # carries (a rejoined channel must be watchable again).
            for index in self.session.config.active_channels:
                self.health_monitor.clear(index)
        if self.reliable is not None:
            # The reset handshake completed over the reverse ack path, so
            # the bundle is demonstrably exchanging control traffic again:
            # collapse any outage-accumulated RTO backoff rather than
            # letting the first post-rejoin retransmission wait it out.
            self.reliable.on_channel_rejoin()


class SessionSocketReceiver:
    """The resettable striped-UDP receiver with optional fault tolerance.

    Args:
        sim / stack: host context.
        n_ports: size of the full channel set (``base_port + i`` per port).
        config: initial configuration (matching the sender).
        control_to / control_port: where ACKs and requests are sent.
        checker: optional :class:`~repro.core.session.LocalChecker`.
        failure_detector: optional :class:`ChannelFailureDetector`.
        discipline: optional registry discipline name (matching the
            sender's); each epoch's reception engine is rebuilt in the
            discipline's own receiver mode — marker-free disciplines get
            :class:`~repro.core.resequencer.DirectReception`, i.e. no
            resequencer and no marker decoding across resets either.
        discipline_options: forwarded to ``make_discipline``.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: Stack,
        n_ports: int,
        config: StripeConfig,
        base_port: int,
        control_to: str | IPAddress,
        control_port: int = 6900,
        on_message: Optional[Callable[[Packet], None]] = None,
        checker: Optional[LocalChecker] = None,
        failure_detector: Optional[ChannelFailureDetector] = None,
        reliability: str = "quasi_fifo",
        reliability_options: Optional[dict] = None,
        discipline: Optional[str] = None,
        discipline_options: Optional[dict] = None,
    ) -> None:
        if reliability not in RELIABILITY_MODES:
            raise ValueError(
                f"unknown reliability mode {reliability!r}; "
                f"known: {RELIABILITY_MODES}"
            )
        self.sim = sim
        self.stack = stack
        self.udp = _udp_layer_for(stack)
        self.n_ports = n_ports
        self.on_message = on_message
        self.delivered: List[Packet] = []
        self._control_to = IPAddress.parse(control_to)
        self._control_port = control_port
        self._control_socket = self.udp.bind()
        self.reliability = reliability
        self.reliable: Optional[ReliableReceiver] = None
        self.fec: Optional[FecReceiver] = None
        _options = dict(reliability_options or {})
        _fec_options = dict(_options.pop("fec", None) or {})
        if arq_enabled(reliability):
            # Acks ride the existing reverse control flow (the RESET/ACK
            # path), so reliable mode needs no extra socket plumbing.
            self.reliable = ReliableReceiver(
                self._deliver_final,
                send_ack=self._send_ack,
                sim=sim,
                **_options,
            )
        if fec_enabled(reliability):
            self.fec = FecReceiver(
                self.reliable.push
                if self.reliable is not None
                else self._deliver_final,
                ordered=self.reliable is None,
                sim=sim,
                **_fec_options,
            )

        receiver_factory = None
        if discipline is not None:
            from repro.core.resequencer import make_resequencer
            from repro.transport.discipline import (
                make_discipline,
                receiver_mode_for,
            )

            options = dict(discipline_options or {})
            probe = make_discipline(discipline, n_ports, **options)
            if hasattr(probe, "wrap_packet"):
                raise ValueError(
                    f"session transport cannot run {discipline!r}: the "
                    "epoch striper moves whole packets, not fragments"
                )
            mode = receiver_mode_for(probe)

            def receiver_factory(cfg: StripeConfig, deliver):
                algorithm = None
                if mode == "plain":
                    algorithm = make_discipline(
                        discipline, cfg.n_channels, **options
                    ).algorithm
                return make_resequencer(
                    algorithm, mode,
                    n_channels=cfg.n_channels,
                    on_deliver=deliver,
                    clock=lambda: sim.now,
                    sim=sim,
                )

        self.session = StripeReceiverSession(
            sim, n_ports, config,
            send_control=self._send_control,
            on_deliver=self._deliver,
            checker=checker,
            receiver_factory=receiver_factory,
        )
        self.failure_detector = failure_detector
        if failure_detector is not None:
            failure_detector.attach(self)

        for index in range(n_ports):
            self.udp.bind(
                base_port + index,
                on_datagram=self._make_handler(index),
            )

    def _make_handler(self, index: int):
        def handle(datagram: Any, src: IPAddress) -> None:
            if self.failure_detector is not None:
                self.failure_detector.note_arrival(index)
            self.session.push(index, datagram.payload)

        return handle

    def _deliver(self, packet: Packet) -> None:
        """Session output: quasi-FIFO stream (still with loss gaps)."""
        if self.fec is not None:
            self.fec.on_packet(packet)
        elif self.reliable is not None:
            self.reliable.push(packet)
        else:
            self._deliver_final(packet)

    def _deliver_final(self, packet: Packet) -> None:
        self.delivered.append(packet)
        if self.on_message is not None:
            self.on_message(packet)

    def _send_ack(self, sack: Any) -> None:
        self._send_control(AckPacket(sack=sack))

    def _send_control(self, packet: Any) -> None:
        self._control_socket.sendto(
            packet, packet.size, self._control_to, self._control_port,
            force=True,
        )

    def request_drop_channel(self, port_index: int) -> None:
        """Ask the sender to reconfigure without a dead channel."""
        from repro.core.session import ResetRequestPacket

        self._send_control(
            ResetRequestPacket(
                reason=f"channel {port_index} silent",
                exclude_channel=port_index,
            )
        )
