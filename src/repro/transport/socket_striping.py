"""Transport-level striping across UDP sockets (section 6.3).

"In addition to implementing the strIPe protocol in the NetBSD kernel, a
striping protocol was also implemented at the transport layer by striping
packets across multiple application sockets using the same SRR striping
and resequencing algorithm."

One striped *channel* here is a UDP flow (a socket pair on a dedicated
port).  The sender runs the SRR striper with markers; the receiver runs the
marker-synchronized resequencer.  Optional FCVC credit flow control bounds
per-channel in-flight data; credit advertisements ride on dedicated reverse
UDP datagrams and, when markers flow in the reverse direction, can
piggyback on them.

These classes are the workhorses of the marker-frequency, marker-position,
loss-sweep, flow-control, and video experiments.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.core.cfq import CausalFQ
from repro.core.markers import SRRReceiver
from repro.core.packet import MarkerPacket, Packet, is_marker
from repro.core.resequencer import NullResequencer, Resequencer
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer
from repro.net.addresses import IPAddress
from repro.net.stack import Stack
from repro.sim.engine import Simulator
from repro.transport.credit import CreditPacket, CreditReceiver, CreditSender
from repro.transport.udp import UdpLayer, UdpSocket


class _UdpChannelPort:
    """Striper port sending over one UDP flow, with optional credits."""

    def __init__(
        self,
        socket: UdpSocket,
        dst: IPAddress,
        dst_port: int,
        src_ip: Optional[IPAddress],
        channel_index: int,
        credit_sender: Optional[CreditSender],
    ) -> None:
        self.socket = socket
        self.dst = dst
        self.dst_port = dst_port
        self.src_ip = src_ip
        self.channel_index = channel_index
        self.credit_sender = credit_sender
        self.sent_data = 0
        self.sent_markers = 0
        #: set by the owning sender; called when an ARP stall resolves
        self.on_unblocked = None
        self._arp_hooked = False

    def send(self, packet: Any, force: bool = False) -> bool:
        if not is_marker(packet) and self.credit_sender is not None:
            self.credit_sender.on_send(self.channel_index)
            self.sent_data += 1
        elif is_marker(packet):
            self.sent_markers += 1
        else:
            self.sent_data += 1
        return self.socket.sendto(
            packet, packet.size, self.dst, self.dst_port,
            src=self.src_ip, force=force or is_marker(packet),
        )

    def can_accept(self) -> bool:
        if self.credit_sender is not None and not self.credit_sender.can_send(
            self.channel_index
        ):
            self.credit_sender.stalls += 1
            return False
        stack = self.socket.layer.stack
        route = stack.routing.lookup(self.dst)
        if route is None:
            return False
        iface = route.interface
        # An unresolved Ethernet next hop behaves as backpressure: kick the
        # ARP exchange and wait rather than queueing unboundedly behind it.
        next_hop = route.next_hop if route.next_hop is not None else self.dst
        resolved = getattr(iface, "resolved", None)
        if resolved is not None and not resolved(next_hop):
            iface.start_resolution(next_hop)
            if not self._arp_hooked and self.on_unblocked is not None:
                self._arp_hooked = True
                iface.on_arp_resolved.append(lambda ip: self.on_unblocked())
            return False
        return iface.can_accept()

    @property
    def queue_length(self) -> int:
        stack = self.socket.layer.stack
        route = stack.routing.lookup(self.dst)
        return route.interface.queue_length if route else 0


class StripedSocketSender:
    """Stripes application messages across N UDP flows with SRR + markers.

    Args:
        sim: event engine.
        stack: the local host.
        destinations: per-channel ``(dst_ip, dst_port)``; each pair is one
            striped channel.
        algorithm: SRR-family CFQ algorithm.
        marker_policy: marker emission policy (None = no markers).
        source_ips: optional per-channel source address (multihomed hosts).
        credit: optional :class:`CreditSender` for FCVC flow control.
        credit_port: local port on which credit advertisements arrive.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: Stack,
        destinations: Sequence[tuple],
        algorithm: CausalFQ,
        marker_policy: Optional[MarkerPolicy] = None,
        source_ips: Optional[Sequence[IPAddress | str]] = None,
        credit: Optional[CreditSender] = None,
        credit_port: Optional[int] = None,
        marker_decorator=None,
        marker_keepalive_s: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.udp = _udp_layer_for(stack)
        self.credit = credit
        if credit is not None:
            credit.on_unblocked = self._pump
        self.ports: List[_UdpChannelPort] = []
        for index, (dst_ip, dst_port) in enumerate(destinations):
            src = None
            if source_ips is not None:
                src = IPAddress.parse(source_ips[index])
            socket = self.udp.bind()
            self.ports.append(
                _UdpChannelPort(
                    socket, IPAddress.parse(dst_ip), dst_port, src, index, credit
                )
            )
        sharer = TransformedLoadSharer(algorithm)
        self.striper = Striper(
            sharer, self.ports, marker_policy,
            marker_decorator=marker_decorator,
        )
        for port in self.ports:
            port.on_unblocked = self._pump
        if credit_port is not None:
            self.udp.bind(credit_port, on_datagram=self._on_credit_datagram)
        self.messages_submitted = 0
        # Keepalive: markers are normally emitted by round progression; a
        # stalled (flow-controlled or idle) sender must still refresh the
        # receiver periodically — and, in duplex mode, keep carrying
        # piggybacked credits — or both directions can deadlock.
        self._keepalive_s = marker_keepalive_s
        self._markers_at_last_tick = 0
        if marker_keepalive_s is not None:
            if marker_policy is None:
                raise ValueError("keepalive markers need a marker policy")
            sim.schedule(marker_keepalive_s, self._keepalive_tick)

    def send_message(self, size: int, payload: Any = None) -> Packet:
        """Submit one application message of ``size`` bytes for striping."""
        packet = Packet(size=size, seq=self.messages_submitted, payload=payload)
        self.messages_submitted += 1
        self.striper.submit(packet)
        return packet

    def submit_packet(self, packet: Packet) -> None:
        """Submit a caller-constructed packet (e.g. video trace packets)."""
        self.messages_submitted += 1
        self.striper.submit(packet)

    @property
    def backlog(self) -> int:
        return self.striper.backlog

    def pump(self) -> int:
        return self.striper.pump()

    def _pump(self) -> None:
        self.striper.pump()

    def _keepalive_tick(self) -> None:
        if self.striper.markers_sent == self._markers_at_last_tick:
            self.striper.force_marker_batch()
        self._markers_at_last_tick = self.striper.markers_sent
        self.sim.schedule(self._keepalive_s, self._keepalive_tick)

    def _on_credit_datagram(self, datagram: Any, src: IPAddress) -> None:
        payload = datagram.payload
        if isinstance(payload, CreditPacket) and self.credit is not None:
            self.credit.on_credit(payload.channel, payload.limit)
        elif isinstance(payload, MarkerPacket) and payload.credit is not None:
            # piggybacked credit on a reverse-direction marker
            if self.credit is not None:
                self.credit.on_credit(payload.channel, payload.credit)


class StripedSocketReceiver:
    """Receives N UDP flows and reassembles the FIFO stream.

    Args:
        sim: event engine.
        stack: the local host.
        n_channels: number of striped channels.
        algorithm: the sender's algorithm (for simulation).
        base_port: channel *i* is bound to ``base_port + i``.
        mode: ``"marker"``, ``"plain"``, or ``"none"`` (ablations).
        on_message: callback for in-order application messages.
        buffer_packets: per-channel physical buffer cap; arrivals beyond it
            are dropped (counted) — this is the loss that credit flow
            control eliminates.
        credit_to / credit_port: if set, send FCVC credit advertisements to
            that (ip, port) as packets are consumed.
        advertise_every: batch credit advertisements (1 = per packet).
    """

    def __init__(
        self,
        sim: Simulator,
        stack: Stack,
        n_channels: int,
        algorithm: CausalFQ,
        base_port: int,
        mode: str = "marker",
        on_message: Optional[Callable[[Packet], None]] = None,
        buffer_packets: Optional[int] = None,
        credit_to: Optional[IPAddress | str] = None,
        credit_port: Optional[int] = None,
        advertise_every: int = 1,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.udp = _udp_layer_for(stack)
        self.on_message = on_message
        self.buffer_packets = buffer_packets
        self.buffer_drops = 0
        self.delivered: List[Packet] = []

        if mode == "marker":
            if not isinstance(algorithm, SRR):
                raise ValueError("marker mode requires an SRR-family algorithm")
            self.resequencer: Any = SRRReceiver(
                algorithm, on_deliver=self._deliver, clock=lambda: sim.now
            )
        elif mode == "plain":
            self.resequencer = Resequencer(algorithm, on_deliver=self._deliver)
        elif mode == "none":
            self.resequencer = NullResequencer(n_channels, on_deliver=self._deliver)
        else:
            raise ValueError(f"unknown mode {mode!r}")

        #: invoked as fn(channel, credit) when a piggybacked credit rides
        #: an arriving marker (the reverse direction's flow-control state).
        self.credit_sink = None
        self.credit: Optional[CreditReceiver] = None
        self._credit_socket: Optional[UdpSocket] = None
        self._credit_to: Optional[IPAddress] = None
        self._credit_port: Optional[int] = None
        if credit_to is not None:
            if buffer_packets is None:
                raise ValueError("credit flow control needs buffer_packets")
            self._credit_to = IPAddress.parse(credit_to)
            self._credit_port = credit_port
            self._credit_socket = self.udp.bind()
            self.credit = CreditReceiver(
                n_channels,
                buffer_packets,
                send_credit=self._send_credit,
                advertise_every=advertise_every,
            )

        self._pushed_data: List[int] = [0] * n_channels
        self._credited: List[int] = [0] * n_channels

        self.sockets: List[UdpSocket] = []
        for index in range(n_channels):
            socket = self.udp.bind(
                base_port + index,
                on_datagram=self._make_channel_handler(index),
            )
            self.sockets.append(socket)

    # ------------------------------------------------------------------ #

    def _make_channel_handler(self, index: int):
        def handle(datagram: Any, src: IPAddress) -> None:
            payload = datagram.payload
            if (
                self.buffer_packets is not None
                and not is_marker(payload)
                and self._buffered_data(index) >= self.buffer_packets
            ):
                self.buffer_drops += 1
                return
            if not is_marker(payload):
                self._pushed_data[index] += 1
            elif payload.credit is not None and self.credit_sink is not None:
                self.credit_sink(payload.channel, payload.credit)
            self.resequencer.push(index, payload)
            if self.credit is not None:
                self._issue_credits()

        return handle

    def _buffered_data(self, index: int) -> int:
        """Data packets currently buffered on a channel (markers excluded)."""
        buffers = getattr(self.resequencer, "buffers", None)
        if buffers is None:
            return 0
        return sum(1 for p in buffers[index] if not is_marker(p))

    def _issue_credits(self) -> None:
        """Report newly consumed packets on every channel to the credit layer.

        Consumed = pushed into the channel buffer minus still buffered; a
        single push can unblock deliveries on *other* channels, so all
        channels are re-examined.
        """
        assert self.credit is not None
        for index in range(len(self._pushed_data)):
            consumed = self._pushed_data[index] - self._buffered_data(index)
            while self._credited[index] < consumed:
                self._credited[index] += 1
                self.credit.on_consumed(index)

    def _deliver(self, packet: Packet) -> None:
        self.delivered.append(packet)
        if self.on_message is not None:
            self.on_message(packet)

    def _send_credit(self, channel: int, limit: int) -> None:
        if self._credit_socket is None or self._credit_to is None:
            return
        assert self._credit_port is not None
        credit = CreditPacket(channel=channel, limit=limit)
        self._credit_socket.sendto(
            credit, credit.size, self._credit_to, self._credit_port
        )


def _udp_layer_for(stack: Stack) -> UdpLayer:
    """Get or create the stack's UDP layer."""
    existing = getattr(stack, "_udp_layer", None)
    if existing is not None:
        return existing
    layer = UdpLayer(stack)
    stack._udp_layer = layer  # type: ignore[attr-defined]
    return layer
