"""Transport-level striping across UDP sockets (section 6.3).

"In addition to implementing the strIPe protocol in the NetBSD kernel, a
striping protocol was also implemented at the transport layer by striping
packets across multiple application sockets using the same SRR striping
and resequencing algorithm."

One striped *channel* here is a UDP flow (a socket pair on a dedicated
port).  Both classes are thin adapters over the shared endpoint layer
(:mod:`repro.transport.endpoint`): :class:`UdpChannelPort` maps one UDP
flow onto the :class:`~repro.transport.endpoint.ChannelPort` protocol, and
the sender/receiver subclasses of
:class:`~repro.transport.endpoint.StripeSenderPipeline` /
:class:`~repro.transport.endpoint.StripeReceiverPipeline` only add the
socket plumbing: binding, datagram demux, and the dedicated reverse UDP
flow for FCVC credit advertisements (credits can also piggyback on
reverse-direction markers — see :mod:`repro.transport.duplex`).

These classes are the workhorses of the marker-frequency, marker-position,
loss-sweep, flow-control, and video experiments.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.core.cfq import CausalFQ
from repro.core.markers import piggybacked_credit
from repro.core.packet import Packet, is_marker
from repro.core.striper import MarkerPolicy
from repro.net.addresses import IPAddress
from repro.net.stack import Stack
from repro.sim.engine import Simulator
from repro.transport.credit import CreditPacket, CreditReceiver, CreditSender
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.reliability import AckPacket, arq_enabled
from repro.transport.udp import UdpLayer, UdpSocket


class UdpChannelPort:
    """Endpoint channel port sending over one UDP flow, with credits."""

    def __init__(
        self,
        socket: UdpSocket,
        dst: IPAddress,
        dst_port: int,
        src_ip: Optional[IPAddress],
        channel_index: int,
        credit_sender: Optional[CreditSender],
    ) -> None:
        self.socket = socket
        self.dst = dst
        self.dst_port = dst_port
        self.src_ip = src_ip
        self.channel_index = channel_index
        self.credit_sender = credit_sender
        self.sent_data = 0
        self.sent_markers = 0
        #: filled by the owning pipeline; called when an ARP stall resolves
        self.on_unblocked = None
        self._arp_hooked = False

    def send(self, packet: Any, force: bool = False) -> bool:
        if not is_marker(packet) and self.credit_sender is not None:
            self.credit_sender.on_send(self.channel_index)
            self.sent_data += 1
        elif is_marker(packet):
            self.sent_markers += 1
        else:
            self.sent_data += 1
        return self.socket.sendto(
            packet, packet.size, self.dst, self.dst_port,
            src=self.src_ip, force=force or is_marker(packet),
        )

    def can_accept(self) -> bool:
        if self.credit_sender is not None and not self.credit_sender.can_send(
            self.channel_index
        ):
            self.credit_sender.stalls += 1
            return False
        stack = self.socket.layer.stack
        route = stack.routing.lookup(self.dst)
        if route is None:
            return False
        iface = route.interface
        # An unresolved Ethernet next hop behaves as backpressure: kick the
        # ARP exchange and wait rather than queueing unboundedly behind it.
        next_hop = route.next_hop if route.next_hop is not None else self.dst
        resolved = getattr(iface, "resolved", None)
        if resolved is not None and not resolved(next_hop):
            iface.start_resolution(next_hop)
            if not self._arp_hooked and self.on_unblocked is not None:
                self._arp_hooked = True
                iface.on_arp_resolved.append(lambda ip: self.on_unblocked())
            return False
        return iface.can_accept()

    def close(self) -> None:
        self.socket.close()

    @property
    def queue_length(self) -> int:
        stack = self.socket.layer.stack
        route = stack.routing.lookup(self.dst)
        return route.interface.queue_length if route else 0

    @property
    def drained(self) -> int:
        """Cumulative frames that left this port's egress queue.

        The stall monitor's progress signal: at saturation the queue
        length sits pinned at its limit even while frames flow, so queue
        depth cannot distinguish a healthy saturated channel from a
        wedged one — transmission completions can.  (Losses count as
        drain: a lossy-but-transmitting link is the receiver-side
        detector's problem, not a sender-side stall.)
        """
        stack = self.socket.layer.stack
        route = stack.routing.lookup(self.dst)
        channel = getattr(route.interface, "channel_out", None) if route else None
        if channel is None:
            return 0
        return channel.stats.delivered_packets + channel.stats.lost_packets


#: Backwards-compatible private alias (pre-endpoint-layer name).
_UdpChannelPort = UdpChannelPort


class StripedSocketSender(StripeSenderPipeline):
    """Stripes application messages across N UDP flows with SRR + markers.

    Args:
        sim: event engine.
        stack: the local host.
        destinations: per-channel ``(dst_ip, dst_port)``; each pair is one
            striped channel.
        algorithm: SRR-family CFQ algorithm (or any endpoint discipline).
        marker_policy: marker emission policy (None = no markers).
        source_ips: optional per-channel source address (multihomed hosts).
        credit: optional :class:`CreditSender` for FCVC flow control.
        credit_port: local port on which credit advertisements arrive.
        reliability: service level (``best_effort | quasi_fifo |
            reliable``); see the endpoint pipeline.
        ack_port: local port on which reliability acknowledgments
            (:class:`~repro.transport.reliability.AckPacket`) arrive.
        reliability_options: forwarded to the ARQ sender.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: Stack,
        destinations: Sequence[tuple],
        algorithm: CausalFQ,
        marker_policy: Optional[MarkerPolicy] = None,
        source_ips: Optional[Sequence[IPAddress | str]] = None,
        credit: Optional[CreditSender] = None,
        credit_port: Optional[int] = None,
        marker_decorator=None,
        marker_keepalive_s: Optional[float] = None,
        reliability: str = "quasi_fifo",
        ack_port: Optional[int] = None,
        reliability_options: Optional[dict] = None,
    ) -> None:
        self.stack = stack
        self.udp = _udp_layer_for(stack)
        ports: List[UdpChannelPort] = []
        for index, (dst_ip, dst_port) in enumerate(destinations):
            src = None
            if source_ips is not None:
                src = IPAddress.parse(source_ips[index])
            ports.append(
                UdpChannelPort(
                    self.udp.bind(), IPAddress.parse(dst_ip), dst_port,
                    src, index, credit,
                )
            )
        super().__init__(
            ports,
            algorithm,
            marker_policy=marker_policy,
            marker_decorator=marker_decorator,
            credit=credit,
            sim=sim,
            marker_keepalive_s=marker_keepalive_s,
            reliability=reliability,
            reliability_options=reliability_options,
        )
        if credit_port is not None:
            self.udp.bind(credit_port, on_datagram=self._on_credit_datagram)
        if ack_port is not None:
            self.udp.bind(ack_port, on_datagram=self._on_ack_datagram)

    def _on_credit_datagram(self, datagram: Any, src: IPAddress) -> None:
        payload = datagram.payload
        if self.credit is None:
            return
        if isinstance(payload, CreditPacket):
            self.credit.on_credit(payload.channel, payload.limit)
        else:
            # piggybacked credit on a reverse-direction marker
            piggyback = piggybacked_credit(payload)
            if piggyback is not None:
                self.credit.on_credit(*piggyback)

    def _on_ack_datagram(self, datagram: Any, src: IPAddress) -> None:
        payload = datagram.payload
        if getattr(payload, "sack", None) is not None:
            self.on_ack(payload)


class StripedSocketReceiver(StripeReceiverPipeline):
    """Receives N UDP flows and reassembles the FIFO stream.

    Args:
        sim: event engine.
        stack: the local host.
        n_channels: number of striped channels.
        algorithm: the sender's algorithm (for simulation).
        base_port: channel *i* is bound to ``base_port + i``.
        mode: ``"marker"``, ``"plain"``, or ``"none"`` (ablations).
        on_message: callback for in-order application messages.
        buffer_packets: per-channel physical buffer cap; arrivals beyond it
            are dropped (counted) — this is the loss that credit flow
            control eliminates.
        credit_to / credit_port: if set, send FCVC credit advertisements to
            that (ip, port) as packets are consumed.
        advertise_every: batch credit advertisements (1 = per packet).
        failure_detector: optional dead-channel watchdog; see
            :class:`~repro.transport.endpoint.ChannelFailureDetector`.
        reliability: service level (``best_effort | quasi_fifo |
            reliable``); see the endpoint pipeline.
        ack_to / ack_port: where reliability acknowledgments are sent
            (required in reliable mode; a dedicated reverse UDP flow
            like the credit one).
        reliability_options: forwarded to the ARQ receiver.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: Stack,
        n_channels: int,
        algorithm: CausalFQ,
        base_port: int,
        mode: str = "marker",
        on_message: Optional[Callable[[Packet], None]] = None,
        buffer_packets: Optional[int] = None,
        credit_to: Optional[IPAddress | str] = None,
        credit_port: Optional[int] = None,
        advertise_every: int = 1,
        failure_detector=None,
        reliability: str = "quasi_fifo",
        ack_to: Optional[IPAddress | str] = None,
        ack_port: Optional[int] = None,
        reliability_options: Optional[dict] = None,
    ) -> None:
        self.stack = stack
        self.udp = _udp_layer_for(stack)
        self._credit_to: Optional[IPAddress] = None
        self._credit_port: Optional[int] = None
        self._credit_socket: Optional[UdpSocket] = None
        credit: Optional[CreditReceiver] = None
        if credit_to is not None:
            if buffer_packets is None:
                raise ValueError("credit flow control needs buffer_packets")
            self._credit_to = IPAddress.parse(credit_to)
            self._credit_port = credit_port
            self._credit_socket = self.udp.bind()
            credit = CreditReceiver(
                n_channels,
                buffer_packets,
                send_credit=self._send_credit,
                advertise_every=advertise_every,
            )
        self._ack_to: Optional[IPAddress] = None
        self._ack_port: Optional[int] = None
        self._ack_socket: Optional[UdpSocket] = None
        send_ack = None
        if (ack_to is None) != (ack_port is None):
            raise ValueError("ack_to and ack_port go together")
        if arq_enabled(reliability) and ack_to is not None:
            # Standalone ack flow; without it acks must ride the reverse
            # direction's markers (duplex piggyback — the caller wires
            # ``reliable.send_ack`` / the reverse ``sack_sink``).
            self._ack_to = IPAddress.parse(ack_to)
            self._ack_port = ack_port
            self._ack_socket = self.udp.bind()
            send_ack = self._send_ack
        super().__init__(
            n_channels,
            algorithm,
            mode=mode,
            on_message=on_message,
            buffer_packets=buffer_packets,
            credit=credit,
            failure_detector=failure_detector,
            sim=sim,
            reliability=reliability,
            send_ack=send_ack,
            reliability_options=reliability_options,
        )
        self.sockets: List[UdpSocket] = []
        for index in range(n_channels):
            socket = self.udp.bind(
                base_port + index,
                on_datagram=self._make_channel_handler(index),
            )
            self.sockets.append(socket)

    # ------------------------------------------------------------------ #

    def _make_channel_handler(self, index: int):
        def handle(datagram: Any, src: IPAddress) -> None:
            self.push(index, datagram.payload)

        return handle

    def _send_credit(self, channel: int, limit: int) -> None:
        if self._credit_socket is None or self._credit_to is None:
            return
        assert self._credit_port is not None
        credit = CreditPacket(channel=channel, limit=limit)
        self._credit_socket.sendto(
            credit, credit.size, self._credit_to, self._credit_port
        )

    def _send_ack(self, sack: Any) -> None:
        assert self._ack_socket is not None
        assert self._ack_to is not None and self._ack_port is not None
        ack = AckPacket(sack=sack)
        self._ack_socket.sendto(
            ack, ack.size, self._ack_to, self._ack_port, force=True
        )


def _udp_layer_for(stack: Stack) -> UdpLayer:
    """Get or create the stack's UDP layer."""
    existing = getattr(stack, "_udp_layer", None)
    if existing is not None:
        return existing
    layer = UdpLayer(stack)
    stack._udp_layer = layer  # type: ignore[attr-defined]
    return layer
