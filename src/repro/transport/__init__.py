"""Transport substrate: UDP, simplified TCP, FCVC credits, socket striping.

* :mod:`repro.transport.udp` — datagram sockets over the simulated stack.
* :mod:`repro.transport.tcp` — the sliding-window TCP used to drive the
  Figure 15 throughput measurements (dup-ACK fast retransmit + AIMD, so
  reordering and loss have their real effects).
* :mod:`repro.transport.credit` — Kung/Chapman credit-based flow control
  (section 6.3).
* :mod:`repro.transport.socket_striping` — striping across UDP sockets at
  the transport layer (section 6.3's experimental harness).
"""

from repro.transport.udp import UDP_HEADER_BYTES, UdpDatagram, UdpLayer, UdpSocket
from repro.transport.tcp import (
    BulkReceiver,
    BulkSender,
    TCP_HEADER_BYTES,
    TcpLayer,
    TcpSegment,
)
from repro.transport.credit import CreditPacket, CreditReceiver, CreditSender
from repro.transport.socket_striping import (
    StripedSocketReceiver,
    StripedSocketSender,
)
from repro.transport.session_striping import (
    ChannelFailureDetector,
    SessionSocketReceiver,
    SessionSocketSender,
)
from repro.transport.duplex import DuplexStripedEndpoint, connect_duplex
from repro.transport.tcp_striping import (
    StripedTcpReceiver,
    StripedTcpSender,
    TcpChannelPort,
)

__all__ = [
    "UdpDatagram",
    "UdpLayer",
    "UdpSocket",
    "UDP_HEADER_BYTES",
    "TcpLayer",
    "TcpSegment",
    "BulkSender",
    "BulkReceiver",
    "TCP_HEADER_BYTES",
    "CreditPacket",
    "CreditReceiver",
    "CreditSender",
    "StripedSocketSender",
    "StripedSocketReceiver",
    "SessionSocketSender",
    "SessionSocketReceiver",
    "ChannelFailureDetector",
    "DuplexStripedEndpoint",
    "connect_duplex",
    "StripedTcpSender",
    "StripedTcpReceiver",
    "TcpChannelPort",
]
