"""Transport substrate: UDP, simplified TCP, FCVC credits, socket striping.

* :mod:`repro.transport.udp` — datagram sockets over the simulated stack.
* :mod:`repro.transport.tcp` — the sliding-window TCP used to drive the
  Figure 15 throughput measurements (dup-ACK fast retransmit + AIMD, so
  reordering and loss have their real effects).
* :mod:`repro.transport.credit` — Kung/Chapman credit-based flow control
  (section 6.3).
* :mod:`repro.transport.endpoint` — the transport-agnostic striping
  endpoint layer: channel-port protocol, sender/receiver pipelines, the
  discipline registry, and the dead-channel watchdog.
* :mod:`repro.transport.socket_striping` — striping across UDP sockets at
  the transport layer (section 6.3's experimental harness).
* :mod:`repro.transport.fabric` — the multi-tenant session fabric: a
  flow table plus a weighted-DRR scheduler mounted above any sender
  pipeline (FQ across flows x SRR across channels).
"""

from repro.transport.endpoint import (
    DISCIPLINES,
    ChannelFailureDetector,
    ChannelPort,
    FastStriper,
    StripeReceiverPipeline,
    StripeSenderPipeline,
    make_discipline,
    receiver_mode_for,
    resolve_discipline,
)
from repro.transport.udp import UDP_HEADER_BYTES, UdpDatagram, UdpLayer, UdpSocket
from repro.transport.tcp import (
    BulkReceiver,
    BulkSender,
    TCP_HEADER_BYTES,
    TcpLayer,
    TcpSegment,
)
from repro.transport.credit import CreditPacket, CreditReceiver, CreditSender
from repro.transport.socket_striping import (
    StripedSocketReceiver,
    StripedSocketSender,
    UdpChannelPort,
)
from repro.transport.session_striping import (
    SessionSocketReceiver,
    SessionSocketSender,
)
from repro.transport.fast_path import (
    FastChannelPort,
    FastStripedReceiver,
    FastStripedSender,
    wire_size,
)
from repro.transport.duplex import DuplexStripedEndpoint, connect_duplex
from repro.transport.fabric import (
    FabricScheduler,
    FlowTable,
    logarithmic_tenant_weights,
)
from repro.transport.tcp_striping import (
    StripedTcpReceiver,
    StripedTcpSender,
    TcpChannelPort,
)

__all__ = [
    "ChannelPort",
    "StripeSenderPipeline",
    "StripeReceiverPipeline",
    "FastStriper",
    "DISCIPLINES",
    "make_discipline",
    "resolve_discipline",
    "receiver_mode_for",
    "UdpChannelPort",
    "FastChannelPort",
    "FastStripedSender",
    "FastStripedReceiver",
    "wire_size",
    "UdpDatagram",
    "UdpLayer",
    "UdpSocket",
    "UDP_HEADER_BYTES",
    "TcpLayer",
    "TcpSegment",
    "BulkSender",
    "BulkReceiver",
    "TCP_HEADER_BYTES",
    "CreditPacket",
    "CreditReceiver",
    "CreditSender",
    "StripedSocketSender",
    "StripedSocketReceiver",
    "SessionSocketSender",
    "SessionSocketReceiver",
    "ChannelFailureDetector",
    "DuplexStripedEndpoint",
    "connect_duplex",
    "FlowTable",
    "FabricScheduler",
    "logarithmic_tenant_weights",
    "StripedTcpSender",
    "StripedTcpReceiver",
    "TcpChannelPort",
]
